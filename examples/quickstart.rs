//! Quickstart: optimize the paper's motivating program P0 under two
//! network profiles and watch COBRA choose differently.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cobra::prelude::*;

fn main() {
    // A database with few orders and many customers: the join query (P1)
    // should win on a slow network, since prefetching would drag the whole
    // customer table across the wire.
    let fixture = motivating::build_fixture(1_000, 50_000, 42);
    let p0 = motivating::p0();

    println!("original program (Figure 3a):\n");
    println!("{}", pretty::function_to_string(p0.entry()));

    for net in [NetworkProfile::slow_remote(), NetworkProfile::fast_local()] {
        let cobra = fixture.cobra_builder().network(net.clone()).build();

        let optimized = cobra.optimize_program(&p0).expect("optimization succeeds");
        println!("--- network: {} ---", net.name());
        println!(
            "alternatives: {}, chosen: {:?}, estimated cost: {:.3}s (original {:.3}s)\n",
            optimized.alternatives,
            optimized.tags,
            optimized.est_cost_ns / 1e9,
            optimized.original_cost_ns / 1e9,
        );
        println!("{}", pretty::function_to_string(&optimized.program));
    }
}
