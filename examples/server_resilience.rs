//! Resilience end to end: crash-safe snapshot/restore and fault-injected
//! serving.
//!
//! Act I — **survive a restart**: warm the plan cache over the wire,
//! snapshot it (atomic temp-file + rename), kill the server, boot a
//! fresh one over the same database, restore, and show the first
//! submission is already a cache *hit* with bit-identical results.
//!
//! Act II — **survive chaos**: boot a server with a seeded
//! [`FaultPlan`] injecting connection resets, partial writes, stalls,
//! corrupt frames, and worker panics; drive it with a retrying
//! [`WireClient`] and show every submission still lands with the right
//! answer while the client's retry counter and the plan's injection
//! counters tick.
//!
//! Act III — **degrade under sustained faults**: panic every optimizer
//! search and watch the health machine drop to `Degraded` after the
//! configured streak — typed errors throughout, no poisoned locks, and
//! the server still answers its control surface.
//!
//! Every step asserts; run with `cargo run --example server_resilience`.

use cobra::minidb::{self, Column, DataType, Schema, Value};
use cobra::prelude::*;
use cobra::server::{CacheOutcome, FaultConfig, FaultKind, FaultPlan, Health, RetryPolicy};
use imperative::ast::QuerySpec;
use std::sync::Arc;
use std::time::Duration;

fn fixture() -> Fixture {
    let mut db = Database::new();
    let orders = Schema::new(vec![
        Column::new("o_id", DataType::Int),
        Column::new("o_customer_sk", DataType::Int),
        Column::new("o_priority", DataType::Int),
    ]);
    let t = db.create_table("orders", orders).unwrap();
    t.set_primary_key("o_id").unwrap();
    for i in 0..200i64 {
        t.insert(vec![Value::Int(i), Value::Int(i % 20), Value::Int(i % 10)])
            .unwrap();
    }
    let customer = Schema::new(vec![
        Column::new("c_customer_sk", DataType::Int),
        Column::new("c_birth_year", DataType::Int),
    ]);
    let t = db.create_table("customer", customer).unwrap();
    t.set_primary_key("c_customer_sk").unwrap();
    for i in 0..20i64 {
        t.insert(vec![Value::Int(i), Value::Int(1950 + i)]).unwrap();
    }
    db.analyze_all();
    let mut mapping = MappingRegistry::new();
    mapping.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
        "customer",
        "Customer",
        "o_customer_sk",
    ));
    mapping.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
    Fixture {
        db: minidb::shared(db),
        mapping,
        funcs: Arc::new(FuncRegistry::with_builtins()),
    }
}

fn open_orders_program() -> Program {
    use imperative::ast::{Expr, Function, Stmt, StmtKind};
    Program::single(Function::new(
        "openOrders",
        vec!["result".to_string()],
        vec![
            Stmt::new(StmtKind::NewCollection("result".into())),
            Stmt::new(StmtKind::ForEach {
                var: "o".into(),
                iter: Expr::Query(QuerySpec::sql("select * from orders where o_priority = 3")),
                body: vec![
                    Stmt::new(StmtKind::Let(
                        "c".into(),
                        Expr::nav(Expr::var("o"), "customer"),
                    )),
                    Stmt::new(StmtKind::Add(
                        "result".into(),
                        Expr::field(Expr::var("c"), "c_birth_year"),
                    )),
                ],
            }),
        ],
    ))
}

fn tenant_spec(fx: &Fixture) -> TenantSpec {
    TenantSpec::new(
        "orders",
        fx.db.clone(),
        fx.mapping.clone(),
        fx.funcs.clone(),
    )
}

fn main() {
    // Injected worker panics are part of Act III's script; keep the
    // default hook for anything else.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected"));
        if !injected {
            default_hook(info);
        }
    }));

    let fx = fixture();
    let program = open_orders_program();
    let snap_path =
        std::env::temp_dir().join(format!("cobra-resilience-{}.cbsn", std::process::id()));

    // ---- Act I: warm, snapshot, kill, restart, restore -----------------
    println!("=== Act I: snapshot / restart / restore ===");
    let service = CobraService::new(ServerConfig::default());
    service.register_tenant(tenant_spec(&fx));
    let server = WireServer::spawn(service, "127.0.0.1:0").expect("bind");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let session = client.open_session("orders").expect("open");

    let cold = client.submit(session, &program).expect("cold submit");
    assert_eq!(cold.cache, CacheOutcome::Miss);
    let warm = client.submit(session, &program).expect("warm submit");
    assert_eq!(warm.cache, CacheOutcome::Hit);
    println!("warmed: cold={} then warm={}", cold.cache, warm.cache);

    server
        .service()
        .snapshot_to(&snap_path)
        .expect("persist snapshot");
    println!("snapshot written to {}", snap_path.display());
    server.shutdown(); // the whole server dies, cache and all
    drop(server);
    println!("server killed");

    let service = CobraService::new(ServerConfig::default());
    service.register_tenant(tenant_spec(&fx));
    let report = service.restore_from(&snap_path).expect("restore");
    println!("restored: {report}");
    assert_eq!(report.tenants_matched, 1);
    assert!(report.plans_restored >= 1, "the warm plan survived");

    let server = WireServer::spawn(service, "127.0.0.1:0").expect("rebind");
    let mut client = WireClient::connect(server.local_addr()).expect("reconnect");
    let session = client.open_session("orders").expect("reopen");
    let revived = client
        .submit(session, &program)
        .expect("post-restart submit");
    assert_eq!(
        revived.cache,
        CacheOutcome::Hit,
        "first post-restart submission rides the restored plan"
    );
    assert_eq!(
        revived.results, cold.results,
        "bit-identical across restart"
    );
    println!(
        "post-restart: {} (no re-search), results identical",
        revived.cache
    );
    server.shutdown();

    // ---- Act II: chaos with a retrying client --------------------------
    println!("\n=== Act II: fault injection + retrying client ===");
    let faults = FaultPlan::chaos(0xC0BA);
    let service = CobraService::new(ServerConfig {
        faults: faults.clone(),
        ..ServerConfig::default()
    });
    service.register_tenant(tenant_spec(&fx));
    let server = WireServer::spawn(service, "127.0.0.1:0").expect("bind");
    let mut client = WireClient::connect_with(
        server.local_addr(),
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
            request_timeout: Duration::from_secs(2),
            seed: 0xC0BA,
        },
    )
    .expect("connect");
    let session = client.open_session("orders").expect("open under chaos");
    let mut successes = 0;
    for round in 0..30 {
        let mut landed = false;
        for _ in 0..5 {
            match client.submit(session, &program) {
                Ok(reply) => {
                    assert_eq!(reply.results, cold.results, "chaos never changes answers");
                    successes += 1;
                    landed = true;
                    break;
                }
                Err(e) => println!("  round {round}: transient {e}; re-driving"),
            }
        }
        assert!(landed, "round {round} never landed");
    }
    println!("{successes}/30 submissions landed with correct results");
    println!("client retries: {}", client.retries());
    for (kind, count) in faults.counts() {
        if count > 0 {
            println!("  injected {:>2}× {}", count, kind.name());
        }
    }
    assert_eq!(successes, 30);
    assert!(faults.total_injected() > 0, "chaos actually injected");
    assert!(
        client.retries() > 0,
        "the client visibly worked for those successes"
    );
    assert!(faults.injected(FaultKind::ConnReset) > 0);
    server.shutdown();

    // ---- Act III: sustained panics degrade, typed errors throughout ----
    println!("\n=== Act III: graceful degradation under sustained faults ===");
    let service = CobraService::new(ServerConfig {
        faults: FaultPlan::from_config(FaultConfig {
            seed: 7,
            panic_permille: 1000, // every search panics
            ..FaultConfig::off()
        }),
        degrade_after_faults: 2,
        ..ServerConfig::default()
    });
    let tenant = service.register_tenant(tenant_spec(&fx));
    let session = service.open_session(tenant).expect("open");
    assert_eq!(service.health(), Health::Healthy);
    for i in 0..3 {
        let err = service
            .submit(session, &program)
            .expect_err("search panics");
        assert!(
            matches!(err, cobra::server::ServerError::Internal(_)),
            "typed internal error, got {err}"
        );
        println!("  submission {i}: {err}");
    }
    assert_eq!(
        service.health(),
        Health::Degraded,
        "2 consecutive panics degrade the server"
    );
    println!("health: {} (queue halved, sweeper held)", service.health());
    // The control surface survives panic storms untouched.
    let counters = service.counters();
    assert!(counters.internal_errors >= 2);
    println!(
        "counters still served: {} internal errors recorded",
        counters.internal_errors
    );
    service.shutdown();
    assert_eq!(service.health(), Health::Draining);
    println!("drained and shut down cleanly");

    std::fs::remove_file(&snap_path).ok();
    println!("\nall resilience properties held");
}
