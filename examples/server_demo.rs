//! Cobra-as-a-service end to end, over the wire.
//!
//! Boots a [`WireServer`] on an ephemeral port, connects a [`WireClient`],
//! and walks the serving lifecycle:
//!
//! 1. submit a program — cold cache, full optimizer search;
//! 2. submit it again — warm cache hit, no search;
//! 3. shift the data under the server (writes advance the stats epoch,
//!    so the cached plan is invalidated and the re-search records fresh
//!    runtime feedback);
//! 4. the drift sweeper notices the model/observation divergence and
//!    hot-swaps the cached plan against observed cardinalities;
//! 5. the next submission hits the *re-optimized* plan;
//! 6. clean shutdown via the wire protocol.

use cobra::minidb::{self, Column, DataType, Schema, Value};
use cobra::prelude::*;
use cobra::server::CacheOutcome;
use imperative::ast::QuerySpec;
use std::sync::Arc;

fn fixture() -> Fixture {
    let mut db = Database::new();
    let orders = Schema::new(vec![
        Column::new("o_id", DataType::Int),
        Column::new("o_customer_sk", DataType::Int),
        Column::new("o_priority", DataType::Int),
    ]);
    let t = db.create_table("orders", orders).unwrap();
    t.set_primary_key("o_id").unwrap();
    for i in 0..1000i64 {
        t.insert(vec![Value::Int(i), Value::Int(i % 50), Value::Int(i % 10)])
            .unwrap();
    }
    let customer = Schema::new(vec![
        Column::new("c_customer_sk", DataType::Int),
        Column::new("c_birth_year", DataType::Int),
    ]);
    let t = db.create_table("customer", customer).unwrap();
    t.set_primary_key("c_customer_sk").unwrap();
    for i in 0..50i64 {
        t.insert(vec![Value::Int(i), Value::Int(1950 + i)]).unwrap();
    }
    db.analyze_all();
    let mut mapping = MappingRegistry::new();
    mapping.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
        "customer",
        "Customer",
        "o_customer_sk",
    ));
    mapping.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
    Fixture {
        db: minidb::shared(db),
        mapping,
        funcs: Arc::new(FuncRegistry::with_builtins()),
    }
}

fn open_orders_program() -> Program {
    use imperative::ast::{Expr, Function, Stmt, StmtKind};
    Program::single(Function::new(
        "openOrders",
        vec!["result".to_string()],
        vec![
            Stmt::new(StmtKind::NewCollection("result".into())),
            Stmt::new(StmtKind::ForEach {
                var: "o".into(),
                iter: Expr::Query(QuerySpec::sql("select * from orders where o_priority = 3")),
                body: vec![
                    Stmt::new(StmtKind::Let(
                        "c".into(),
                        Expr::nav(Expr::var("o"), "customer"),
                    )),
                    Stmt::new(StmtKind::Add(
                        "result".into(),
                        Expr::field(Expr::var("c"), "c_birth_year"),
                    )),
                ],
            }),
        ],
    ))
}

fn main() {
    let fixture = fixture();
    let program = open_orders_program();

    // A service with a sensitive drift threshold so the demo's single
    // feedback run is enough to trigger the hot swap.
    let service = CobraService::new(ServerConfig {
        drift_threshold: 2.0,
        ..ServerConfig::default()
    });
    service.register_tenant(
        TenantSpec::new(
            "orders",
            fixture.db.clone(),
            fixture.mapping.clone(),
            fixture.funcs.clone(),
        )
        .network(NetworkProfile::slow_remote()),
    );

    let server = WireServer::spawn(service, "127.0.0.1:0").expect("bind");
    println!("server listening on {}", server.local_addr());

    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let session = client.open_session("orders").expect("open session");

    // 1. Cold submission: full search.
    let cold = client.submit(session, &program).expect("submit");
    println!(
        "cold:  {} ({} µs wall) plan {:?} est {:.3}s simulated {:.3}s",
        cold.cache,
        cold.wall_ns / 1_000,
        cold.tags,
        cold.est_cost_ns / 1e9,
        cold.simulated_ns as f64 / 1e9,
    );
    assert_eq!(cold.cache, CacheOutcome::Miss);

    // 2. Warm submission: cache hit, same plan, no search.
    let warm = client.submit(session, &program).expect("submit");
    println!("warm:  {} ({} µs wall)", warm.cache, warm.wall_ns / 1_000);
    assert_eq!(warm.cache, CacheOutcome::Hit);
    assert_eq!(warm.results, cold.results);

    // 3. The workload shifts mid-run: almost every order is escalated to
    //    priority 3. Statistics go stale (no re-ANALYZE), but the write
    //    advances the stats epoch, so the stale cached plan is already
    //    unreachable. The next submission re-searches — still against
    //    stale statistics — and its execution records what's really there.
    {
        let mut db = fixture.db.write().unwrap();
        let t = db.table_mut("orders").unwrap();
        for i in 0..1000i64 {
            if i % 11 != 0 {
                t.update_where_eq(0, &Value::Int(i), 2, Value::Int(3));
            }
        }
    }
    let shifted = client.submit(session, &program).expect("submit");
    println!(
        "shift: {} (writes invalidated the cache) est {:.3}s simulated {:.3}s",
        shifted.cache,
        shifted.est_cost_ns / 1e9,
        shifted.simulated_ns as f64 / 1e9,
    );
    assert_eq!(shifted.cache, CacheOutcome::Miss);
    assert!(
        shifted.simulated_ns > 2 * cold.simulated_ns,
        "~9x more priority-3 rows must show up in the simulated time \
         (the chosen sql-join plan pays in result transfer, not round trips)"
    );

    // 4. The drift sweeper compares the model against the recorded
    //    observations and hot-swaps the cached plan. (The background
    //    thread does this on its own cadence; the demo invokes a sweep
    //    synchronously so the output is deterministic.)
    let swapped = server.service().sweep_now();
    println!("sweep: {swapped} plan(s) re-optimized against observed cardinalities");
    assert!(swapped >= 1, "the shift must push drift past the threshold");

    // 5. The next submission rides the swapped plan: a cache hit under
    //    the new epoch, planned against the *observed* cardinalities —
    //    the estimate now prices the ~9x result, and the optimizer is
    //    free to pick a different strategy for it (here it abandons the
    //    wide join transfer for prefetching).
    let post = client.submit(session, &program).expect("submit");
    println!(
        "post:  {} plan {:?} est {:.3}s (was {:.3}s before observation) simulated {:.3}s",
        post.cache,
        post.tags,
        post.est_cost_ns / 1e9,
        shifted.est_cost_ns / 1e9,
        post.simulated_ns as f64 / 1e9,
    );
    assert_eq!(post.cache, CacheOutcome::Hit);
    assert_eq!(post.results, shifted.results, "swap never changes answers");
    assert!(
        post.est_cost_ns > shifted.est_cost_ns,
        "the swapped plan must be priced against the observed ~9x cardinality, \
         not the stale statistics"
    );

    println!("\n--- optimization report (last submitted program) ---");
    let report = client.report(session).expect("report");
    for line in report.lines().take(12) {
        println!("{line}");
    }

    let counters = client.counters().expect("counters");
    println!("\n--- server counters ---\n{counters}");
    assert!(counters.plans_swapped >= 1);

    // 6. Clean shutdown over the wire.
    client.close_session(session).expect("close");
    client.shutdown_server().expect("shutdown");
    assert!(server.service().is_shut_down());
    println!("\nserver shut down cleanly");
}
