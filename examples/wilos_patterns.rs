//! The six Wilos patterns (Experiment 4): for each pattern, show the
//! original program, the push-to-SQL heuristic's rewrite, and COBRA's
//! cost-based choice — with simulated runtimes.
//!
//! ```text
//! cargo run --release --example wilos_patterns [scale]
//! ```

use cobra::core::heuristic;
use cobra::prelude::*;

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let net = NetworkProfile::fast_local();
    println!(
        "scale = {scale} (largest relations), network = {}\n",
        net.name()
    );

    for pattern in wilos::Pattern::all() {
        let program = wilos::representative(pattern);
        println!("================ pattern {pattern:?} ================");
        println!("{}", wilos::Pattern::description(pattern));
        println!(
            "\noriginal:\n{}",
            pretty::function_to_string(program.entry())
        );

        // Original runtime.
        let fx = wilos::build_fixture(scale, 7);
        let t_orig = run_on(&fx, net.clone(), &program)
            .expect("original runs")
            .secs;

        // Heuristic rewrite ([4]-style push-to-SQL).
        let fx = wilos::build_fixture(scale, 7);
        let h = heuristic::optimize_heuristic(&program, &fx.mapping);
        let mut funcs = vec![h.clone()];
        funcs.extend(program.functions.iter().skip(1).cloned());
        let t_heur = run_on(&fx, net.clone(), &Program { functions: funcs })
            .expect("heuristic runs")
            .secs;
        println!("heuristic rewrite:\n{}", pretty::function_to_string(&h));

        // COBRA.
        let fx = wilos::build_fixture(scale, 7);
        let cobra = fx
            .cobra_builder()
            .network(net.clone())
            .catalog(CostCatalog::with_af(50.0))
            .build();
        let opt = cobra.optimize_program(&program).expect("optimizes");
        let mut funcs = vec![opt.program.clone()];
        funcs.extend(program.functions.iter().skip(1).cloned());
        let t_cobra = run_on(&fx, net.clone(), &Program { functions: funcs })
            .expect("cobra runs")
            .secs;
        println!(
            "COBRA choice {:?}:\n{}",
            opt.tags,
            pretty::function_to_string(&opt.program)
        );

        println!(
            "runtimes: original {t_orig:.3}s | heuristic {t_heur:.3}s | COBRA {t_cobra:.3}s\n"
        );
    }
}
