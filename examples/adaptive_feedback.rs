//! The adaptive-statistics loop end to end: optimize, execute with
//! runtime cardinality feedback, detect model drift, re-optimize.
//!
//! The program loops over `orders where o_priority = 3`. At analyze
//! time priorities are uniform over 0..10, so the optimizer plans for
//! ~100 of 1000 rows. Then the workload shifts — almost everything gets
//! escalated to priority 3 — and the stale statistics underestimate the
//! loop by an order of magnitude. One feedback-recorded execution
//! exposes the drift, and `reoptimize_on_drift` re-plans against the
//! observed cardinalities.

use cobra::minidb::{self, Column, DataType, FeedbackStore, Schema, Value};
use cobra::prelude::*;
use cobra::workloads::harness::{run_on_with_feedback, Fixture};
use imperative::ast::QuerySpec;
use std::sync::Arc;

fn fixture() -> Fixture {
    let mut db = Database::new();
    let orders = Schema::new(vec![
        Column::new("o_id", DataType::Int),
        Column::new("o_customer_sk", DataType::Int),
        Column::new("o_priority", DataType::Int),
    ]);
    let t = db.create_table("orders", orders).unwrap();
    t.set_primary_key("o_id").unwrap();
    for i in 0..1000i64 {
        t.insert(vec![Value::Int(i), Value::Int(i % 50), Value::Int(i % 10)])
            .unwrap();
    }
    let customer = Schema::new(vec![
        Column::new("c_customer_sk", DataType::Int),
        Column::new("c_birth_year", DataType::Int),
    ]);
    let t = db.create_table("customer", customer).unwrap();
    t.set_primary_key("c_customer_sk").unwrap();
    for i in 0..50i64 {
        t.insert(vec![Value::Int(i), Value::Int(1950 + i)]).unwrap();
    }
    db.analyze_all();
    let mut mapping = MappingRegistry::new();
    mapping.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
        "customer",
        "Customer",
        "o_customer_sk",
    ));
    mapping.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
    Fixture {
        db: minidb::shared(db),
        mapping,
        funcs: Arc::new(FuncRegistry::with_builtins()),
    }
}

fn open_orders_program() -> Program {
    use imperative::ast::{Expr, Function, Stmt, StmtKind};
    Program::single(Function::new(
        "openOrders",
        vec!["result".to_string()],
        vec![
            Stmt::new(StmtKind::NewCollection("result".into())),
            Stmt::new(StmtKind::ForEach {
                var: "o".into(),
                iter: Expr::Query(QuerySpec::sql("select * from orders where o_priority = 3")),
                body: vec![
                    Stmt::new(StmtKind::Let(
                        "c".into(),
                        Expr::nav(Expr::var("o"), "customer"),
                    )),
                    Stmt::new(StmtKind::Add(
                        "result".into(),
                        Expr::field(Expr::var("c"), "c_birth_year"),
                    )),
                ],
            }),
        ],
    ))
}

fn main() {
    let fixture = fixture();
    let program = open_orders_program();
    let net = NetworkProfile::slow_remote();
    let store = Arc::new(FeedbackStore::new());
    let cobra = fixture
        .cobra_builder()
        .network(net.clone())
        .feedback(store.clone())
        .build();

    let first = cobra.optimize_program(&program).unwrap();
    println!(
        "initial plan: original est {:.3}s -> chosen {:?} est {:.3}s",
        first.original_cost_ns / 1e9,
        first.tags,
        first.est_cost_ns / 1e9,
    );

    // The workload shifts: nearly everything is escalated to priority
    // 3. Statistics go stale (ANALYZE has not rerun).
    {
        let mut db = fixture.db.write().unwrap();
        let t = db.table_mut("orders").unwrap();
        for i in 0..1000i64 {
            if i % 11 != 0 {
                t.update_where_eq(0, &Value::Int(i), 2, Value::Int(3));
            }
        }
    }

    // One production run records observed cardinalities per plan.
    let run = run_on_with_feedback(&fixture, net, &program, store.clone()).unwrap();
    println!(
        "observed run: {:.3}s simulated, {} plans observed",
        run.secs,
        store.len()
    );

    let drift = cobra.estimation_drift();
    println!("estimation drift vs observation: x{drift:.2}");
    match cobra.reoptimize_on_drift(&program, 2.0).unwrap() {
        Some(re) => println!(
            "re-optimized: original est {:.3}s (was {:.3}s; {} estimate(s) \
             used observations) -> chosen {:?} est {:.3}s",
            re.original_cost_ns / 1e9,
            first.original_cost_ns / 1e9,
            re.feedback_overrides,
            re.tags,
            re.est_cost_ns / 1e9,
        ),
        None => println!("no drift above threshold; plan kept"),
    }
}
