//! F-IR playground: watch §V happen — Figure 7's program M0 is converted
//! to a fold with the tuple/project extension (Figure 8), and the
//! motivating loop of P0 is closed under the transformation rules
//! (T1–T5, N1, N2), printing every alternative the Region DAG would hold.
//!
//! ```text
//! cargo run --release --example fir_playground
//! ```

use cobra::fir::{build, codegen, rules};
use cobra::imperative::ast::{Expr, QuerySpec, Stmt, StmtKind};
use cobra::imperative::pretty;
use cobra::minidb::BinOp;
use cobra::orm::{EntityMapping, MappingRegistry};

fn mappings() -> MappingRegistry {
    let mut r = MappingRegistry::new();
    r.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
        "customer",
        "Customer",
        "o_customer_sk",
    ));
    r.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
    r
}

fn main() {
    // ---- Figure 7 / Figure 8: dependent aggregations --------------------
    println!("=== Figure 7's loop → F-IR (Figure 8) ===\n");
    let body = vec![
        Stmt::new(StmtKind::Let(
            "sum".into(),
            Expr::bin(
                BinOp::Add,
                Expr::var("sum"),
                Expr::field(Expr::var("t"), "sale_amt"),
            ),
        )),
        Stmt::new(StmtKind::Put(
            "cSum".into(),
            Expr::field(Expr::var("t"), "month"),
            Expr::var("sum"),
        )),
    ];
    let iter = Expr::Query(QuerySpec::sql(
        "select month, sale_amt from sales order by month",
    ));
    let alt = build::loop_to_fold("t", &iter, &body, &mappings(), None).expect("foldable");
    for (var, id) in &alt.assigns {
        println!("{var} = {}", alt.arena.display(*id));
    }

    println!("\nalternatives under the rules (note the T5-partial degradation of §V-B):\n");
    for a in rules::expand_alternatives(alt, 32) {
        println!("[{}]", a.rules_applied.join(" → "));
        println!("  {}\n", a.display());
    }

    // ---- P0's loop: the full rule closure --------------------------------
    println!("=== P0's loop: rule closure and generated programs ===\n");
    let body = vec![
        Stmt::new(StmtKind::Let(
            "cust".into(),
            Expr::nav(Expr::var("o"), "customer"),
        )),
        Stmt::new(StmtKind::Add(
            "result".into(),
            Expr::Call(
                "myFunc".into(),
                vec![
                    Expr::field(Expr::var("o"), "o_id"),
                    Expr::field(Expr::var("cust"), "c_birth_year"),
                ],
            ),
        )),
    ];
    let live = vec!["result".to_string()];
    let base = build::loop_to_fold(
        "o",
        &Expr::LoadAll("Order".into()),
        &body,
        &mappings(),
        Some(&live),
    )
    .expect("foldable");
    for a in rules::expand_alternatives(base, 32) {
        println!("[{}]", a.rules_applied.join(" → "));
        println!("  F-IR : {}", a.display());
        if let Some(stmts) = codegen::generate(&a) {
            let text = pretty::stmts_to_string(&stmts);
            for line in text.lines() {
                println!("  code : {line}");
            }
        }
        println!();
    }
}
