//! The motivating example end-to-end (§II): run P0, P1 and P2 on both
//! network profiles, verify they compute the same result, and compare
//! their simulated runtimes with COBRA's choice.
//!
//! ```text
//! cargo run --release --example orders_report
//! ```

use cobra::prelude::*;

fn main() {
    let orders = 20_000;
    let customers = 5_000;
    let fixture = motivating::build_fixture(orders, customers, 7);
    println!("orders = {orders}, customers = {customers}\n");

    for net in [NetworkProfile::slow_remote(), NetworkProfile::fast_local()] {
        println!("--- network: {} ---", net.name());
        let programs = [
            ("P0 (Hibernate)", motivating::p0()),
            ("P1 (SQL join) ", motivating::p1()),
            ("P2 (prefetch) ", motivating::p2()),
        ];
        let mut results = Vec::new();
        for (name, p) in &programs {
            let r = run_on(&fixture, net.clone(), p).expect("runs");
            println!(
                "{name}: {:>10.3}s  ({} round trips, {:.2} MB transferred)",
                r.secs,
                r.outcome.round_trips,
                r.outcome.bytes as f64 / 1e6
            );
            results.push(r.outcome.var_snapshot("result").normalized());
        }
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "all three programs must agree"
        );

        let cobra = fixture.cobra_builder().network(net.clone()).build();
        let opt = cobra
            .optimize_program(&motivating::p0())
            .expect("optimizes");
        let chosen = run_on(&fixture, net.clone(), &Program::single(opt.program.clone()))
            .expect("chosen runs");
        println!(
            "COBRA chose {:?}: {:>8.3}s (estimated {:.3}s)\n",
            opt.tags,
            chosen.secs,
            opt.est_cost_ns / 1e9
        );
    }
}
