//! Columnar-vs-row engine differential suite.
//!
//! The columnar data plane (`minidb::vexec`) claims *bit-identical*
//! semantics with the row engine: same rows, same observables, and the
//! same `ExecWork` accounting (hence identical simulated time on any
//! network). This suite checks that claim the same way the rewrite
//! oracle checks the optimizer: generatively, over the seeded program
//! corpus, across network profiles — running every program once per
//! engine on fresh, identical fixtures and comparing everything the
//! harness can observe.
//!
//! Widen locally with `DIFF_SEEDS=1000 cargo test --release --test
//! engine_differential`.

use cobra::core::Cobra;
use cobra::interp::Outcome;
use cobra::minidb::ExecEngine;
use cobra::netsim::NetworkProfile;
use cobra::oracle::mid_range;
use cobra::workloads::genprog::{GenCase, GenConfig};
use cobra::workloads::harness::run_on_engine;

/// The three network profiles of the oracle matrix.
fn profiles() -> Vec<NetworkProfile> {
    vec![
        NetworkProfile::slow_remote(),
        mid_range(),
        NetworkProfile::fast_local(),
    ]
}

fn seed_count(default_count: u64) -> u64 {
    std::env::var("DIFF_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_count)
}

/// Everything observable about one run that must match across engines:
/// normalized observables (variables, return value, prints — bitwise,
/// since both engines produce identical rows in identical order) plus
/// the work-derived measurements. `elapsed_ns` is computed from each
/// query's `ExecWork` and the network profile alone, so equal elapsed
/// time on a fixed profile means equal work accounting, query by query.
fn observables(
    case: &GenCase,
    outcome: &Outcome,
) -> (cobra::interp::NormalizedOutcome, u64, u64, u64) {
    let observed = case.observed_vars();
    let observed: Vec<&str> = observed.iter().map(|s| s.as_str()).collect();
    (
        outcome.normalized_with_vars(&observed),
        outcome.elapsed_ns,
        outcome.round_trips,
        outcome.stmts_executed,
    )
}

/// Run `program` on both engines over `net` (fresh fixture each, so runs
/// cannot contaminate each other) and assert every observable matches.
fn assert_engines_agree(
    case: &GenCase,
    net: &NetworkProfile,
    program: &cobra::imperative::ast::Program,
    label: &str,
) {
    let col = run_on_engine(&case.fixture(), net.clone(), ExecEngine::Columnar, program);
    let row = run_on_engine(&case.fixture(), net.clone(), ExecEngine::Row, program);
    match (col, row) {
        (Ok(c), Ok(r)) => {
            let c_obs = observables(case, &c.outcome);
            let r_obs = observables(case, &r.outcome);
            assert_eq!(
                c_obs,
                r_obs,
                "engines diverge: seed={} profile={} program={}\n{}",
                case.seed,
                net.name(),
                label,
                case.pretty()
            );
        }
        (Err(ce), Err(_)) => panic!(
            "both engines error on seed={} profile={} program={} (generator bug): {ce}",
            case.seed,
            net.name(),
            label
        ),
        (c, r) => panic!(
            "one engine errors: seed={} profile={} program={} columnar_err={} row_err={}",
            case.seed,
            net.name(),
            label,
            c.err().map(|e| e.to_string()).unwrap_or_default(),
            r.err().map(|e| e.to_string()).unwrap_or_default(),
        ),
    }
}

/// The acceptance sweep: ≥200 seeds × 3 network profiles, original *and*
/// optimized programs (the optimized side adds the join/aggregate shapes
/// the rewrites introduce), bit-identical observables and work-derived
/// timings throughout.
#[test]
fn corpus_agrees_across_engines_and_profiles() {
    let n = seed_count(200);
    let cfg = GenConfig::default();
    for seed in 0..n {
        let case = GenCase::from_seed(seed, &cfg);
        for net in profiles() {
            assert_engines_agree(&case, &net, &case.program, "original");
            // Optimize against this profile and run the chosen rewrite
            // through both engines too.
            let cobra = case.fixture().cobra_builder().network(net.clone()).build();
            let optimized = match cobra.optimize_program(&case.program) {
                Ok(o) => o,
                Err(e) => panic!("optimizer error on seed={seed}: {e}"),
            };
            let rewritten = case.program.with_entry(optimized.program.clone());
            assert_engines_agree(&case, &net, &rewritten, "optimized");
        }
    }
}

/// The skewed corpus drives different join fan-outs and histogram
/// shapes; a smaller sweep keeps the suite time-bounded.
#[test]
fn skewed_corpus_agrees_across_engines() {
    let cfg = GenConfig::skewed();
    for seed in 1000..1040u64 {
        let case = GenCase::from_seed(seed, &cfg);
        for net in profiles() {
            assert_engines_agree(&case, &net, &case.program, "original");
        }
    }
}

/// The optimizer surfaces which data plane it is configured for.
#[test]
fn report_names_the_engine_and_batch_size() {
    let case = GenCase::from_seed(3, &GenConfig::default());
    let program = &case.program;
    let fixture = case.fixture();

    let report = Cobra::builder(fixture.db.clone())
        .mappings(fixture.mapping.clone())
        .funcs(fixture.funcs.clone())
        .build()
        .explain(program)
        .expect("explain");
    assert_eq!(report.engine, ExecEngine::Columnar);
    assert_eq!(report.batch_size, cobra::minidb::BATCH_SIZE);
    let text = report.to_string();
    assert!(
        text.contains("execution: columnar engine, batch size"),
        "{text}"
    );

    let report = Cobra::builder(fixture.db.clone())
        .mappings(fixture.mapping.clone())
        .funcs(fixture.funcs.clone())
        .engine(ExecEngine::Row)
        .build()
        .explain(program)
        .expect("explain");
    assert_eq!(report.engine, ExecEngine::Row);
    assert!(report.to_string().contains("execution: row engine"), "");
}
