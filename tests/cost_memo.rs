//! Integration tests for the memoized costing layer (`volcano::CostMemo`)
//! as used by the COBRA optimizer: cache effectiveness on real searches
//! and — the correctness contract — that memoized search produces
//! *identical* estimates to un-memoized search. (Counter and merge-
//! invalidation micro-tests live with the implementation in
//! `crates/volcano/src/costmemo.rs`.)

use cobra::core::Cobra;
use cobra::netsim::NetworkProfile;
use cobra::workloads::{motivating, wilos};

fn cobra_for_motivating(memoize: bool) -> (Cobra, Vec<cobra::imperative::ast::Program>) {
    let fx = motivating::build_fixture(2_000, 400, 11);
    let cobra = fx
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .memoize_costs(memoize)
        .build();
    (cobra, vec![motivating::p0(), motivating::m0()])
}

/// The optimizer's search actually exercises the cache. (Before the
/// worklist cost-table engine, value iteration re-evaluated every m-expr
/// each sweep and hits far outnumbered misses; the worklist skips
/// expressions whose child costs are unchanged, so extraction and the
/// report path are now the main repeat consumers — the cache must still
/// see both traffic and hits.)
#[test]
fn optimizer_search_hits_the_cost_cache() {
    let (cobra, programs) = cobra_for_motivating(true);
    for program in &programs {
        let opt = cobra.optimize_program(program).unwrap();
        assert!(opt.cost_cache_misses > 0, "search consults the model");
        assert!(
            opt.cost_cache_hits > 0,
            "extraction re-reads costs the worklist computed: {} hits vs {} misses",
            opt.cost_cache_hits,
            opt.cost_cache_misses
        );
    }
}

/// Memoized search returns identical `est_cost_ns` (and identical chosen
/// programs) to un-memoized search on the motivating workloads.
#[test]
fn memoized_search_is_identical_to_unmemoized() {
    let (with_memo, programs) = cobra_for_motivating(true);
    let (without_memo, _) = cobra_for_motivating(false);
    for program in &programs {
        let a = with_memo.optimize_program(program).unwrap();
        let b = without_memo.optimize_program(program).unwrap();
        assert_eq!(
            a.est_cost_ns.to_bits(),
            b.est_cost_ns.to_bits(),
            "bit-identical estimated cost for {}",
            program.entry().name
        );
        assert_eq!(a.original_cost_ns.to_bits(), b.original_cost_ns.to_bits());
        assert_eq!(
            cobra::imperative::pretty::function_to_string(&a.program),
            cobra::imperative::pretty::function_to_string(&b.program),
            "identical chosen program"
        );
        assert!(a.cost_cache_misses > 0, "memoized run reports its misses");
        assert_eq!(
            (b.cost_cache_hits, b.cost_cache_misses),
            (0, 0),
            "memoization off"
        );
    }
    // Same property across every Wilos pattern.
    for pattern in wilos::Pattern::all() {
        let fx = wilos::build_fixture(2_000, 5);
        let program = wilos::representative(pattern);
        let base = fx
            .cobra_builder()
            .network(NetworkProfile::fast_local())
            .build();
        let a = base.optimize_program(&program).unwrap();
        let fx2 = wilos::build_fixture(2_000, 5);
        let off = fx2
            .cobra_builder()
            .network(NetworkProfile::fast_local())
            .memoize_costs(false)
            .build();
        let b = off.optimize_program(&program).unwrap();
        assert_eq!(
            a.est_cost_ns.to_bits(),
            b.est_cost_ns.to_bits(),
            "pattern {pattern:?}"
        );
    }
}
