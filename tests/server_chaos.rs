//! Chaos harness for Cobra-as-a-service: seeded fault-injection fuzzing
//! over the wire, panic isolation and health-machine behavior in
//! process, and crash-safe snapshot/restore of the plan cache.
//!
//! The fuzz contract, per seed: a server under
//! [`FaultPlan::chaos`](cobra::server::FaultPlan::chaos) injecting
//! connection resets, partial writes, stalls, slow replies, corrupted
//! frames, and worker panics must turn every fault into *either* a
//! retried success *or* a typed [`ServerError`] — never a hang, a lost
//! session, or a wrong answer. Results obtained under chaos are
//! bit-identical to a fault-free run of the same programs.
//!
//! Seed count defaults to 200 (split across four test functions so the
//! harness parallelizes) and can be overridden with `CHAOS_SEEDS=n`.

use cobra::prelude::*;
use cobra::server::{
    CacheOutcome, FaultConfig, FaultPlan, Health, RetryPolicy, ServerError, Snapshot,
};
use imperative::ast::{Stmt, StmtKind};
use interp::NormalizedOutcome;
use std::sync::Once;
use std::time::Duration;

/// Silence the panic hook for *injected* worker panics (they are part of
/// the test plan, not noise worth 200 stack traces); everything else —
/// including assertion failures — still prints through the default hook.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected"))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

/// True if the program performs a database write (writes advance the
/// stats epoch and invalidate cached plans — determinism is undefined).
fn writes_db(program: &Program) -> bool {
    fn stmts_write(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| {
            matches!(s.kind, StmtKind::UpdateQuery { .. })
                || s.children().iter().any(|c| stmts_write(c))
        })
    }
    program.functions.iter().any(|f| stmts_write(&f.body))
}

/// The first `n` generated cases whose programs are read-only.
fn read_only_cases(n: usize) -> Vec<GenCase> {
    (0..)
        .map(|seed| GenCase::from_seed(seed, &GenConfig::default()))
        .filter(|c| !writes_db(&c.program))
        .take(n)
        .collect()
}

fn tenant_for(name: &str, fx: &Fixture) -> TenantSpec {
    // Feedback off: chaos replays submissions in fault-dependent order,
    // and bit-identical results are the property under test.
    TenantSpec::new(name, fx.db.clone(), fx.mapping.clone(), fx.funcs.clone()).feedback(false)
}

fn total_seeds() -> u64 {
    std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Fault-free reference results for `cases` (computed in process; the
/// wire carries programs fingerprint-identically, so the transport
/// cannot change answers).
fn baseline(cases: &[GenCase]) -> Vec<NormalizedOutcome> {
    let service = CobraService::new(ServerConfig::default());
    let mut out = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        let fx = case.fixture();
        let tenant = service.register_tenant(tenant_for(&format!("t{i}"), &fx));
        let session = service.open_session(tenant).unwrap();
        out.push(service.submit(session, &case.program).unwrap().results);
    }
    service.shutdown();
    out
}

/// One chaos run: a server injecting faults from `seed`, a retrying
/// client, every submission driven to success (or a typed error and
/// re-driven), answers checked against the fault-free baseline.
fn chaos_run(seed: u64, cases: &[GenCase], expected: &[NormalizedOutcome]) {
    let service = CobraService::new(ServerConfig {
        faults: FaultPlan::chaos(seed),
        ..ServerConfig::default()
    });
    let mut tenants = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        let fx = case.fixture();
        tenants.push(service.register_tenant(tenant_for(&format!("t{i}"), &fx)));
    }
    let server = WireServer::spawn(service, "127.0.0.1:0").expect("bind");
    let policy = RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        request_timeout: Duration::from_secs(2),
        seed,
    };
    let mut client = WireClient::connect_with(server.local_addr(), policy).expect("connect");

    for (i, case) in cases.iter().enumerate() {
        let session = client.open_session(&format!("t{i}")).expect("open session");
        // Cold, then warm submissions; every one must end in a success
        // whose results match the fault-free run. A submission may
        // exhaust its retry budget under a dense fault schedule — that
        // must surface as a *typed transient* error, and re-driving it
        // must eventually succeed (the schedule advances per attempt).
        for round in 0..4 {
            let mut reply = None;
            for _ in 0..5 {
                match client.submit(session, &case.program) {
                    Ok(r) => {
                        reply = Some(r);
                        break;
                    }
                    Err(
                        ServerError::Io(_)
                        | ServerError::Protocol(_)
                        | ServerError::Internal(_)
                        | ServerError::Overloaded { .. },
                    ) => continue, // typed + transient: allowed, re-drive
                    Err(other) => panic!("seed {seed} case {i} round {round}: {other}"),
                }
            }
            let reply = reply
                .unwrap_or_else(|| panic!("seed {seed} case {i} round {round}: never succeeded"));
            assert_eq!(
                reply.results, expected[i],
                "seed {seed} case {i} round {round}: chaos changed an answer"
            );
        }
        client.close_session(session).expect("close session");
    }
    // The session layer survived: counters are reachable and coherent.
    let counters = client.counters().expect("counters after chaos");
    assert!(counters.executions >= cases.len() as u64);
    server.shutdown();
}

fn chaos_quarter(quarter: u64) {
    quiet_injected_panics();
    let total = total_seeds();
    let per = total.div_ceil(4);
    let cases = read_only_cases(2);
    let expected = baseline(&cases);
    for seed in (quarter * per)..((quarter + 1) * per).min(total) {
        chaos_run(seed, &cases, &expected);
    }
}

#[test]
fn chaos_fuzz_first_quarter() {
    chaos_quarter(0);
}

#[test]
fn chaos_fuzz_second_quarter() {
    chaos_quarter(1);
}

#[test]
fn chaos_fuzz_third_quarter() {
    chaos_quarter(2);
}

#[test]
fn chaos_fuzz_fourth_quarter() {
    chaos_quarter(3);
}

#[test]
fn stalled_server_hits_the_client_deadline_with_a_typed_error() {
    // Every response stalls longer than the client deadline: each attempt
    // times out, the bounded retry budget drains, and the caller gets a
    // typed I/O error — promptly, not a hang.
    let service = CobraService::new(ServerConfig {
        faults: FaultPlan::from_config(FaultConfig {
            seed: 1,
            stall_permille: 1000,
            stall: Duration::from_millis(400),
            ..FaultConfig::off()
        }),
        ..ServerConfig::default()
    });
    let cases = read_only_cases(1);
    let fx = cases[0].fixture();
    service.register_tenant(tenant_for("t0", &fx));
    let server = WireServer::spawn(service, "127.0.0.1:0").expect("bind");
    let policy = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        request_timeout: Duration::from_millis(50),
        seed: 9,
    };
    let mut client = WireClient::connect_with(server.local_addr(), policy).expect("connect");
    let start = std::time::Instant::now();
    let err = client.open_session("t0").expect_err("every reply stalls");
    assert!(matches!(err, ServerError::Io(_)), "typed: {err}");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "deadline bounded the wait"
    );
    assert_eq!(client.retries(), 1, "one retry then give up at 2 attempts");
    server.shutdown();
}

#[test]
fn idempotent_retry_replays_the_recorded_reply() {
    quiet_injected_panics();
    let cases = read_only_cases(1);
    let fx = cases[0].fixture();
    let service = CobraService::new(ServerConfig::default());
    let tenant = service.register_tenant(tenant_for("t0", &fx));
    let session = service.open_session(tenant).unwrap();

    let first = service
        .submit_idempotent(session, &cases[0].program, 77)
        .unwrap();
    let replay = service
        .submit_idempotent(session, &cases[0].program, 77)
        .unwrap();
    // The replay is the *stored* reply — same cache outcome (a real
    // re-submission would report Hit, not Miss), no second execution.
    assert_eq!(replay.cache, first.cache);
    assert_eq!(replay.results, first.results);
    assert_eq!(service.counters().idempotent_replays, 1);
    assert_eq!(service.counters().executions, 1, "executed exactly once");

    // A different key executes normally (and hits the warm cache).
    let fresh = service
        .submit_idempotent(session, &cases[0].program, 78)
        .unwrap();
    assert_eq!(fresh.cache, CacheOutcome::Hit);
    assert_eq!(service.counters().executions, 2);
    service.shutdown();
}

#[test]
fn worker_panics_degrade_the_server_then_recovery_follows() {
    quiet_injected_panics();
    // Panic on (almost) every optimizer search. Submissions fail with
    // typed Internal errors, the health machine degrades after the
    // configured streak, and — because a panicking worker never poisons
    // a lock or wedges a queue — the first searches that squeak through
    // warm the cache, subsequent submissions are clean hits, and the
    // server recovers to Healthy.
    let cases = read_only_cases(1);
    let fx = cases[0].fixture();
    let service = CobraService::new(ServerConfig {
        faults: FaultPlan::from_config(FaultConfig {
            seed: 0xDEAD,
            panic_permille: 600,
            ..FaultConfig::off()
        }),
        degrade_after_faults: 2,
        recover_after_ok: 3,
        ..ServerConfig::default()
    });
    let tenant = service.register_tenant(tenant_for("t0", &fx));
    let session = service.open_session(tenant).unwrap();

    let mut internal_errors = 0u64;
    let mut saw_degraded = false;
    let mut successes = 0u64;
    for _ in 0..200 {
        match service.submit(session, &cases[0].program) {
            Ok(_) => successes += 1,
            Err(ServerError::Internal(msg)) => {
                internal_errors += 1;
                assert!(msg.contains("injected"), "panic payload surfaced: {msg}");
            }
            Err(other) => panic!("only Internal errors expected, got {other}"),
        }
        if service.health() == Health::Degraded {
            saw_degraded = true;
        }
        if saw_degraded && successes >= 3 && service.health() == Health::Healthy {
            break;
        }
    }
    assert!(internal_errors >= 2, "panics surfaced as typed errors");
    assert!(saw_degraded, "sustained faults degraded the server");
    assert_eq!(
        service.health(),
        Health::Healthy,
        "clean hits recovered the health machine"
    );
    // Nothing is poisoned or wedged: the full surface still works.
    assert!(service.counters().internal_errors >= 2);
    assert!(service.session_report(session).is_ok());
    service.shutdown();
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cobra-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn snapshot_restart_restore_serves_warm_hits() {
    let cases = read_only_cases(2);
    let path = temp_path("restart.cbsn");

    // First life: warm the cache (feedback on — observations are part of
    // the snapshot), persist, shut down. The database outlives the
    // service, as it would for any embedded or networked store.
    let mut fixtures = Vec::new();
    let service = CobraService::new(ServerConfig::default());
    let mut replies = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        let fx = case.fixture();
        let tenant = service.register_tenant(TenantSpec::new(
            format!("t{i}"),
            fx.db.clone(),
            fx.mapping.clone(),
            fx.funcs.clone(),
        ));
        let session = service.open_session(tenant).unwrap();
        let reply = service.submit(session, &case.program).unwrap();
        assert_eq!(reply.cache, CacheOutcome::Miss);
        replies.push(reply);
        fixtures.push(fx);
    }
    service.snapshot_to(&path).expect("persist");
    service.shutdown();
    drop(service);

    // Second life: same databases, fresh process state. Restore, then
    // submit the same programs — warm hits, bit-identical results, no
    // optimizer search.
    let service = CobraService::new(ServerConfig::default());
    for (i, fx) in fixtures.iter().enumerate() {
        service.register_tenant(TenantSpec::new(
            format!("t{i}"),
            fx.db.clone(),
            fx.mapping.clone(),
            fx.funcs.clone(),
        ));
    }
    let report = service.restore_from(&path).expect("restore");
    assert_eq!(report.tenants_matched, 2);
    assert_eq!(report.plans_restored, 2, "{report}");
    assert_eq!(report.plans_skipped_stale, 0, "{report}");

    for (i, case) in cases.iter().enumerate() {
        let tenant = service.tenant_id(&format!("t{i}")).unwrap();
        let session = service.open_session(tenant).unwrap();
        let reply = service.submit(session, &case.program).unwrap();
        assert_eq!(reply.cache, CacheOutcome::Hit, "restored plan serves hits");
        assert_eq!(
            reply.results, replies[i].results,
            "bit-identical across restart"
        );
        assert_eq!(reply.fingerprint, replies[i].fingerprint);
    }
    assert_eq!(
        service.counters().cache_misses,
        0,
        "no re-search after restore"
    );
    assert!(service.counters().restored_plans >= 2);
    service.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_or_stale_snapshots_are_rejected_and_the_server_starts_cold() {
    let cases = read_only_cases(1);
    let fx = cases[0].fixture();
    let path = temp_path("corrupt.cbsn");

    let service = CobraService::new(ServerConfig::default());
    let tenant = service.register_tenant(tenant_for("t0", &fx));
    let session = service.open_session(tenant).unwrap();
    service.submit(session, &cases[0].program).unwrap();
    service.snapshot_to(&path).expect("persist");
    service.shutdown();

    // Corrupt one payload byte; every damaged variant must be rejected
    // with the typed Snapshot error.
    let good = std::fs::read(&path).unwrap();
    let mut flipped = good.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    assert!(matches!(
        Snapshot::decode(&flipped),
        Err(ServerError::Snapshot(_))
    ));
    assert!(matches!(
        Snapshot::decode(&good[..good.len() / 2]),
        Err(ServerError::Snapshot(_))
    ));
    assert!(matches!(
        Snapshot::decode(b"not a snapshot at all"),
        Err(ServerError::Snapshot(_))
    ));

    // A fresh server pointed at the damaged file reports the error and
    // serves cold — never wedged.
    std::fs::write(&path, &flipped).unwrap();
    let service = CobraService::new(ServerConfig::default());
    let tenant = service.register_tenant(tenant_for("t0", &fx));
    let err = service.restore_from(&path).expect_err("corrupt file");
    assert!(matches!(err, ServerError::Snapshot(_)), "typed: {err}");
    let session = service.open_session(tenant).unwrap();
    let reply = service.submit(session, &cases[0].program).unwrap();
    assert_eq!(reply.cache, CacheOutcome::Miss, "cold start still serves");
    service.shutdown();

    // A *stale* snapshot (different database instance) restores cleanly
    // but skips everything — stamps gate resurrection.
    let service = CobraService::new(ServerConfig::default());
    let other = cases[0].fixture(); // fresh db => different instance id
    service.register_tenant(tenant_for("t0", &other));
    let report = service.restore(&Snapshot::decode(&good).unwrap());
    assert_eq!(report.plans_restored, 0);
    assert!(report.plans_skipped_stale >= 1, "{report}");
    service.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn faults_off_is_behavior_identical_to_the_unfaulted_wire() {
    // The inert plan must not perturb the wire path: same outcomes, no
    // retries consumed, zero injected faults.
    let cases = read_only_cases(1);
    let fx = cases[0].fixture();
    let service = CobraService::new(ServerConfig::default());
    assert!(!service.config().faults.enabled());
    service.register_tenant(tenant_for("t0", &fx));
    let server = WireServer::spawn(service, "127.0.0.1:0").expect("bind");
    let mut client =
        WireClient::connect_with(server.local_addr(), RetryPolicy::standard(3)).expect("connect");
    let session = client.open_session("t0").unwrap();
    let cold = client.submit(session, &cases[0].program).unwrap();
    let warm = client.submit(session, &cases[0].program).unwrap();
    assert_eq!(cold.cache, CacheOutcome::Miss);
    assert_eq!(warm.cache, CacheOutcome::Hit);
    assert_eq!(warm.results, cold.results);
    assert_eq!(client.retries(), 0, "nothing to retry");
    assert_eq!(server.service().config().faults.total_injected(), 0);
    client.shutdown_server().unwrap();
    server.shutdown();
}
