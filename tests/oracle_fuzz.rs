//! The differential-execution oracle's main corpus: ≥ 500 seed-generated
//! programs, each optimized and executed across 3 network profiles × 2
//! search budgets, asserting original-vs-optimized observational
//! equivalence in every cell.
//!
//! Widen the corpus locally without recompiling:
//! `FUZZ_SEEDS=5000 cargo test --release --test oracle_fuzz`
//! (or `FUZZ_SEEDS=2000..3000` for a window). CI pins `0..500` so the run
//! is deterministic and time-bounded.

use cobra::oracle::{fuzz, run_case, seed_range_from_env, OracleMatrix};
use cobra::workloads::genprog::{GenCase, GenConfig};

use std::collections::HashSet;

/// The acceptance sweep: zero equivalence failures over the whole corpus,
/// across every cell of the default matrix.
#[test]
fn corpus_is_equivalence_clean_across_the_matrix() {
    let seeds = seed_range_from_env(500);
    let n_seeds = seeds.end - seeds.start;
    let matrix = OracleMatrix::default();
    let cells = matrix.cells().len();
    let report = fuzz(seeds, &GenConfig::default(), &matrix);

    assert!(report.failures.is_empty(), "{}", report.render_failures());
    assert_eq!(report.cases as u64, n_seeds);
    assert_eq!(
        report.runs as u64,
        n_seeds * cells as u64,
        "every case ran every cell (3 profiles × 2 budgets)"
    );
    assert_eq!(
        report.distinct_programs as u64, n_seeds,
        "generated programs are pairwise distinct"
    );
    // The corpus actually exercises the optimizer: rewrites fire and the
    // tight budget clips searches.
    assert!(
        report.records.iter().any(|r| r.alternatives > 1),
        "some programs must have alternatives"
    );
    assert!(
        report
            .records
            .iter()
            .any(|r| r.budget == "tight" && r.budget_exhausted),
        "the tight budget must clip some searches"
    );
}

/// Single-rule ablations: the full standard set and every
/// one-rule-disabled variant must all be semantics-preserving on a
/// 60-seed corpus (8 rule sets × 60 cases).
#[test]
fn rule_ablations_stay_equivalent() {
    let matrix = OracleMatrix::rule_ablation();
    assert_eq!(
        matrix.rulesets.len(),
        8,
        "standard + 7 single-rule ablations"
    );
    let report = fuzz(4000..4060, &GenConfig::default(), &matrix);
    assert!(report.failures.is_empty(), "{}", report.render_failures());
    assert_eq!(report.runs, 60 * 8);
}

/// Every case regenerates bit-identically from its seed alone — a printed
/// seed is a complete repro recipe.
#[test]
fn cases_reproduce_from_seed_alone() {
    let cfg = GenConfig::default();
    for seed in [0u64, 17, 123, 499] {
        let a = GenCase::from_seed(seed, &cfg);
        let b = GenCase::from_seed(seed, &cfg);
        assert_eq!(a.pretty(), b.pretty());
        assert_eq!(
            a.fixture().db.read().unwrap().table("t0").unwrap().rows(),
            b.fixture().db.read().unwrap().table("t0").unwrap().rows(),
            "fixture data is seed-determined too"
        );
        // And the full matrix verdict is reproducible.
        let ra = run_case(&a, &OracleMatrix::default());
        let rb = run_case(&b, &OracleMatrix::default());
        assert_eq!(ra.failures.len(), rb.failures.len());
        assert_eq!(ra.records.len(), rb.records.len());
    }
}

/// The generator draws varied schemas: table counts span the configured
/// range and foreign keys always exist.
#[test]
fn schemas_vary_across_seeds() {
    let cfg = GenConfig::default();
    let mut table_counts = HashSet::new();
    for seed in 0..50u64 {
        let case = GenCase::from_seed(seed, &cfg);
        table_counts.insert(case.schema.tables.len());
        assert!(
            case.schema.tables.iter().any(|t| t.parent.is_some()),
            "every schema has at least one foreign key"
        );
    }
    assert!(
        table_counts.len() >= 3,
        "table counts should vary: {table_counts:?}"
    );
}
