//! Runtime-validated plan selection, end to end through the facade.
//!
//! Three contracts:
//!
//! 1. **Off means off** — with `OptimizerConfig::validation` left `None`
//!    (the default), optimizer output is bit-identical to the cost-only
//!    path; a `top_k = 1` validation config is equally inert (slot 0 of
//!    `volcano::top_k_plans` is `best_plan_from` by construction).
//! 2. **The validation record is internally consistent** — candidates
//!    arrive in predicted-cost order, promotion only ever picks a
//!    *measured* winner that beats a *measured* baseline by the
//!    configured speedup, and the chosen program's estimate matches the
//!    promoted candidate's.
//! 3. **The server honors it** — `ServerConfig::validate` routes cache
//!    fills through validated selection and counts measured promotions.

use cobra::prelude::*;
use cobra::server::CobraService;
use std::sync::Arc;

/// Strict equality over every `Optimized` field (float fields compared
/// by bit pattern — "no worse" is not the contract here, *identical* is).
fn assert_bit_identical(a: &cobra::core::Optimized, b: &cobra::core::Optimized, what: &str) {
    assert_eq!(a.program, b.program, "{what}: chosen program");
    assert_eq!(
        a.est_cost_ns.to_bits(),
        b.est_cost_ns.to_bits(),
        "{what}: est_cost_ns"
    );
    assert_eq!(
        a.original_cost_ns.to_bits(),
        b.original_cost_ns.to_bits(),
        "{what}: original_cost_ns"
    );
    assert_eq!(a.alternatives, b.alternatives, "{what}: alternatives");
    assert_eq!(a.choice_points, b.choice_points, "{what}: choice_points");
    assert_eq!(a.groups, b.groups, "{what}: groups");
    assert_eq!(a.exprs, b.exprs, "{what}: exprs");
    assert_eq!(a.tags, b.tags, "{what}: tags");
    assert_eq!(
        (a.cost_cache_hits, a.cost_cache_misses),
        (b.cost_cache_hits, b.cost_cache_misses),
        "{what}: cost-memo counters"
    );
    assert_eq!(
        (a.estimator_cache_hits, a.estimator_cache_misses),
        (b.estimator_cache_hits, b.estimator_cache_misses),
        "{what}: estimator counters"
    );
    assert_eq!(
        a.feedback_overrides, b.feedback_overrides,
        "{what}: feedback_overrides"
    );
    assert_eq!(
        a.budget_exhausted, b.budget_exhausted,
        "{what}: budget_exhausted"
    );
}

/// With validation disabled (the default), and with a `top_k = 1`
/// validation config (a single candidate — nothing to validate), output
/// is bit-identical to the plain cost-only optimizer on the same case.
#[test]
fn validation_off_and_top_k_one_are_bit_identical_to_cost_only() {
    let gen = GenConfig::skewed();
    let mut programs: Vec<(String, GenCase)> = (0..6u64)
        .map(|s| {
            (
                format!("skewed seed {}", 7000 + s),
                GenCase::from_seed(7000 + s, &gen),
            )
        })
        .collect();
    programs.push((
        "default seed 0".to_string(),
        GenCase::from_seed(0, &GenConfig::default()),
    ));

    for (what, case) in &programs {
        // Fresh fixtures per optimizer: shared estimator caches would
        // otherwise skew the second run's hit/miss counters.
        let plain = case
            .fixture()
            .cobra_builder()
            .network(NetworkProfile::slow_remote())
            .build()
            .optimize_program(&case.program)
            .expect("cost-only optimizes");
        assert!(
            plain.validation.is_none(),
            "{what}: no validation record without the knob"
        );

        let inert = case
            .fixture()
            .cobra_builder()
            .network(NetworkProfile::slow_remote())
            .validate_selection(cobra::core::ValidationConfig::default().with_top_k(1))
            .build()
            .optimize_program(&case.program)
            .expect("top_k=1 optimizes");
        assert!(
            inert.validation.is_none(),
            "{what}: a single candidate leaves nothing to validate"
        );
        assert_bit_identical(&plain, &inert, what);
    }
}

/// The validation record's internal consistency on the skewed corpus:
/// predicted order, measured-only promotion, matching estimates, and the
/// `validated-promotion` tag exactly when a challenger won.
#[test]
fn validation_records_are_consistent_and_promotions_are_measured() {
    let gen = GenConfig::skewed();
    let vcfg = cobra::core::ValidationConfig::default();
    let mut validated_cases = 0;
    for seed in 0..6u64 {
        let case = GenCase::from_seed(7000 + seed, &gen);
        let optimized = case
            .fixture()
            .cobra_builder()
            .network(NetworkProfile::slow_remote())
            .validate_selection(vcfg.clone())
            .build()
            .optimize_program(&case.program)
            .expect("optimizes");
        let Some(v) = &optimized.validation else {
            // Single-candidate programs legitimately skip validation.
            continue;
        };
        validated_cases += 1;
        assert!(
            v.candidates.len() > 1,
            "validation only runs with competition"
        );
        assert!(v.promoted_rank < v.candidates.len());
        for (i, c) in v.candidates.iter().enumerate() {
            assert_eq!(c.predicted_rank, i, "candidates arrive in predicted order");
            if i > 0 {
                assert!(
                    c.predicted_cost_ns >= v.candidates[i - 1].predicted_cost_ns,
                    "predicted costs ascend"
                );
            }
        }
        // The summary's estimate is the promoted candidate's estimate.
        assert_eq!(
            optimized.est_cost_ns.to_bits(),
            v.candidates[v.promoted_rank].predicted_cost_ns.to_bits(),
        );
        let promoted_tag = optimized.tags.contains(&"validated-promotion");
        assert_eq!(
            promoted_tag,
            v.promoted_rank > 0,
            "tag tracks actual promotion"
        );
        if v.promoted_rank > 0 {
            let base = v.candidates[0].measured_ns.expect("baseline was measured");
            let win = v.candidates[v.promoted_rank]
                .measured_ns
                .expect("promoted winner was measured");
            assert!(
                base / win >= vcfg.min_speedup,
                "promotion clears the speedup bar: base {base} ns vs win {win} ns"
            );
            assert!(!v.agreement, "a promotion is by definition a disagreement");
        }
        // No feedback store attached, so freshness can't short-circuit.
        assert_eq!(v.source, cobra::core::ValidationSource::Execution);

        // Determinism: a second fresh optimizer reproduces the record.
        let again = case
            .fixture()
            .cobra_builder()
            .network(NetworkProfile::slow_remote())
            .validate_selection(vcfg.clone())
            .build()
            .optimize_program(&case.program)
            .expect("optimizes again");
        assert_eq!(
            again.validation.as_ref(),
            Some(v),
            "validation is deterministic"
        );
        assert_eq!(again.program, optimized.program);
    }
    assert!(
        validated_cases > 0,
        "the skewed corpus must exercise validation at least once"
    );
}

/// An attached-but-empty feedback store cannot satisfy the freshness
/// shortcut: validation falls back to measured execution.
#[test]
fn empty_feedback_store_falls_back_to_execution() {
    let case = GenCase::from_seed(7000, &GenConfig::skewed());
    let optimized = case
        .fixture()
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .feedback(Arc::new(minidb::FeedbackStore::new()))
        .validate_selection(cobra::core::ValidationConfig::default())
        .build()
        .optimize_program(&case.program)
        .expect("optimizes");
    if let Some(v) = &optimized.validation {
        assert_eq!(v.source, cobra::core::ValidationSource::Execution);
    }
}

/// `ServerConfig::validate` wires validated selection into the plan
/// cache's compute path: fresh submissions go through measured selection
/// and promotions are counted server-wide.
#[test]
fn server_routes_cache_fills_through_validated_selection() {
    let service = CobraService::new(ServerConfig {
        validate: Some(cobra::core::ValidationConfig::default()),
        ..ServerConfig::default()
    });
    let gen = GenConfig::skewed();
    let mut promoted_tags = 0;
    for seed in 0..4u64 {
        let case = GenCase::from_seed(7000 + seed, &gen);
        let fx = case.fixture();
        let tenant = service.register_tenant(
            TenantSpec::new(
                format!("t{seed}"),
                fx.db.clone(),
                fx.mapping.clone(),
                fx.funcs.clone(),
            )
            .feedback(false),
        );
        let session = service.open_session(tenant).expect("open session");
        let reply = service.submit(session, &case.program).expect("submits");
        if reply.tags.iter().any(|t| t == "validated-promotion") {
            promoted_tags += 1;
        }
    }
    let counters = service.counters();
    assert_eq!(
        counters.validated_promotions, promoted_tags,
        "server counter matches the promoted submissions"
    );
    assert!(
        counters.validated_promotions >= 1,
        "the skewed corpus promotes at least one measured winner"
    );
    service.shutdown();
}
