//! Properties of the static rewrite verifier (`crates/analysis`):
//!
//! * Soundness of the verifier itself: every generated program and every
//!   alternative the standard rules derive from it passes all three
//!   passes — over a 200-seed corpus by default
//!   (`VERIFY_SEEDS=500 cargo test --test verifier_properties` widens it;
//!   CI's `static-analysis` job runs the full 500).
//! * `VerifyLevel::Off` is bit-identical to `Panic` and `Reject` on clean
//!   rule sets across 100 seeds × 3 network profiles — verification never
//!   changes what a sound search produces, and `Off` (the default) is the
//!   exact pre-verifier code path.
//! * The intentionally broken `broken_limit_rule` is rejected
//!   *statically* — no execution — on seed 0, with a diagnostic naming
//!   the pass, the offending node and the rule.
//! * A mutation battery of hand-broken rule variants (dropped write,
//!   leaked binding, stolen read) is each caught by the expected pass.

use cobra::analysis;
use cobra::core::VerifyLevel;
use cobra::fir::{self, FirAlternative, FirNode};
use cobra::netsim::NetworkProfile;
use cobra::oracle::{broken_limit_rule, mid_range};
use cobra::prelude::*;
use cobra::workloads::genprog::{GenCase, GenConfig};

fn verify_seeds() -> u64 {
    std::env::var("VERIFY_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Expand `base` under `rules` with the static verifier attached,
/// returning the expansion (rejected alternatives recorded, not kept).
fn expand_verified(base: FirAlternative, rules: &RuleSet) -> fir::Expansion {
    let check = |b: &FirAlternative, alt: &FirAlternative| {
        let delta = rules.delta_for_applied(&alt.rules_applied);
        analysis::verify_rewrite(b, alt, &delta).map_err(|d| d.to_string())
    };
    fir::expand_with_verifier(base, rules, 64, Some(&check))
}

/// The corpus sweep: every generated program and every rule-produced
/// alternative passes all three passes. Run at `VerifyLevel::Panic`
/// through the real optimizer path, so a verifier false positive (or a
/// latent rule bug) aborts with its diagnostic.
#[test]
fn corpus_and_all_rule_outputs_pass_all_passes() {
    let cfg = GenConfig::default();
    for seed in 0..verify_seeds() {
        let case = GenCase::from_seed(seed, &cfg);
        let fixture = case.fixture();
        let cobra = fixture
            .cobra_builder()
            .network(NetworkProfile::slow_remote())
            .verify_rewrites(VerifyLevel::Panic)
            .build();
        let opt = cobra
            .optimize_program(&case.program)
            .unwrap_or_else(|e| panic!("seed {seed} fails to optimize: {e}"));
        assert!(
            !opt.tags.contains(&"verifier-rejected"),
            "seed {seed}: Panic level never rejects, it aborts"
        );
    }
}

/// `VerifyLevel::Off` (the default) is bit-identical to verified output
/// on sound rule sets: 100 seeds × 3 profiles, comparing the emitted
/// program text, the cost bits, the search-space counters, the tags and
/// the rendered explain report across all three levels.
#[test]
fn off_level_is_bit_identical_across_levels() {
    let cfg = GenConfig::default();
    let profiles = [
        NetworkProfile::slow_remote(),
        NetworkProfile::fast_local(),
        mid_range(),
    ];
    for seed in 0..100u64 {
        let case = GenCase::from_seed(seed, &cfg);
        for profile in &profiles {
            let run = |level: VerifyLevel| {
                let fixture = case.fixture();
                let cobra = fixture
                    .cobra_builder()
                    .network(profile.clone())
                    .verify_rewrites(level)
                    .build();
                let report = cobra.explain(&case.program).expect("optimizes");
                (
                    pretty::function_to_string(&report.summary.program),
                    report.summary.est_cost_ns.to_bits(),
                    report.summary.original_cost_ns.to_bits(),
                    report.summary.alternatives,
                    report.summary.choice_points,
                    report.summary.groups,
                    report.summary.exprs,
                    report.summary.tags.clone(),
                    report.to_string(),
                )
            };
            let off = run(VerifyLevel::Off);
            let panic_level = run(VerifyLevel::Panic);
            let reject = run(VerifyLevel::Reject);
            assert_eq!(off, panic_level, "seed {seed}: Off ≠ Panic output");
            assert_eq!(off, reject, "seed {seed}: Off ≠ Reject output");
        }
    }
}

/// `broken_limit_rule` is caught statically on seed 0: the verifier
/// rejects every Xbug-derived alternative during expansion — nothing is
/// executed — and the surviving search is bit-identical to the standard
/// rule set's.
#[test]
fn broken_limit_rule_is_rejected_statically_on_seed_0() {
    let case = GenCase::from_seed(0, &GenConfig::default());
    let fixture = case.fixture();
    let broken = RuleSet::standard().with_rule(broken_limit_rule());

    let opt = fixture
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .rules(broken.clone())
        .verify_rewrites(VerifyLevel::Reject)
        .build()
        .optimize_program(&case.program)
        .expect("optimizes");
    assert!(
        opt.tags.contains(&"verifier-rejected"),
        "seed 0 must statically trip the verifier, tags: {:?}",
        opt.tags
    );
    let diag = opt
        .verifier_rejections
        .first()
        .expect("rejection diagnostics recorded");
    assert!(
        diag.contains("pass 2 (effect analysis)"),
        "the LIMIT theft is an effect violation: {diag}"
    );
    assert!(diag.contains("at node"), "diagnostic names a node: {diag}");
    assert!(diag.contains("Xbug"), "diagnostic names the rule: {diag}");
    assert!(
        diag.contains("LIMIT"),
        "diagnostic names the defect: {diag}"
    );

    // With the unsound alternatives dropped, the search result is
    // bit-identical to the standard rule set's.
    let clean = fixture
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .build()
        .optimize_program(&case.program)
        .expect("optimizes");
    assert_eq!(
        pretty::function_to_string(&opt.program),
        pretty::function_to_string(&clean.program),
        "rejection restores the standard search"
    );
    assert_eq!(opt.est_cost_ns.to_bits(), clean.est_cost_ns.to_bits());
}

// ---------------------------------------------------------------- mutants

fn mappings() -> MappingRegistry {
    let mut r = MappingRegistry::new();
    r.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
        "customer",
        "Customer",
        "o_customer_sk",
    ));
    r.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
    r
}

/// A base alternative with *two* accumulators, so a dropped write leaves
/// a non-empty (but wrong) assignment list for pass 2 to catch.
fn two_accumulator_base() -> FirAlternative {
    let body = vec![
        Stmt::new(StmtKind::Add(
            "total".into(),
            Expr::field(Expr::var("o"), "o_qty"),
        )),
        Stmt::new(StmtKind::Let(
            "cust".into(),
            Expr::nav(Expr::var("o"), "customer"),
        )),
        Stmt::new(StmtKind::Add(
            "years".into(),
            Expr::field(Expr::var("cust"), "c_birth_year"),
        )),
    ];
    fir::build::loop_to_fold(
        "o",
        &Expr::LoadAll("Order".into()),
        &body,
        &mappings(),
        Some(&["total".to_string(), "years".to_string()]),
    )
    .expect("foldable loop")
}

/// Mutant 1 — dropped write: a rule that deletes the last assignment.
/// Caught by pass 2 (the write set shrank).
#[test]
fn mutant_dropping_a_write_is_caught_by_pass_2() {
    let rule = Rule::alternative(
        "Xdrop",
        "INTENTIONALLY BROKEN: drop the last assignment",
        |alt| {
            if alt.assigns.len() < 2 {
                return Vec::new();
            }
            let mut out = alt.clone();
            out.assigns.pop();
            out.rules_applied.push("Xdrop");
            vec![out]
        },
    );
    let rules = RuleSet::standard().with_rule(rule);
    let exp = expand_verified(two_accumulator_base(), &rules);
    assert!(!exp.rejected.is_empty(), "the dropped write must be caught");
    let diag = exp
        .rejected
        .iter()
        .find(|d| d.contains("Xdrop"))
        .expect("a rejection attributed to Xdrop");
    assert!(
        diag.contains("pass 2 (effect analysis)"),
        "expected pass 2, got: {diag}"
    );
    assert!(diag.contains("drops the write"), "defect named: {diag}");
}

/// Mutant 2 — leaked binding: a rule that replaces `project_i(fold)`
/// with the fold's i-th body item, so row bindings and accumulator
/// markers escape the fold. Caught by pass 3.
#[test]
fn mutant_leaking_a_binding_is_caught_by_pass_3() {
    let rule = Rule::alternative(
        "Xleak",
        "INTENTIONALLY BROKEN: hoist a fold body item out of its fold",
        |alt| {
            let Some((var, root)) = alt.assigns.first().cloned() else {
                return Vec::new();
            };
            let FirNode::Project(fold, idx) = alt.arena.node(root).clone() else {
                return Vec::new();
            };
            let FirNode::Fold { func, .. } = alt.arena.node(fold).clone() else {
                return Vec::new();
            };
            let FirNode::Tuple(items) = alt.arena.node(func).clone() else {
                return Vec::new();
            };
            let mut out = alt.clone();
            out.assigns[0] = (var, items[idx]);
            out.rules_applied.push("Xleak");
            vec![out]
        },
    );
    let rules = RuleSet::standard().with_rule(rule);
    let exp = expand_verified(two_accumulator_base(), &rules);
    assert!(
        !exp.rejected.is_empty(),
        "the leaked binding must be caught"
    );
    let diag = exp
        .rejected
        .iter()
        .find(|d| d.contains("Xleak"))
        .expect("a rejection attributed to Xleak");
    assert!(
        diag.contains("pass 3 (binding-leak)"),
        "expected pass 3, got: {diag}"
    );
    assert!(
        diag.contains("escapes the fold body"),
        "defect named: {diag}"
    );
}

/// Mutant 3 — stolen read: `broken_limit_rule` truncates fold sources to
/// one row. Caught by pass 2 (a table read became LIMIT-truncated), at
/// the F-IR level with no execution at all.
#[test]
fn mutant_stealing_reads_is_caught_by_pass_2() {
    let rules = RuleSet::standard().with_rule(broken_limit_rule());
    let exp = expand_verified(two_accumulator_base(), &rules);
    assert!(!exp.rejected.is_empty(), "the stolen read must be caught");
    let diag = exp
        .rejected
        .iter()
        .find(|d| d.contains("Xbug"))
        .expect("a rejection attributed to Xbug");
    assert!(
        diag.contains("pass 2 (effect analysis)"),
        "expected pass 2, got: {diag}"
    );
    assert!(diag.contains("LIMIT"), "defect named: {diag}");
    assert!(diag.contains("at node"), "offending node named: {diag}");
    // Sound alternatives survive alongside: the verifier is selective.
    assert!(exp.alternatives.len() > 1, "sound alternatives survive");
}
