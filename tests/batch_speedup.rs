//! Wall-clock speedup of `Cobra::optimize_batch` over sequential
//! optimization. Lives in its own test binary so no sibling test competes
//! for cores during the timed comparison (cargo runs test binaries one at
//! a time; tests *within* a binary run concurrently).

use cobra::netsim::NetworkProfile;
use cobra::workloads::wilos;
use std::time::Instant;

/// On a multi-core host, the batch driver beats back-to-back sequential
/// optimization in wall-clock time. Work is repeated enough times that
/// scheduling noise cannot flip the comparison on a healthy machine.
#[test]
fn batch_is_faster_than_sequential_on_multicore() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        // On 1 core there is nothing to measure; on 2–3 shared CI cores
        // the comparison is noise-dominated — only assert where a speedup
        // is reliably observable.
        eprintln!("{cores}-core host: speedup assertion skipped (needs >= 4)");
        return;
    }
    let fx = wilos::build_fixture(5_000, 9);
    let cobra = fx
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .build();
    // 6 patterns × 4 = 24 searches per measurement.
    let mut programs = Vec::new();
    for _ in 0..4 {
        for pattern in wilos::Pattern::all() {
            programs.push(wilos::representative(pattern));
        }
    }

    // Warm-up (page in stats, allocate caches) before timing.
    for p in programs.iter().take(2) {
        cobra.optimize_program(p).unwrap();
    }

    let t0 = Instant::now();
    for p in &programs {
        cobra.optimize_program(p).unwrap();
    }
    let sequential = t0.elapsed();

    let t1 = Instant::now();
    let results = cobra.optimize_batch(&programs);
    let parallel = t1.elapsed();
    assert!(results.iter().all(|r| r.is_ok()));

    let speedup = sequential.as_secs_f64() / parallel.as_secs_f64();
    println!(
        "optimize_batch: {} programs, {cores} cores: sequential {:?}, parallel {:?}, speedup {speedup:.2}x",
        programs.len(),
        sequential,
        parallel
    );
    assert!(
        speedup > 1.0,
        "parallel batch must beat sequential on {cores} cores: {speedup:.2}x"
    );
}
