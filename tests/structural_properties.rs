//! Property tests on the program-analysis substrate: for *randomly
//! generated structured programs*, the CFG-based structural analysis must
//! reconstruct exactly the region tree that the AST implies, and regions
//! must round-trip to statements losslessly.

use cobra::imperative::ast::{Expr, Function, Stmt, StmtKind};
use cobra::imperative::regions::Region;
use cobra::imperative::structural;
use cobra::minidb::BinOp;
use proptest::prelude::*;

/// A random simple (non-compound) statement.
fn simple_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        ("[a-z]{1,4}", 0i64..100).prop_map(|(v, n)| Stmt::new(StmtKind::Let(
            v,
            Expr::lit(n)
        ))),
        "[a-z]{1,4}".prop_map(|v| Stmt::new(StmtKind::NewCollection(v))),
        (0i64..100).prop_map(|n| Stmt::new(StmtKind::Print(Expr::lit(n)))),
        ("[a-z]{1,4}", "[a-z]{1,4}").prop_map(|(c, v)| Stmt::new(StmtKind::Add(
            c,
            Expr::var(v)
        ))),
    ]
}

/// Random structured statement lists, recursion depth ≤ 3.
fn stmts(depth: u32) -> BoxedStrategy<Vec<Stmt>> {
    let leaf = prop::collection::vec(simple_stmt(), 1..4);
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = stmts(depth - 1);
    let compound = prop_oneof![
        // if-then / if-then-else
        (any::<bool>(), inner.clone(), inner.clone(), 0i64..10).prop_map(
            |(has_else, t, e, n)| {
                vec![Stmt::new(StmtKind::If {
                    cond: Expr::bin(BinOp::Lt, Expr::var("x"), Expr::lit(n)),
                    then_branch: t,
                    else_branch: if has_else { e } else { vec![] },
                })]
            }
        ),
        // cursor loop
        (inner.clone(),).prop_map(|(body,)| {
            vec![Stmt::new(StmtKind::ForEach {
                var: "t".into(),
                iter: Expr::var("rows"),
                body,
            })]
        }),
        // while loop
        (inner.clone(), 0i64..10).prop_map(|(body, n)| {
            vec![Stmt::new(StmtKind::While {
                cond: Expr::bin(BinOp::Lt, Expr::var("i"), Expr::lit(n)),
                body,
            })]
        }),
    ];
    (prop::collection::vec(prop_oneof![simple_stmt().prop_map(|s| vec![s]), compound], 1..4))
        .prop_map(|chunks| chunks.into_iter().flatten().collect())
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CFG-based structural analysis reconstructs the AST's region tree on
    /// arbitrary structured programs.
    #[test]
    fn structural_analysis_matches_ast_regions(body in stmts(3)) {
        let mut f = Function::new("t", vec![], body);
        f.number_lines(2);
        let from_cfg = structural::analyze(&f).expect("structured program reduces");
        let from_ast = Region::from_function(&f).normalize();
        prop_assert!(
            from_cfg.same_shape(&from_ast),
            "shapes differ for:\n{}",
            cobra::imperative::pretty::function_to_string(&f)
        );
    }

    /// Regions reconstruct their statements losslessly.
    #[test]
    fn regions_round_trip_statements(body in stmts(3)) {
        let mut f = Function::new("t", vec![], body);
        f.number_lines(2);
        let region = Region::from_function(&f);
        prop_assert_eq!(region.to_stmts(), f.body);
    }

    /// Region labels are well-formed and the outermost region spans the
    /// whole body.
    #[test]
    fn region_spans_cover_the_body(body in stmts(2)) {
        let mut f = Function::new("t", vec![], body);
        f.number_lines(2);
        let region = Region::from_function(&f);
        let first = f.body.first().map(|s| s.line).unwrap_or(0);
        prop_assert_eq!(region.span.0, first);
        let mut max_line = 0;
        for s in &f.body {
            max_line = max_line.max(s.max_line());
        }
        prop_assert!(region.span.1 >= max_line);
    }

    /// Inserting any structured program into the memo and extracting the
    /// (only) plan reproduces the program.
    #[test]
    fn region_dag_identity_extraction(body in stmts(2)) {
        use cobra::core::region_ops::{optree_to_stmts, region_to_optree, RegionOp};
        let mut f = Function::new("t", vec![], body);
        f.number_lines(2);
        let region = Region::from_function(&f);
        let mut memo: cobra::volcano::Memo<RegionOp> = cobra::volcano::Memo::new();
        let root = memo.insert_tree(&region_to_optree(&region), None);
        struct Unit;
        impl cobra::volcano::CostModel<RegionOp> for Unit {
            fn cost(
                &self,
                _m: &cobra::volcano::Memo<RegionOp>,
                _e: cobra::volcano::MExprId,
                child_costs: &[f64],
            ) -> f64 {
                1.0 + child_costs.iter().sum::<f64>()
            }
        }
        let best = cobra::volcano::best_plan(&memo, root, &Unit).expect("plan");
        prop_assert_eq!(optree_to_stmts(&best.tree), f.body);
    }
}
