//! Property tests on the program-analysis substrate: for *randomly
//! generated structured programs*, the CFG-based structural analysis must
//! reconstruct exactly the region tree that the AST implies, and regions
//! must round-trip to statements losslessly.
//!
//! Driven by a deterministic xorshift generator instead of proptest (the
//! workspace builds offline); the failing case index is in the assertion
//! message and programs are reproducible from the fixed seed.

use cobra::imperative::ast::{Expr, Function, Stmt, StmtKind};
use cobra::imperative::regions::Region;
use cobra::imperative::structural;
use cobra::minidb::BinOp;
use cobra::workloads::rng::StdRng;

/// A short lowercase name, `[a-z]{1,4}`.
fn name(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..5usize);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u32) as u8) as char)
        .collect()
}

/// A random simple (non-compound) statement.
fn simple_stmt(rng: &mut StdRng) -> Stmt {
    match rng.gen_range(0..4) {
        0 => Stmt::new(StmtKind::Let(
            name(rng),
            Expr::lit(rng.gen_range(0..100) as i64),
        )),
        1 => Stmt::new(StmtKind::NewCollection(name(rng))),
        2 => Stmt::new(StmtKind::Print(Expr::lit(rng.gen_range(0..100) as i64))),
        _ => Stmt::new(StmtKind::Add(name(rng), Expr::var(name(rng)))),
    }
}

/// Random structured statement lists, recursion depth ≤ `depth`.
fn stmts(rng: &mut StdRng, depth: u32) -> Vec<Stmt> {
    let mut out = Vec::new();
    for _ in 0..rng.gen_range(1..4) {
        if depth == 0 || rng.gen_range(0..4) == 0 {
            out.push(simple_stmt(rng));
            continue;
        }
        match rng.gen_range(0..3) {
            0 => {
                let has_else = rng.gen_bool();
                let then_branch = stmts(rng, depth - 1);
                let else_branch = if has_else {
                    stmts(rng, depth - 1)
                } else {
                    vec![]
                };
                out.push(Stmt::new(StmtKind::If {
                    cond: Expr::bin(
                        BinOp::Lt,
                        Expr::var("x"),
                        Expr::lit(rng.gen_range(0..10) as i64),
                    ),
                    then_branch,
                    else_branch,
                }));
            }
            1 => {
                out.push(Stmt::new(StmtKind::ForEach {
                    var: "t".into(),
                    iter: Expr::var("rows"),
                    body: stmts(rng, depth - 1),
                }));
            }
            _ => {
                out.push(Stmt::new(StmtKind::While {
                    cond: Expr::bin(
                        BinOp::Lt,
                        Expr::var("i"),
                        Expr::lit(rng.gen_range(0..10) as i64),
                    ),
                    body: stmts(rng, depth - 1),
                }));
            }
        }
    }
    out
}

/// CFG-based structural analysis reconstructs the AST's region tree on
/// arbitrary structured programs.
#[test]
fn structural_analysis_matches_ast_regions() {
    let mut rng = StdRng::seed_from_u64(0x57A7);
    for case in 0..128 {
        let mut f = Function::new("t", vec![], stmts(&mut rng, 3));
        f.number_lines(2);
        let from_cfg = structural::analyze(&f).expect("structured program reduces");
        let from_ast = Region::from_function(&f).normalize();
        assert!(
            from_cfg.same_shape(&from_ast),
            "case {case}: shapes differ for:\n{}",
            cobra::imperative::pretty::function_to_string(&f)
        );
    }
}

/// Regions reconstruct their statements losslessly.
#[test]
fn regions_round_trip_statements() {
    let mut rng = StdRng::seed_from_u64(0x2071);
    for case in 0..128 {
        let mut f = Function::new("t", vec![], stmts(&mut rng, 3));
        f.number_lines(2);
        let region = Region::from_function(&f);
        assert_eq!(region.to_stmts(), f.body, "case {case}");
    }
}

/// Region labels are well-formed and the outermost region spans the
/// whole body.
#[test]
fn region_spans_cover_the_body() {
    let mut rng = StdRng::seed_from_u64(0x5BA9);
    for case in 0..128 {
        let mut f = Function::new("t", vec![], stmts(&mut rng, 2));
        f.number_lines(2);
        let region = Region::from_function(&f);
        let first = f.body.first().map(|s| s.line).unwrap_or(0);
        assert_eq!(region.span.0, first, "case {case}");
        let mut max_line = 0;
        for s in &f.body {
            max_line = max_line.max(s.max_line());
        }
        assert!(region.span.1 >= max_line, "case {case}");
    }
}

/// Inserting any structured program into the memo and extracting the
/// (only) plan reproduces the program.
#[test]
fn region_dag_identity_extraction() {
    use cobra::core::region_ops::{optree_to_stmts, region_to_optree, RegionOp};
    struct Unit;
    impl cobra::volcano::CostModel<RegionOp> for Unit {
        fn cost(
            &self,
            _m: &cobra::volcano::Memo<RegionOp>,
            _e: cobra::volcano::MExprId,
            child_costs: &[f64],
        ) -> f64 {
            1.0 + child_costs.iter().sum::<f64>()
        }
    }
    let mut rng = StdRng::seed_from_u64(0x1DE4);
    for case in 0..128 {
        let mut f = Function::new("t", vec![], stmts(&mut rng, 2));
        f.number_lines(2);
        let region = Region::from_function(&f);
        let mut memo: cobra::volcano::Memo<RegionOp> = cobra::volcano::Memo::new();
        let root = memo.insert_tree(&region_to_optree(&region), None);
        let best = cobra::volcano::best_plan(&memo, root, &Unit).expect("plan");
        assert_eq!(optree_to_stmts(&best.tree), f.body, "case {case}");
    }
}
