//! Integration tests reproducing the paper's background/illustration
//! figures: Figure 4 (AND-OR DAG of a join query), Figures 5–6 (regions
//! and the Region DAG of P0), and the black-box path for unstructured
//! regions (§IV-B).

use cobra::imperative::ast::{Expr, Function, Program, Stmt, StmtKind};
use cobra::imperative::regions::Region;
use cobra::imperative::{pretty, structural};
use cobra::netsim::NetworkProfile;
use cobra::volcano::relalg::{left_deep_join, JoinAssociativity, JoinCommutativity};
use cobra::volcano::{count_plans, expand, Memo};
use cobra::workloads::motivating;

#[test]
fn figure_4_commutativity_gives_four_alternatives() {
    let mut memo = Memo::new();
    let root = memo.insert_tree(&left_deep_join(&["A", "B", "C"]), None);
    assert_eq!(memo.num_live_groups(), 5, "Figure 4b: A, B, C, AB, ABC");
    expand(&mut memo, &[&JoinCommutativity], 16);
    assert_eq!(
        count_plans(&memo, root),
        4,
        "Figure 4c: (A⋈B)⋈C, (B⋈A)⋈C, C⋈(A⋈B), C⋈(B⋈A)"
    );
}

#[test]
fn figure_4_framework_terminates_on_cyclic_rules() {
    let mut memo = Memo::new();
    let root = memo.insert_tree(&left_deep_join(&["A", "B", "C"]), None);
    // Run far more passes than needed: dedup must make this a fixpoint.
    let stats = expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 1000);
    assert!(stats.passes < 10, "fixpoint, not exhaustion: {stats:?}");
    assert_eq!(count_plans(&memo, root), 12);
}

#[test]
fn figure_5_region_labels() {
    let p0 = motivating::p0();
    let region = Region::from_function(p0.entry());
    // Figure 5's naming: outer sequential region S2-7, loop L3-7.
    assert_eq!(region.label("P0"), "P0.S2-7");
    let mut labels = Vec::new();
    region.walk(&mut |r| labels.push(r.label("P0")));
    assert!(labels.contains(&"P0.B2".to_string()), "{labels:?}");
    assert!(labels.contains(&"P0.L3-7".to_string()), "{labels:?}");
    assert!(labels.contains(&"P0.S4-6".to_string()), "{labels:?}");
}

#[test]
fn figure_6_structural_analysis_agrees_with_ast_regions() {
    let p0 = motivating::p0();
    let from_cfg = structural::analyze(p0.entry()).expect("P0 is structured");
    let from_ast = Region::from_function(p0.entry()).normalize();
    assert!(from_cfg.same_shape(&from_ast));
}

#[test]
fn unstructured_fragments_become_black_boxes_but_optimization_continues() {
    // A try/catch before the loop: the fragment is kept verbatim while the
    // loop around it is still rewritten (§IV-B).
    let fixture = motivating::build_fixture(2_000, 200, 5);
    let p0 = motivating::p0();
    let mut body = vec![Stmt::new(StmtKind::TryCatch {
        body: vec![Stmt::new(StmtKind::Print(Expr::lit("audit start")))],
        handler: vec![Stmt::new(StmtKind::Print(Expr::lit("audit failed")))],
    })];
    body.extend(p0.entry().body.clone());
    let mut f = Function::new("withAudit", p0.entry().params.clone(), body);
    f.number_lines(2);

    // The CFG-based analysis refuses the whole function…
    assert!(structural::analyze(&f).is_err(), "exceptional edges");

    // …but the optimizer still rewrites the loop around the black box.
    let cobra = fixture
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .build();
    let opt = cobra.optimize_program(&Program::single(f)).unwrap();
    let text = pretty::function_to_string(&opt.program);
    assert!(text.contains("try {"), "black box kept verbatim:\n{text}");
    assert!(
        opt.est_cost_ns < opt.original_cost_ns,
        "the loop around the black box was still optimized"
    );
}

#[test]
fn figure_6c_shared_blocks_are_stored_once() {
    // The Region DAG representing P0's alternatives stores the shared
    // first block (result = {}) exactly once — verified through the
    // optimizer's reported DAG sizes: groups < sum of per-alternative
    // region counts.
    let fixture = motivating::build_fixture(500, 100, 5);
    let cobra = fixture
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .build();
    let opt = cobra.optimize_program(&motivating::p0()).unwrap();
    assert!(opt.alternatives >= 3);
    // Each alternative alone has ≥ 5 regions; sharing keeps the DAG small.
    assert!(
        (opt.exprs as u64) < opt.alternatives * 5,
        "{} exprs for {} alternatives — sub-regions are shared",
        opt.exprs,
        opt.alternatives
    );
}
