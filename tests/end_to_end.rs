//! End-to-end integration: COBRA optimizes the motivating example and its
//! choices match the paper's Experiments 1–3 qualitatively.

use cobra::core::Cobra;
use cobra::imperative::pretty;
use cobra::netsim::NetworkProfile;
use cobra::workloads::{harness::run_on, motivating};

fn cobra_for(fixture: &cobra::workloads::Fixture, net: NetworkProfile) -> Cobra {
    fixture.cobra_builder().network(net).build()
}

#[test]
fn optimizing_p0_generates_at_least_three_program_alternatives() {
    let fx = motivating::build_fixture(1_000, 200, 11);
    let cobra = cobra_for(&fx, NetworkProfile::slow_remote());
    let opt = cobra.optimize_program(&motivating::p0()).unwrap();
    assert!(
        opt.alternatives >= 3,
        "P0, P1-like and P2-like at minimum, got {}",
        opt.alternatives
    );
    assert!(opt.est_cost_ns <= opt.original_cost_ns);
}

#[test]
fn slow_remote_low_cardinality_chooses_join_like_p1() {
    // Experiment 1: at low |Orders| the join query wins.
    let fx = motivating::build_fixture(1_000, 20_000, 11);
    let cobra = cobra_for(&fx, NetworkProfile::slow_remote());
    let opt = cobra.optimize_program(&motivating::p0()).unwrap();
    assert!(
        opt.tags.contains(&"sql-join"),
        "expected P1-like choice, got {:?}:\n{}",
        opt.tags,
        pretty::function_to_string(&opt.program)
    );
}

#[test]
fn slow_remote_high_cardinality_chooses_prefetch_like_p2() {
    // Experiment 1: as |Orders| approaches |Customers| the duplication in
    // the join result makes prefetching win.
    let fx = motivating::build_fixture(30_000, 3_000, 11);
    let cobra = cobra_for(&fx, NetworkProfile::slow_remote());
    let opt = cobra.optimize_program(&motivating::p0()).unwrap();
    assert!(
        opt.tags.contains(&"prefetch"),
        "expected P2-like choice, got {:?}:\n{}",
        opt.tags,
        pretty::function_to_string(&opt.program)
    );
}

#[test]
fn optimized_program_is_semantically_equivalent_and_faster() {
    let fx = motivating::build_fixture(2_000, 400, 13);
    let net = NetworkProfile::slow_remote();
    let cobra = cobra_for(&fx, net.clone());
    let p0 = motivating::p0();
    let opt = cobra.optimize_program(&p0).unwrap();

    let original = run_on(&fx, net.clone(), &p0).unwrap();
    let rewritten = run_on(
        &fx,
        net,
        &cobra::imperative::ast::Program::single(opt.program.clone()),
    )
    .unwrap();

    assert_eq!(
        original.outcome.var_snapshot("result").normalized(),
        rewritten.outcome.var_snapshot("result").normalized(),
        "rewrite must preserve semantics:\n{}",
        pretty::function_to_string(&opt.program)
    );
    assert!(
        rewritten.secs < original.secs / 2.0,
        "rewrite should be much faster: {} vs {}",
        rewritten.secs,
        original.secs
    );
}

#[test]
fn cobra_never_picks_worse_than_original_estimate() {
    for (orders, customers) in [(100, 5_000), (5_000, 100), (1_000, 1_000)] {
        let fx = motivating::build_fixture(orders, customers, 17);
        for net in [NetworkProfile::slow_remote(), NetworkProfile::fast_local()] {
            let cobra = cobra_for(&fx, net);
            let opt = cobra.optimize_program(&motivating::p0()).unwrap();
            assert!(
                opt.est_cost_ns <= opt.original_cost_ns * 1.001,
                "({orders},{customers}): {} > {}",
                opt.est_cost_ns,
                opt.original_cost_ns
            );
        }
    }
}

#[test]
fn m0_dependent_aggregation_is_not_degraded() {
    // §V-B: extracting `sum` to SQL while keeping the loop adds a query;
    // COBRA must keep the single-query original.
    let fx = motivating::build_fixture(5_000, 500, 19);
    let cobra = cobra_for(&fx, NetworkProfile::slow_remote());
    let opt = cobra.optimize_program(&motivating::m0()).unwrap();
    let text = pretty::function_to_string(&opt.program);
    assert!(
        !text.contains("executeScalar"),
        "no extra aggregate query:\n{text}"
    );
    let queries = text.matches("executeQuery").count();
    assert_eq!(queries, 1, "single query retained:\n{text}");
}

#[test]
fn optimization_chooses_min_of_measured_alternatives() {
    // The cost-based choice should track the actually-fastest alternative
    // (shape property of Figures 13a-c).
    let configs = [(500usize, 10_000usize), (20_000, 2_000)];
    for (orders, customers) in configs {
        let fx = motivating::build_fixture(orders, customers, 23);
        let net = NetworkProfile::slow_remote();
        let t0 = run_on(&fx, net.clone(), &motivating::p0()).unwrap().secs;
        let t1 = run_on(&fx, net.clone(), &motivating::p1()).unwrap().secs;
        let t2 = run_on(&fx, net.clone(), &motivating::p2()).unwrap().secs;
        let cobra = cobra_for(&fx, net.clone());
        let opt = cobra.optimize_program(&motivating::p0()).unwrap();
        let chosen = run_on(
            &fx,
            net,
            &cobra::imperative::ast::Program::single(opt.program.clone()),
        )
        .unwrap()
        .secs;
        let best = t0.min(t1).min(t2);
        assert!(
            chosen <= best * 1.5,
            "({orders},{customers}): chosen {chosen}s vs best-of-three {best}s \
             (P0={t0}, P1={t1}, P2={t2})"
        );
    }
}
