//! The typed configuration API: `CobraBuilder` equivalence with the
//! legacy constructor chain, `SearchBudget` enforcement (exhaustion is
//! surfaced, never silent), and `Cobra::explain`'s structured report.

use cobra::prelude::*;

fn workloads() -> Vec<(String, Fixture, Program)> {
    let fx = motivating::build_fixture(2_000, 400, 11);
    let mut out = vec![
        ("P0".to_string(), fx.clone(), motivating::p0()),
        ("M0".to_string(), fx, motivating::m0()),
    ];
    for pattern in wilos::Pattern::all() {
        out.push((
            format!("{pattern:?}"),
            wilos::build_fixture(2_000, 11),
            wilos::representative(pattern),
        ));
    }
    out
}

/// The builder with default `RuleSet`/`SearchBudget` reproduces the
/// legacy `Cobra::new` + `with_funcs` path bit for bit on P0/M0 and the
/// Wilos patterns A–F.
#[test]
fn builder_matches_legacy_constructor_bit_identically() {
    for (name, fx, program) in workloads() {
        #[allow(deprecated)]
        let legacy = Cobra::new(
            fx.db.clone(),
            NetworkProfile::slow_remote(),
            CostCatalog::default(),
            fx.mapping.clone(),
        )
        .with_funcs(fx.funcs.clone());
        let built = fx
            .cobra_builder()
            .network(NetworkProfile::slow_remote())
            .build();

        let a = legacy.optimize_program(&program).unwrap();
        let b = built.optimize_program(&program).unwrap();
        assert_eq!(
            a.est_cost_ns.to_bits(),
            b.est_cost_ns.to_bits(),
            "{name}: bit-identical estimated cost"
        );
        assert_eq!(a.alternatives, b.alternatives, "{name}");
        assert_eq!(a.tags, b.tags, "{name}");
        assert_eq!(
            pretty::function_to_string(&a.program),
            pretty::function_to_string(&b.program),
            "{name}: identical chosen program"
        );
        assert_eq!(a.choice_points, b.choice_points, "{name}");
        assert_eq!((a.groups, a.exprs), (b.groups, b.exprs), "{name}");
        assert!(!b.budget_exhausted, "{name}: default budget suffices");
    }
}

/// `explain` on P0: the loop region is a real choice point with at least
/// three alternatives (P0 as written, the P1-like join, the P2-like
/// prefetch), costs sorted consistently with the chosen program, and the
/// firing rules reported.
#[test]
fn explain_reports_p0_choice_points() {
    let fx = motivating::build_fixture(2_000, 400, 11);
    let cobra = fx
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .build();
    let report = cobra.explain(&motivating::p0()).unwrap();
    let summary = cobra.optimize_program(&motivating::p0()).unwrap();

    // The report's summary is the ordinary optimization result.
    assert_eq!(
        report.summary.est_cost_ns.to_bits(),
        summary.est_cost_ns.to_bits()
    );
    assert_eq!(report.summary.alternatives, summary.alternatives);

    let top = report.top_choice_point().expect("P0 has a choice point");
    assert!(top.on_chosen_path);
    assert!(
        top.alternatives.len() >= 3,
        "P0, P1-like, P2-like at minimum: {}",
        top.alternatives.len()
    );
    // Costs ascend, and the chosen alternative is the cheapest.
    for w in top.alternatives.windows(2) {
        assert!(w[0].cost_ns <= w[1].cost_ns, "costs sorted ascending");
    }
    assert!(top.alternatives[0].chosen, "winner leads the list");
    assert_eq!(
        top.alternatives.iter().filter(|a| a.chosen).count(),
        1,
        "exactly one winner per decided choice point"
    );
    assert!(
        top.alternatives[0].cost_ns > 0.0 && top.alternatives[0].cost_ns <= summary.est_cost_ns,
        "the region winner's cost is part of the program's total \
         ({} vs {})",
        top.alternatives[0].cost_ns,
        summary.est_cost_ns
    );
    // Exactly one alternative is the program as written; the rest name
    // the rules that derived them.
    assert!(top.alternatives.iter().any(|a| a.rules == vec!["original"]));
    assert!(
        report.rules_fired.contains(&"N1"),
        "{:?}",
        report.rules_fired
    );
    assert!(
        report.rules_fired.contains(&"T4/T5var(lookup-to-join)"),
        "{:?}",
        report.rules_fired
    );

    // The Display pretty-printer mentions the essentials.
    let text = report.to_string();
    assert!(text.contains("choice point"), "{text}");
    assert!(text.contains("N1"), "{text}");
    assert!(text.contains("optimization report"), "{text}");
}

/// Ablated rule sets reflect in the report: no alternative claims a
/// disabled rule produced it.
#[test]
fn explain_respects_rule_toggles() {
    let fx = motivating::build_fixture(2_000, 400, 11);
    let cobra = fx
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .rules(RuleSet::standard().without("N1"))
        .build();
    let report = cobra.explain(&motivating::p0()).unwrap();
    assert!(!report.rules_fired.contains(&"N1"));
    for cp in &report.choice_points {
        for alt in &cp.alternatives {
            assert!(!alt.rules.contains(&"N1"), "{:?}", alt.rules);
        }
    }
}

/// A clipped alternative budget is *surfaced* — flag and tag — while the
/// search still returns a valid (possibly worse) program.
#[test]
fn alternative_budget_exhaustion_is_surfaced() {
    let fx = motivating::build_fixture(2_000, 400, 11);
    let full = fx
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .build()
        .optimize_program(&motivating::p0())
        .unwrap();
    assert!(!full.budget_exhausted);
    assert!(!full.tags.contains(&"budget-exhausted"));

    let clipped = fx
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .budget(SearchBudget::default().with_max_alternatives_per_region(2))
        .build()
        .optimize_program(&motivating::p0())
        .unwrap();
    assert!(clipped.budget_exhausted, "clipping is recorded");
    assert!(clipped.tags.contains(&"budget-exhausted"));
    assert!(
        clipped.est_cost_ns >= full.est_cost_ns,
        "fewer alternatives can only cost more"
    );
    assert!(clipped.alternatives <= full.alternatives);
}

/// Memo-size caps stop DAG growth, are surfaced, and never break the
/// search (the original program is always representable).
#[test]
fn memo_caps_are_enforced_and_surfaced() {
    let fx = motivating::build_fixture(2_000, 400, 11);
    let full = fx
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .build()
        .optimize_program(&motivating::p0())
        .unwrap();
    let capped = fx
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .budget(SearchBudget::default().with_max_memo_exprs(8))
        .build()
        .optimize_program(&motivating::p0())
        .unwrap();
    assert!(capped.budget_exhausted);
    assert!(capped.exprs < full.exprs, "DAG growth was stopped");
    assert!(capped.est_cost_ns >= full.est_cost_ns);
}

/// An empty rule set degenerates gracefully: no transformation fires, so
/// the only alternatives are the program as written and its loop → fold →
/// regenerated-loop form (`toFIR` is the representation change the rules
/// build on, not a rule itself) — no join, no prefetch, no aggregation.
#[test]
fn empty_rule_set_keeps_the_original_program_shape() {
    let fx = motivating::build_fixture(1_000, 200, 11);
    let cobra = fx
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .rules(RuleSet::empty())
        .build();
    let opt = cobra.optimize_program(&motivating::p0()).unwrap();
    assert!(opt.alternatives <= 2, "original + toFIR round-trip at most");
    assert!(!opt.tags.contains(&"sql-join"), "{:?}", opt.tags);
    assert!(!opt.tags.contains(&"prefetch"), "{:?}", opt.tags);
    assert!(
        !opt.budget_exhausted,
        "nothing was clipped — nothing existed"
    );
}

/// A trivial program under the fully default (unbounded-caps) budget
/// must never report exhaustion — regression test for spurious
/// `budget_exhausted` on memos whose cost iteration needs every sweep.
#[test]
fn trivial_programs_never_report_budget_exhaustion() {
    let fx = motivating::build_fixture(100, 20, 7);
    let cobra = fx.cobra_builder().build();
    let mut f = Function::new(
        "noop",
        vec!["x".to_string()],
        vec![Stmt::new(StmtKind::Let("x".into(), Expr::lit(1i64)))],
    );
    f.number_lines(1);
    let opt = cobra.optimize_program(&Program::single(f)).unwrap();
    assert!(!opt.budget_exhausted, "{:?}", opt.tags);
    assert!(!opt.tags.contains(&"budget-exhausted"));
}

/// The deprecated shims still work end to end (compatibility contract:
/// one release of warnings, not breakage).
#[test]
#[allow(deprecated)]
fn deprecated_constructor_chain_still_optimizes() {
    let fx = motivating::build_fixture(500, 100, 7);
    let cobra = Cobra::new(
        fx.db.clone(),
        NetworkProfile::fast_local(),
        CostCatalog::default(),
        fx.mapping.clone(),
    )
    .with_funcs(fx.funcs.clone())
    .with_cost_memoization(false);
    let opt = cobra.optimize_program(&motivating::p0()).unwrap();
    assert!(opt.alternatives >= 3);
    assert_eq!(opt.cost_cache_hits, 0, "memoization toggle still works");
}

/// `OptimizerConfig` is a plain value: defaults are the documented ones
/// and a whole config can be swapped in at once.
#[test]
fn optimizer_config_round_trips_through_the_builder() {
    let config = OptimizerConfig::default();
    assert!(config.rules.is_enabled("T2"));
    assert!(config.memoize_costs);
    assert_eq!(config.budget, SearchBudget::default());

    let fx = motivating::build_fixture(500, 100, 7);
    let mut custom = OptimizerConfig {
        network: NetworkProfile::slow_remote(),
        catalog: CostCatalog::with_af(9.0),
        memoize_costs: false,
        ..Default::default()
    };
    custom.rules.disable("T5");
    let cobra = fx.cobra_builder().config(custom).build();
    assert_eq!(cobra.network().name(), "slow-remote");
    assert_eq!(cobra.catalog().default_af, 9.0);
    assert!(!cobra.config().memoize_costs);
    assert!(!cobra.rules().is_enabled("T5"));
    assert!(cobra.rules().is_enabled("T4"));
}
