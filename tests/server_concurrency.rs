//! Concurrency guarantees of Cobra-as-a-service.
//!
//! * Concurrent sessions observe results bit-identical to sequential
//!   submission (on read-only programs with feedback disabled — the only
//!   regime where determinism is even *defined*: feedback recording is
//!   order-dependent, and writes move the stats epoch).
//! * N sessions submitting the same program concurrently coalesce into a
//!   single optimizer search.
//! * Two tenants never share plan-cache entries or feedback state, even
//!   with byte-identical schemas and data.
//! * A warm cache makes re-submission dramatically cheaper than the
//!   first (cold) submission.
//! * Load beyond the admission queue is shed with a typed error, and
//!   queue pressure downgrades the search budget instead of stalling.

use cobra::prelude::*;
use cobra::server::{CacheOutcome, ServerError};
use imperative::ast::{Stmt, StmtKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// True if the program performs a database write (writes advance the
/// stats epoch, so they deliberately invalidate cached plans).
fn writes_db(program: &Program) -> bool {
    fn stmts_write(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| {
            matches!(s.kind, StmtKind::UpdateQuery { .. })
                || s.children().iter().any(|c| stmts_write(c))
        })
    }
    program.functions.iter().any(|f| stmts_write(&f.body))
}

/// The first `n` generated cases whose programs are read-only.
fn read_only_cases(n: usize) -> Vec<GenCase> {
    (0..)
        .map(|seed| GenCase::from_seed(seed, &GenConfig::default()))
        .filter(|c| !writes_db(&c.program))
        .take(n)
        .collect()
}

fn tenant_for(name: &str, fx: &Fixture, feedback: bool) -> TenantSpec {
    TenantSpec::new(name, fx.db.clone(), fx.mapping.clone(), fx.funcs.clone()).feedback(feedback)
}

#[test]
fn concurrent_sessions_match_sequential_results() {
    let cases = read_only_cases(4);
    // One shared database for every case: genprog schemas use distinct
    // table names per seed only within a case, so give each its own
    // tenant instead of merging databases.
    let service = CobraService::new(ServerConfig::default());
    let mut tenants = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        let fx = case.fixture();
        // Feedback OFF: recording is order-dependent across threads, and
        // determinism is the property under test.
        tenants.push(service.register_tenant(tenant_for(&format!("t{i}"), &fx, false)));
    }

    // Sequential baseline.
    let mut baseline = Vec::new();
    for (case, &tenant) in cases.iter().zip(&tenants) {
        let session = service.open_session(tenant).unwrap();
        let reply = service.submit(session, &case.program).unwrap();
        baseline.push(reply.results.clone());
        service.close_session(session).unwrap();
    }

    // 4 threads × 2 sessions each, all submitting every case.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let service = service.clone();
            let cases = &cases;
            let tenants = &tenants;
            let baseline = &baseline;
            scope.spawn(move || {
                for _ in 0..2 {
                    let sessions: Vec<_> = tenants
                        .iter()
                        .map(|&t| service.open_session(t).unwrap())
                        .collect();
                    for ((case, &session), expected) in cases.iter().zip(&sessions).zip(baseline) {
                        let reply = service.submit(session, &case.program).unwrap();
                        assert_eq!(
                            &reply.results, expected,
                            "seed {}: concurrent result diverged from sequential",
                            case.seed
                        );
                    }
                    for session in sessions {
                        service.close_session(session).unwrap();
                    }
                }
            });
        }
    });

    let counters = service.counters();
    // Every optimization after the baseline round is cache-served.
    assert_eq!(counters.cache_misses, cases.len() as u64);
    assert_eq!(
        counters.cache_hits + counters.coalesced,
        (cases.len() * 4 * 2) as u64
    );
    service.shutdown();
}

#[test]
fn concurrent_same_program_coalesces_into_one_search() {
    // Retry with fresh services: whether waiters land on the in-flight
    // window (coalesced) or arrive after completion (hit) is a race; the
    // invariant that always holds is ONE search. The coalesce observation
    // itself just needs enough attempts.
    const SESSIONS: usize = 8;
    let mut saw_coalesce = false;
    for attempt in 0..5 {
        // Seed 0 is read-only with a multi-millisecond search (33
        // statements): a wide single-flight window. Tiny rows keep the
        // execution after the search cheap.
        let case = GenCase::from_seed(0, &GenConfig::default()).with_row_scale(0.2);
        let fx = case.fixture();
        // Coalescing requires concurrent *admitted* requests: pin the
        // worker pool to the session count (the default is the machine's
        // parallelism, which on a small CI box can serialize admission).
        let service = CobraService::new(ServerConfig {
            max_concurrent: SESSIONS,
            ..ServerConfig::default()
        });
        let tenant = service.register_tenant(tenant_for("acme", &fx, false));
        let barrier = Arc::new(Barrier::new(SESSIONS));
        let coalesced = Arc::new(AtomicU64::new(0));

        std::thread::scope(|scope| {
            for _ in 0..SESSIONS {
                let service = service.clone();
                let program = &case.program;
                let barrier = barrier.clone();
                let coalesced = coalesced.clone();
                scope.spawn(move || {
                    let session = service.open_session(tenant).unwrap();
                    barrier.wait();
                    let reply = service.submit(session, program).unwrap();
                    if reply.cache == CacheOutcome::Coalesced {
                        coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });

        let counters = service.counters();
        assert_eq!(
            counters.cache_misses, 1,
            "attempt {attempt}: one search no matter how many sessions race"
        );
        assert_eq!(
            counters.cache_hits + counters.coalesced,
            (SESSIONS - 1) as u64
        );
        assert_eq!(counters.coalesced, coalesced.load(Ordering::Relaxed));
        service.shutdown();
        if counters.coalesced >= 1 {
            saw_coalesce = true;
            break;
        }
    }
    assert!(
        saw_coalesce,
        "no attempt observed single-flight coalescing (only post-completion hits)"
    );
}

#[test]
fn tenants_are_isolated_even_with_identical_data() {
    let case = GenCase::from_seed(5, &GenConfig::default());
    let fx_a = case.fixture();
    let fx_b = fx_a.fork_db(); // identical bytes, fresh instance id

    let service = CobraService::new(ServerConfig::default());
    let tenant_a = service.register_tenant(tenant_for("alpha", &fx_a, true));
    let tenant_b = service.register_tenant(tenant_for("beta", &fx_b, true));

    let session_a = service.open_session(tenant_a).unwrap();
    let reply_a = service.submit(session_a, &case.program).unwrap();
    assert_eq!(reply_a.cache, CacheOutcome::Miss);

    // Same program, same data — but a different tenant must NOT see
    // alpha's cached plan.
    let session_b = service.open_session(tenant_b).unwrap();
    let reply_b = service.submit(session_b, &case.program).unwrap();
    assert_eq!(reply_b.cache, CacheOutcome::Miss, "no cross-tenant hit");
    assert_eq!(reply_a.fingerprint, reply_b.fingerprint, "same program...");
    assert_ne!(reply_a.stamp, reply_b.stamp, "...different cache identity");
    assert_eq!(reply_a.results, reply_b.results, "same data, same answers");

    let counters = service.counters();
    assert_eq!((counters.cache_hits, counters.cache_misses), (0, 2));

    // Feedback is per-tenant too: each store saw only its own run.
    let fb_a = service.tenant_feedback(tenant_a).unwrap();
    let fb_b = service.tenant_feedback(tenant_b).unwrap();
    let gen_a_before = fb_a.generation();
    service.submit(session_b, &case.program).unwrap();
    assert_eq!(
        fb_a.generation(),
        gen_a_before,
        "beta's executions must not touch alpha's feedback store"
    );
    assert!(fb_b.generation() >= gen_a_before.min(1));
    service.shutdown();
}

#[test]
fn warm_cache_submissions_are_at_least_10x_faster_than_cold() {
    // Seed 0: heavy search, and tiny rows (cheap execution) so the
    // measured gap is the optimization the warm path skips.
    let case = GenCase::from_seed(0, &GenConfig::default()).with_row_scale(0.2);
    let service = CobraService::new(ServerConfig::default());

    // Cold: three fresh tenants (fresh instance id ⇒ cold key); take the
    // minimum to shed scheduler noise.
    let fx = case.fixture();
    let mut cold_ns = u64::MAX;
    for i in 0..3 {
        let fx_cold = fx.fork_db();
        let tenant = service.register_tenant(tenant_for(&format!("cold{i}"), &fx_cold, false));
        let session = service.open_session(tenant).unwrap();
        let reply = service.submit(session, &case.program).unwrap();
        assert_eq!(reply.cache, CacheOutcome::Miss);
        cold_ns = cold_ns.min(reply.wall_ns);
    }

    // Warm: one tenant, one priming miss, then repeated hits.
    let tenant = service.register_tenant(tenant_for("warm", &fx, false));
    let session = service.open_session(tenant).unwrap();
    let first = service.submit(session, &case.program).unwrap();
    assert_eq!(first.cache, CacheOutcome::Miss);
    let mut warm_ns = u64::MAX;
    for _ in 0..10 {
        let reply = service.submit(session, &case.program).unwrap();
        assert_eq!(reply.cache, CacheOutcome::Hit);
        warm_ns = warm_ns.min(reply.wall_ns);
    }

    assert!(
        cold_ns >= warm_ns.saturating_mul(10),
        "warm ({warm_ns} ns) must be ≥10x faster than cold ({cold_ns} ns)"
    );
    service.shutdown();
}

#[test]
fn overload_is_shed_with_a_typed_error() {
    // One worker, zero queue: a submission arriving while the worker is
    // busy must shed. Seed 0's multi-millisecond search keeps the worker
    // occupied long enough to observe it deterministically.
    let case = GenCase::from_seed(0, &GenConfig::default()).with_row_scale(0.2);
    let fx = case.fixture();
    let service = CobraService::new(ServerConfig {
        max_concurrent: 1,
        max_queue: 0,
        ..ServerConfig::default()
    });
    let tenant = service.register_tenant(tenant_for("acme", &fx, false));

    let mut shed = None;
    for attempt in 0..50i64 {
        // A fresh program variant each attempt: its cold search keeps the
        // background worker busy for milliseconds (a cached hit wouldn't).
        let program = variant(&case.program, attempt);
        let admitted_before = service.counters().admitted;
        std::thread::scope(|scope| {
            let service_bg = service.clone();
            let program_bg = &program;
            scope.spawn(move || {
                let session = service_bg.open_session(tenant).unwrap();
                let _ = service_bg.submit(session, program_bg);
            });
            // Wait until the background submission holds the worker slot
            // (admission counts before the search starts)...
            while service.counters().admitted == admitted_before {
                std::thread::yield_now();
            }
            // ...then submit against the saturated pool.
            let session = service.open_session(tenant).unwrap();
            for _ in 0..5 {
                if let Err(e @ ServerError::Overloaded { .. }) = service.submit(session, &program) {
                    shed = Some(e);
                    break;
                }
            }
        });
        if shed.is_some() {
            break;
        }
    }
    assert!(
        matches!(
            shed,
            Some(ServerError::Overloaded {
                running: 1,
                queued: 0
            })
        ),
        "a saturated one-worker/zero-queue server must shed load, got {shed:?}"
    );
    assert!(service.counters().rejected >= 1);
    service.shutdown();
}

/// `program` with an extra unused `let` prepended to the entry — same
/// observable behavior, different structural fingerprint (its own plan
/// cache key).
fn variant(program: &Program, i: i64) -> Program {
    let mut entry = program.entry().clone();
    entry.body.insert(
        0,
        Stmt::new(StmtKind::Let(format!("pad_{i}"), Expr::lit(i))),
    );
    program.with_entry(entry)
}

#[test]
fn queue_pressure_degrades_the_budget_and_skips_retention() {
    // One worker, deep queue, degrade at depth 1: requests that queue are
    // served under the degraded budget, and their results must not be
    // retained in the plan cache. Seed 0's multi-millisecond search is
    // the pressure source: an occupant submission holds the single worker
    // while the storm threads pile into the queue behind it.
    let case = GenCase::from_seed(0, &GenConfig::default()).with_row_scale(0.2);
    let fx = case.fixture();
    // Distinct program per thread: no coalescing, so every phase-A reply
    // is a Miss and its `degraded` flag tells us whether its (unretained)
    // search was degraded.
    let variants: Vec<Program> = (0..4).map(|i| variant(&case.program, i)).collect();

    for attempt in 0..8i64 {
        let service = CobraService::new(ServerConfig {
            max_concurrent: 1,
            max_queue: 16,
            degrade_queue_depth: 1,
            ..ServerConfig::default()
        });
        let tenant = service.register_tenant(tenant_for("acme", &fx, false));

        // Phase A: occupy, then storm. The occupant's cold search keeps
        // the worker busy for milliseconds; the storm threads admitted in
        // that window see a non-empty queue and degrade (the first can
        // still see depth 0 and keep the full budget).
        let occupant = variant(&case.program, 100 + attempt);
        let admitted_before = service.counters().admitted;
        let mut degraded_flags = vec![false; variants.len()];
        std::thread::scope(|scope| {
            {
                let service = service.clone();
                let occupant = &occupant;
                scope.spawn(move || {
                    let session = service.open_session(tenant).unwrap();
                    let _ = service.submit(session, occupant);
                });
            }
            // Wait until the occupant holds the worker slot (admission
            // counts before its search starts)...
            while service.counters().admitted == admitted_before {
                std::thread::yield_now();
            }
            // ...then release the storm into the queue behind it.
            let barrier = Arc::new(Barrier::new(variants.len()));
            let handles: Vec<_> = variants
                .iter()
                .map(|program| {
                    let service = service.clone();
                    let barrier = barrier.clone();
                    scope.spawn(move || {
                        let session = service.open_session(tenant).unwrap();
                        barrier.wait();
                        let reply = service.submit(session, program).unwrap();
                        assert_eq!(reply.cache, CacheOutcome::Miss);
                        reply.degraded
                    })
                })
                .collect();
            for (flag, handle) in degraded_flags.iter_mut().zip(handles) {
                *flag = handle.join().unwrap();
            }
        });

        // Phase B: uncontended re-submission. Degraded searches were not
        // retained, so those variants miss again (and now get the full
        // budget); full-budget searches were retained and hit.
        let session = service.open_session(tenant).unwrap();
        for (program, &was_degraded) in variants.iter().zip(&degraded_flags) {
            let reply = service.submit(session, program).unwrap();
            assert!(!reply.degraded, "an idle server never degrades");
            let expected = if was_degraded {
                CacheOutcome::Miss
            } else {
                CacheOutcome::Hit
            };
            assert_eq!(
                reply.cache, expected,
                "degraded={was_degraded}: degraded results must not be \
                 retained; full-budget results must be"
            );
        }

        let counters = service.counters();
        let degraded = degraded_flags.iter().filter(|&&d| d).count() as u64;
        assert_eq!(
            counters.degraded, degraded,
            "per-reply degraded flags must match the admission counter"
        );
        service.shutdown();
        // Still racy in principle (the occupant can finish before any
        // storm thread enqueues): accept the first attempt that actually
        // produced queue pressure.
        if degraded >= 1 {
            return;
        }
        eprintln!("attempt {attempt}: no queue pressure observed, retrying");
    }
    panic!("a held worker plus a 4-thread storm never queued in 8 attempts");
}
