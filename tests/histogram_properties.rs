//! Property tests for the adaptive-statistics subsystem: equi-depth
//! histogram invariants, feedback-driven estimation, drift-triggered
//! re-optimization, and original-vs-optimized equivalence on skewed data.

use cobra::core::Cobra;
use cobra::minidb::{
    BinOp, Column, DataType, Database, FeedbackStore, FuncRegistry, Schema, TableStats, Value,
};
use cobra::netsim::NetworkProfile;
use cobra::oracle::{run_case, OracleMatrix};
use cobra::workloads::genprog::{GenCase, GenConfig};
use cobra::workloads::harness::run_on_with_feedback;
use cobra::workloads::rng::StdRng;
use std::sync::Arc;

/// A randomized single-column table: integers (uniform or piled-up),
/// floats, a NULL fraction, occasionally strings mixed in.
fn random_rows(rng: &mut StdRng) -> Vec<Vec<Value>> {
    let n = rng.gen_range(0..400usize);
    let null_pct = rng.gen_range(0..40u32);
    let shape = rng.gen_range(0..4u32);
    (0..n)
        .map(|_| {
            if rng.chance(null_pct) {
                return vec![Value::Null];
            }
            let v = match shape {
                0 => Value::Int(rng.gen_range(-500..500i64)),
                1 => {
                    // Heavy skew: most values land on a handful of keys.
                    let base = rng.gen_range(0..1000i64);
                    Value::Int(if base < 900 { base % 7 } else { base })
                }
                2 => Value::Float(rng.gen_range(0..10_000i64) as f64 / 7.0),
                _ => {
                    if rng.chance(10) {
                        Value::str("mixed")
                    } else {
                        Value::Int(rng.gen_range(0..100i64))
                    }
                }
            };
            vec![v]
        })
        .collect()
}

/// Histogram invariants over 200 randomized columns: buckets cover
/// `[min, max]` with strictly ascending edges, counts sum to
/// `row_count − null_count`, every selectivity lands in `[0, 1]`, the
/// cumulative estimate stays within one bucket's mass of the truth, and
/// `analyze` is deterministic.
#[test]
fn histogram_invariants_hold_on_random_data() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = random_rows(&mut rng);
        let stats = TableStats::analyze(&rows, 1);
        assert_eq!(stats, TableStats::analyze(&rows, 1), "analyze determinism");
        assert!(stats.analyzed);
        let col = &stats.columns[0];
        assert!(
            (0.0..=1.0).contains(&stats.eq_selectivity(0)),
            "seed {seed}: eq selectivity in range"
        );

        let Some(h) = &col.histogram else {
            continue; // non-numeric or empty column: nothing more to check
        };
        // Coverage: the first bucket starts at the minimum, the last ends
        // at the maximum, edges strictly ascend.
        assert_eq!(Some(h.min()), col.min.as_ref().and_then(|v| v.as_f64()));
        assert_eq!(Some(h.max()), col.max.as_ref().and_then(|v| v.as_f64()));
        for w in h.bucket_bounds().windows(2) {
            assert!(w[0] < w[1], "seed {seed}: edges ascend");
        }
        // Counts partition the non-null rows.
        assert_eq!(
            h.bucket_counts().iter().sum::<u64>(),
            stats.row_count - col.null_count,
            "seed {seed}: counts sum to non-null rows"
        );
        assert_eq!(h.total(), stats.row_count - col.null_count);

        // Selectivities in [0, 1] for every operator across a probe grid,
        // and the cumulative estimate within one bucket of the truth.
        let values: Vec<f64> = rows
            .iter()
            .filter_map(|r| if r[0].is_null() { None } else { r[0].as_f64() })
            .collect();
        let max_bucket = *h.bucket_counts().iter().max().unwrap() as f64 / h.total().max(1) as f64;
        let span = h.max() - h.min();
        for k in 0..=20 {
            let probe = h.min() - 1.0 + span * k as f64 / 18.0;
            for op in [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge] {
                let sel = h.range_selectivity(op, probe, 0.0).unwrap();
                assert!(
                    (0.0..=1.0).contains(&sel),
                    "seed {seed}: {op:?} {probe} -> {sel}"
                );
            }
            let actual =
                values.iter().filter(|&&v| v <= probe).count() as f64 / values.len() as f64;
            let est = h.le_fraction(probe);
            assert!(
                (est - actual).abs() <= max_bucket + 1e-9,
                "seed {seed}: le({probe}) est {est} vs actual {actual} \
                 (bucket mass {max_bucket})"
            );
        }
        // Stats-level selectivity API agrees on type handling.
        let sel = stats.range_selectivity(0, BinOp::Lt, &Value::Float(h.max()));
        assert!(sel.is_some_and(|s| (0.0..=1.0).contains(&s)));
    }
}

/// The differential oracle on the skewed corpus: whatever the adaptive
/// statistics make the optimizer pick, the optimized program must stay
/// observationally equivalent to the original.
#[test]
fn skewed_corpus_rewrites_stay_equivalent() {
    let cfg = GenConfig::skewed();
    let matrix = OracleMatrix::default();
    for seed in 9000..9020u64 {
        let case = GenCase::from_seed(seed, &cfg);
        let report = run_case(&case, &matrix);
        assert!(
            report.failures.is_empty(),
            "seed {seed}: {}",
            report.failures[0]
        );
    }
}

fn drift_fixture() -> (cobra::minidb::SharedDb, Arc<FuncRegistry>) {
    let mut db = Database::new();
    let t = db
        .create_table(
            "events",
            Schema::new(vec![
                Column::new("e_id", DataType::Int),
                Column::new("e_kind", DataType::Int),
            ]),
        )
        .unwrap();
    t.set_primary_key("e_id").unwrap();
    for i in 0..500i64 {
        t.insert(vec![Value::Int(i), Value::Int(i % 10)]).unwrap();
    }
    db.analyze_all();
    (
        cobra::minidb::shared(db),
        Arc::new(FuncRegistry::with_builtins()),
    )
}

/// The full feedback loop: execution records observed cardinalities, the
/// estimator prefers them, drift is measured against them, and
/// `reoptimize_on_drift` re-optimizes (bumping the stats epoch so cached
/// estimates refresh) exactly when the threshold is crossed.
#[test]
fn drift_triggers_reoptimization_and_cache_invalidation() {
    use cobra::imperative::ast::{Expr, Function, Program, QuerySpec, Stmt, StmtKind};
    let (db, funcs) = drift_fixture();
    let store = Arc::new(FeedbackStore::new());
    let cobra = Cobra::builder(db.clone())
        .funcs(funcs.clone())
        .network(NetworkProfile::slow_remote())
        .feedback(store.clone())
        .build();

    let program = Program::single(Function::new(
        "drifty",
        vec!["result".to_string()],
        vec![
            Stmt::new(StmtKind::NewCollection("result".into())),
            Stmt::new(StmtKind::ForEach {
                var: "e".into(),
                iter: Expr::Query(QuerySpec::sql("select * from events where e_kind = 3")),
                body: vec![Stmt::new(StmtKind::Add(
                    "result".into(),
                    Expr::field(Expr::var("e"), "e_id"),
                ))],
            }),
        ],
    ));

    // No observations yet: no drift, no re-optimization.
    assert_eq!(cobra.estimation_drift(), 1.0);
    assert!(cobra.reoptimize_on_drift(&program, 2.0).unwrap().is_none());
    let first = cobra.optimize_program(&program).unwrap();
    assert_eq!(first.feedback_overrides, 0, "nothing observed yet");

    // Reality diverges from statistics: kind 3 suddenly dominates. The
    // stale stats still say 1/NDV = 10 % of 500 rows.
    {
        let mut dbw = db.write().unwrap();
        let epoch_before = dbw.stats_epoch();
        let t = dbw.table_mut("events").unwrap();
        for i in 500..2000i64 {
            t.insert(vec![Value::Int(i), Value::Int(3)]).unwrap();
        }
        assert!(dbw.stats_epoch() > epoch_before, "writes advance the epoch");
    }
    let plan = cobra::minidb::sql::parse("select * from events where e_kind = 3").unwrap();
    let executed = cobra::minidb::Executor::new(&db.read().unwrap(), &funcs)
        .with_feedback(&store)
        .execute(&plan, &std::collections::HashMap::new())
        .unwrap();
    assert_eq!(executed.row_count(), 1550);

    // Estimates (stale stats: ~155 of 2000 rows) vs observation (1550):
    // drift factor ~10 ≫ 2 → re-optimize.
    let drift = cobra.estimation_drift();
    assert!(drift > 2.0, "observed divergence, drift = {drift}");
    let epoch_before = db.read().unwrap().stats_epoch();
    let reopt = cobra
        .reoptimize_on_drift(&program, 2.0)
        .unwrap()
        .expect("drift above threshold re-optimizes");
    assert!(
        db.read().unwrap().stats_epoch() > epoch_before,
        "re-optimization bumps the stats epoch (cache invalidation)"
    );
    assert!(reopt.feedback_overrides > 0, "search used the observation");
    assert!(
        reopt.est_cost_ns > first.est_cost_ns,
        "the re-optimized estimate reflects the observed 1550-row reality \
         ({} vs {})",
        reopt.est_cost_ns,
        first.est_cost_ns
    );

    // Explain surfaces the (post-feedback) drift and the overrides.
    let report = cobra.explain(&program).unwrap();
    assert!(report.drift.is_some());
    let text = format!("{report}");
    assert!(
        text.contains("runtime feedback"),
        "report mentions feedback:\n{text}"
    );
}

/// End-to-end on a generated program: one feedback-recorded run makes the
/// cost estimate track the simulated runtime at least as well as before,
/// and the optimized program stays equivalent.
#[test]
fn feedback_run_tightens_generated_program_estimates() {
    let cfg = GenConfig::skewed();
    let net = NetworkProfile::slow_remote();
    let mut improved = 0usize;
    let mut total = 0usize;
    for seed in 7000..7010u64 {
        let case = GenCase::from_seed(seed, &cfg);
        let fixture = case.fixture();
        let plain = fixture.cobra_builder().network(net.clone()).build();
        let est_plain = plain.cost_of(case.program.entry()) / 1e9;

        // One run records feedback and doubles as the ground truth
        // (fresh-fixture runs are deterministic).
        let store = Arc::new(FeedbackStore::new());
        let sim = run_on_with_feedback(&case.fixture(), net.clone(), &case.program, store.clone())
            .unwrap()
            .secs;
        let fed = fixture
            .cobra_builder()
            .network(net.clone())
            .feedback(store)
            .build();
        let est_fed = fed.cost_of(case.program.entry()) / 1e9;

        let err = |est: f64| (est.max(1e-9) / sim.max(1e-9)).ln().abs();
        total += 1;
        if err(est_fed) <= err(est_plain) + 1e-9 {
            improved += 1;
        }
    }
    assert!(
        improved * 10 >= total * 8,
        "feedback should not worsen estimates: {improved}/{total} at least as good"
    );
}
