//! Budget safety: a minimal [`cobra::core::SearchBudget`] (one alternative
//! per region, tiny memo caps) may drop *optimizations*, never
//! *correctness* — and the clipping is always reported via
//! `budget_exhausted`, not silently.

use cobra::core::VerifyLevel;
use cobra::netsim::NetworkProfile;
use cobra::oracle::{fuzz, tight_budget, OracleMatrix};
use cobra::prelude::*;
use cobra::workloads::genprog::{GenCase, GenConfig};

/// 120 generated programs optimized under the minimal budget are all
/// observationally equivalent to their originals.
#[test]
fn tight_budget_preserves_semantics_on_generated_corpus() {
    let matrix = OracleMatrix {
        profiles: vec![NetworkProfile::slow_remote()],
        budgets: vec![("tight".to_string(), tight_budget())],
        rulesets: vec![("standard".to_string(), RuleSet::standard())],
        verify: VerifyLevel::Panic,
    };
    let report = fuzz(2000..2120, &GenConfig::default(), &matrix);
    assert!(report.failures.is_empty(), "{}", report.render_failures());
    assert_eq!(report.cases, 120);
}

/// Whenever the tight budget explores fewer complete programs than the
/// default budget would, the search says so: `budget_exhausted` is set
/// rather than silently truncating.
#[test]
fn clipping_is_reported_not_silent() {
    let cfg = GenConfig::default();
    let mut clipped = 0usize;
    for seed in 2000..2060u64 {
        let case = GenCase::from_seed(seed, &cfg);
        let fixture = case.fixture();
        let full = fixture
            .cobra_builder()
            .network(NetworkProfile::slow_remote())
            .build()
            .optimize_program(&case.program)
            .unwrap();
        let tight = fixture
            .cobra_builder()
            .network(NetworkProfile::slow_remote())
            .budget(tight_budget())
            .build()
            .optimize_program(&case.program)
            .unwrap();
        if tight.alternatives < full.alternatives {
            clipped += 1;
            assert!(
                tight.budget_exhausted,
                "seed {seed}: tight search dropped alternatives \
                 ({} vs {}) without reporting budget exhaustion",
                tight.alternatives, full.alternatives
            );
        }
    }
    assert!(
        clipped >= 10,
        "the corpus should contain plenty of clipped searches, got {clipped}"
    );
}

/// The known P0 case: the default budget explores P1/P2-like rewrites;
/// one alternative per region cannot, and must report it.
#[test]
fn p0_under_minimal_budget_reports_exhaustion_and_stays_correct() {
    let fixture = motivating::build_fixture(500, 100, 9);
    let net = NetworkProfile::slow_remote();
    let cobra = fixture
        .cobra_builder()
        .network(net.clone())
        .budget(tight_budget())
        .build();
    let p0 = motivating::p0();
    let opt = cobra.optimize_program(&p0).unwrap();
    assert!(opt.budget_exhausted, "P0 has rewrites the budget clips");
    assert!(opt.tags.contains(&"budget-exhausted"));

    let original = run_on(&fixture, net.clone(), &p0).unwrap();
    let rewritten = run_on(&fixture, net, &p0.with_entry(opt.program)).unwrap();
    assert_equivalent(
        &original.outcome.normalized_with_vars(&["result"]),
        &rewritten.outcome.normalized_with_vars(&["result"]),
    );
}
