//! Property tests on the Volcano memo: hash-consing, termination of
//! cyclic rules, merge cascades, and plan counting.
//!
//! Parameter sweeps replace proptest's random sampling (the workspace
//! builds offline): the input space here is small enough to cover
//! exhaustively.

use cobra::volcano::relalg::{
    left_deep_join, CardinalityCost, JoinAssociativity, JoinCommutativity, RelOp,
};
use cobra::volcano::{best_plan, count_plans, expand, Memo, OpTree};

/// Random relation names (distinct by construction below).
fn rel_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("R{i}")).collect()
}

/// Catalan(n-1) × n! — the number of distinct binary join trees over `n`
/// relations with ordered children.
fn expected_plans(n: u64) -> u64 {
    fn catalan(k: u64) -> u64 {
        (0..k).fold(1u64, |c, i| c * 2 * (2 * i + 1) / (i + 2))
    }
    fn factorial(k: u64) -> u64 {
        (1..=k).product()
    }
    catalan(n - 1) * factorial(n)
}

/// Full commutativity+associativity enumeration matches the classic
/// combinatorial count for 2..=5 relations.
#[test]
fn enumeration_count_is_exact() {
    for n in 2usize..=5 {
        let names = rel_names(n);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&left_deep_join(&refs), None);
        expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 256);
        assert_eq!(count_plans(&memo, root), expected_plans(n as u64), "n={n}");
    }
}

/// Expansion is a fixpoint: re-running adds nothing.
#[test]
fn expansion_idempotent() {
    for n in 2usize..=5 {
        let names = rel_names(n);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&left_deep_join(&refs), None);
        expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 256);
        let exprs = memo.num_exprs();
        let plans = count_plans(&memo, root);
        let stats = expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 256);
        assert_eq!(memo.num_exprs(), exprs, "n={n}");
        assert_eq!(count_plans(&memo, root), plans, "n={n}");
        assert_eq!(stats.added, 0, "n={n}");
    }
}

/// The chosen plan never exceeds the original left-deep plan's cost, for
/// a spread of cardinality assignments.
#[test]
fn best_plan_beats_the_original() {
    // Deterministic pseudo-random cardinalities per (n, case).
    let mut rng = cobra::workloads::rng::StdRng::seed_from_u64(0x0B5E55ED);
    for n in 2usize..=5 {
        for case in 0..4 {
            let names = rel_names(n);
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let cards: Vec<f64> = (0..5)
                .map(|_| 1.0 + rng.gen_range(0..10_000u64) as f64)
                .collect();
            let model = CardinalityCost::new(names.iter().cloned().zip(cards.iter().copied()));

            // Cost of the original plan only.
            let mut memo0 = Memo::new();
            let root0 = memo0.insert_tree(&left_deep_join(&refs), None);
            let original = best_plan(&memo0, root0, &model).unwrap().cost;

            // Cost after full enumeration.
            let mut memo = Memo::new();
            let root = memo.insert_tree(&left_deep_join(&refs), None);
            expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 256);
            let best = best_plan(&memo, root, &model).unwrap();
            assert!(
                best.cost <= original * (1.0 + 1e-9),
                "n={n} case={case}: optimizer must not regress: {} > {original}",
                best.cost
            );
        }
    }
}

/// Inserting the same tree repeatedly (any tree shape) never grows the
/// memo after the first insertion.
#[test]
fn insertion_is_hash_consed() {
    for n in 2usize..=6 {
        for repeats in 1usize..5 {
            let names = rel_names(n);
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let tree: OpTree<RelOp> = left_deep_join(&refs);
            let mut memo = Memo::new();
            let g1 = memo.insert_tree(&tree, None);
            let exprs = memo.num_exprs();
            for _ in 0..repeats {
                let g = memo.insert_tree(&tree, None);
                assert_eq!(memo.find(g), memo.find(g1), "n={n}");
            }
            assert_eq!(memo.num_exprs(), exprs, "n={n} repeats={repeats}");
        }
    }
}

#[test]
fn merge_is_order_independent() {
    // Merging (a,b) then (b,c) must agree with (b,c) then (a,b).
    let build = || {
        let mut memo: Memo<RelOp> = Memo::new();
        let a = memo.insert_tree(&OpTree::leaf(RelOp::Rel("a".into())), None);
        let b = memo.insert_tree(&OpTree::leaf(RelOp::Rel("b".into())), None);
        let c = memo.insert_tree(&OpTree::leaf(RelOp::Rel("c".into())), None);
        (memo, a, b, c)
    };
    let (mut m1, a1, b1, c1) = build();
    m1.merge(a1, b1);
    m1.merge(b1, c1);
    let (mut m2, a2, b2, c2) = build();
    m2.merge(b2, c2);
    m2.merge(a2, b2);
    assert_eq!(m1.find(a1), m1.find(c1));
    assert_eq!(m2.find(a2), m2.find(c2));
    assert_eq!(m1.group(a1).len(), 3);
    assert_eq!(m2.group(a2).len(), 3);
}
