//! Property tests on the Volcano memo: hash-consing, termination of
//! cyclic rules, merge cascades, and plan counting.

use cobra::volcano::relalg::{
    left_deep_join, CardinalityCost, JoinAssociativity, JoinCommutativity, RelOp,
};
use cobra::volcano::{best_plan, count_plans, expand, Memo, OpTree};
use proptest::prelude::*;

/// Random relation names (distinct by construction below).
fn rel_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("R{i}")).collect()
}

/// Catalan(n-1) × n! — the number of distinct binary join trees over `n`
/// relations with ordered children.
fn expected_plans(n: u64) -> u64 {
    fn catalan(k: u64) -> u64 {
        (0..k).fold(1u64, |c, i| c * 2 * (2 * i + 1) / (i + 2))
    }
    fn factorial(k: u64) -> u64 {
        (1..=k).product()
    }
    catalan(n - 1) * factorial(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full commutativity+associativity enumeration matches the classic
    /// combinatorial count for 2..=5 relations.
    #[test]
    fn enumeration_count_is_exact(n in 2usize..=5) {
        let names = rel_names(n);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&left_deep_join(&refs), None);
        expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 256);
        prop_assert_eq!(count_plans(&memo, root), expected_plans(n as u64));
    }

    /// Expansion is a fixpoint: re-running adds nothing.
    #[test]
    fn expansion_idempotent(n in 2usize..=5) {
        let names = rel_names(n);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&left_deep_join(&refs), None);
        expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 256);
        let exprs = memo.num_exprs();
        let plans = count_plans(&memo, root);
        let stats = expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 256);
        prop_assert_eq!(memo.num_exprs(), exprs);
        prop_assert_eq!(count_plans(&memo, root), plans);
        prop_assert_eq!(stats.added, 0);
    }

    /// The chosen plan never has higher cost than ANY enumerated plan cost
    /// reachable by greedy sampling, and never exceeds the original
    /// left-deep plan's cost.
    #[test]
    fn best_plan_beats_the_original(
        n in 2usize..=5,
        cards in prop::collection::vec(1.0f64..10_000.0, 5),
    ) {
        let names = rel_names(n);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let model = CardinalityCost::new(
            names.iter().cloned().zip(cards.iter().copied()),
        );

        // Cost of the original plan only.
        let mut memo0 = Memo::new();
        let root0 = memo0.insert_tree(&left_deep_join(&refs), None);
        let original = best_plan(&memo0, root0, &model).unwrap().cost;

        // Cost after full enumeration.
        let mut memo = Memo::new();
        let root = memo.insert_tree(&left_deep_join(&refs), None);
        expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 256);
        let best = best_plan(&memo, root, &model).unwrap();
        prop_assert!(best.cost <= original * (1.0 + 1e-9),
            "optimizer must not regress: {} > {original}", best.cost);
    }

    /// Inserting the same tree repeatedly (any tree shape) never grows the
    /// memo after the first insertion.
    #[test]
    fn insertion_is_hash_consed(n in 2usize..=6, repeats in 1usize..5) {
        let names = rel_names(n);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let tree: OpTree<RelOp> = left_deep_join(&refs);
        let mut memo = Memo::new();
        let g1 = memo.insert_tree(&tree, None);
        let exprs = memo.num_exprs();
        for _ in 0..repeats {
            let g = memo.insert_tree(&tree, None);
            prop_assert_eq!(memo.find(g), memo.find(g1));
        }
        prop_assert_eq!(memo.num_exprs(), exprs);
    }
}

#[test]
fn merge_is_order_independent() {
    // Merging (a,b) then (b,c) must agree with (b,c) then (a,b).
    let build = || {
        let mut memo: Memo<RelOp> = Memo::new();
        let a = memo.insert_tree(&OpTree::leaf(RelOp::Rel("a".into())), None);
        let b = memo.insert_tree(&OpTree::leaf(RelOp::Rel("b".into())), None);
        let c = memo.insert_tree(&OpTree::leaf(RelOp::Rel("c".into())), None);
        (memo, a, b, c)
    };
    let (mut m1, a1, b1, c1) = build();
    m1.merge(a1, b1);
    m1.merge(b1, c1);
    let (mut m2, a2, b2, c2) = build();
    m2.merge(b2, c2);
    m2.merge(a2, b2);
    assert_eq!(m1.find(a1), m1.find(c1));
    assert_eq!(m2.find(a2), m2.find(c2));
    assert_eq!(m1.group(a1).len(), 3);
    assert_eq!(m2.group(a2).len(), 3);
}
