//! Equivalence suite for the optimizer hot-path overhaul: the perf
//! machinery (worklist cost iteration, fingerprint-keyed estimate caches,
//! Arc-shared plans) must change *nothing* about what the optimizer
//! chooses or reports — only how fast it gets there.
//!
//! * cached vs uncached estimation produces bit-identical [`Optimized`]
//!   results and semantically identical [`OptimizationReport`]s across
//!   the oracle's generated corpus × all three network profiles;
//! * the worklist `volcano::cost_table` reproduces the reference
//!   Gauss-Seidel sweep (`volcano::cost_table_sweeps`) bit-for-bit —
//!   `group_costs` and `converged` — on real Region DAGs, under the
//!   unbudgeted and several budgeted configurations.

use cobra::core::Cobra;
use cobra::imperative::pretty;
use cobra::netsim::NetworkProfile;
use cobra::oracle::matrix::mid_range;
use cobra::volcano;
use cobra::workloads::genprog::{GenCase, GenConfig};

const SEEDS: u64 = 100;

fn profiles() -> Vec<NetworkProfile> {
    vec![
        NetworkProfile::slow_remote(),
        mid_range(),
        NetworkProfile::fast_local(),
    ]
}

fn cobra_for(case: &GenCase, net: NetworkProfile, cache: bool) -> Cobra {
    case.fixture()
        .cobra_builder()
        .network(net)
        .cache_estimates(cache)
        .build()
}

/// Cached and uncached costing agree bit-for-bit on everything the
/// optimizer returns: tags, costs, the chosen program, and the whole
/// report (up to the cache-statistics counters themselves).
#[test]
fn cached_costing_is_bit_identical_across_corpus() {
    let cfg = GenConfig::default();
    for seed in 0..SEEDS {
        let case = GenCase::from_seed(seed, &cfg);
        for net in profiles() {
            let cached = cobra_for(&case, net.clone(), true);
            let uncached = cobra_for(&case, net.clone(), false);
            let a = cached.optimize_program(&case.program).unwrap();
            let b = uncached.optimize_program(&case.program).unwrap();
            let ctx = format!("seed {seed}, profile {}", net.name());

            assert_eq!(
                a.est_cost_ns.to_bits(),
                b.est_cost_ns.to_bits(),
                "est_cost_ns: {ctx}"
            );
            assert_eq!(
                a.original_cost_ns.to_bits(),
                b.original_cost_ns.to_bits(),
                "original_cost_ns: {ctx}"
            );
            assert_eq!(
                pretty::function_to_string(&a.program),
                pretty::function_to_string(&b.program),
                "chosen program: {ctx}"
            );
            assert_eq!(a.tags, b.tags, "tags: {ctx}");
            assert_eq!(a.alternatives, b.alternatives, "{ctx}");
            assert_eq!(a.choice_points, b.choice_points, "{ctx}");
            assert_eq!((a.groups, a.exprs), (b.groups, b.exprs), "{ctx}");
            assert_eq!(a.budget_exhausted, b.budget_exhausted, "{ctx}");
            assert_eq!(
                (b.estimator_cache_hits, b.estimator_cache_misses),
                (0, 0),
                "uncached run must not touch the estimate cache: {ctx}"
            );

            // Reports agree on every semantic field (cost bits included).
            let ra = cached.explain(&case.program).unwrap();
            let rb = uncached.explain(&case.program).unwrap();
            assert_eq!(ra.rules_fired, rb.rules_fired, "{ctx}");
            assert_eq!(ra.choice_points.len(), rb.choice_points.len(), "{ctx}");
            for (ca, cb) in ra.choice_points.iter().zip(&rb.choice_points) {
                assert_eq!(ca.group, cb.group, "{ctx}");
                assert_eq!(ca.region, cb.region, "{ctx}");
                assert_eq!(ca.on_chosen_path, cb.on_chosen_path, "{ctx}");
                assert_eq!(ca.alternatives.len(), cb.alternatives.len(), "{ctx}");
                for (aa, ab) in ca.alternatives.iter().zip(&cb.alternatives) {
                    assert_eq!(aa.expr, ab.expr, "{ctx}");
                    assert_eq!(aa.label, ab.label, "{ctx}");
                    assert_eq!(aa.rules, ab.rules, "{ctx}");
                    assert_eq!(aa.chosen, ab.chosen, "{ctx}");
                    assert_eq!(
                        aa.cost_ns.to_bits(),
                        ab.cost_ns.to_bits(),
                        "alternative cost: {ctx}"
                    );
                }
            }
        }
    }
}

/// The estimate cache is actually doing work on this corpus (the
/// equivalence above would pass trivially if the cache never engaged).
#[test]
fn estimate_cache_engages_on_real_searches() {
    let cfg = GenConfig::default();
    let mut total_hits = 0u64;
    for seed in 0..10 {
        let case = GenCase::from_seed(seed, &cfg);
        let cobra = cobra_for(&case, NetworkProfile::slow_remote(), true);
        let opt = cobra.optimize_program(&case.program).unwrap();
        assert!(
            opt.estimator_cache_misses > 0,
            "seed {seed}: estimates were computed"
        );
        total_hits += opt.estimator_cache_hits;
        // A second search over the same Cobra reuses the shared cache:
        // nothing new to compute.
        let again = cobra.optimize_program(&case.program).unwrap();
        assert_eq!(
            again.estimator_cache_misses, 0,
            "seed {seed}: repeat search fully served from the shared cache"
        );
        assert!(again.estimator_cache_hits > 0, "seed {seed}");
    }
    assert!(total_hits > 0, "repeated plans hit within single searches");
}

/// The worklist cost iteration reproduces the reference sweep exactly on
/// real Region DAGs — including the mid-iteration states a sweep budget
/// freezes, and the `converged` flag.
#[test]
fn worklist_cost_table_matches_reference_sweep_on_corpus() {
    let cfg = GenConfig::default();
    for seed in 0..SEEDS {
        let case = GenCase::from_seed(seed, &cfg);
        for net in profiles() {
            let cobra = cobra_for(&case, net.clone(), true);
            let (memo, _root, model) = cobra.region_dag(&case.program).unwrap();
            for budget in [None, Some(1), Some(2), Some(3), Some(8)] {
                let fast = volcano::cost_table(&memo, &model, budget);
                let slow = volcano::cost_table_sweeps(&memo, &model, budget);
                let ctx = format!("seed {seed}, profile {}, budget {budget:?}", net.name());
                assert_eq!(fast.converged, slow.converged, "{ctx}");
                assert_eq!(fast.group_costs.len(), slow.group_costs.len(), "{ctx}");
                for (g, (a, b)) in fast.group_costs.iter().zip(&slow.group_costs).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "group {g} cost: {ctx} ({a} vs {b})"
                    );
                }
            }
        }
    }
}

/// The report's `Display` surfaces both cache layers.
#[test]
fn report_display_shows_cache_effectiveness() {
    let case = GenCase::from_seed(3, &GenConfig::default());
    let cobra = cobra_for(&case, NetworkProfile::slow_remote(), true);
    let report = cobra.explain(&case.program).unwrap();
    let text = report.to_string();
    assert!(text.contains("cost-memo"), "{text}");
    assert!(text.contains("estimator"), "{text}");
    assert!(text.contains("% hit"), "{text}");
}
