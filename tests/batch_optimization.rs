//! Tests for `Cobra::optimize_batch`, the parallel batch-optimization
//! driver: concurrent optimization must produce byte-identical programs
//! and bit-identical costs to sequential `optimize_program` calls. (The
//! wall-clock speedup assertion lives in `tests/batch_speedup.rs`, its
//! own binary, so timing is not disturbed by sibling tests.)

use cobra::core::{Cobra, Optimized};
use cobra::imperative::ast::Program;
use cobra::imperative::pretty::function_to_string;
use cobra::netsim::NetworkProfile;
use cobra::workloads::{motivating, wilos};

/// Byte-identical results: parallel == sequential, program by program.
/// An explicit worker count forces the threaded path even on a
/// single-core host, so this test always exercises real cross-thread
/// optimization (no process-global env mutation).
#[test]
fn batch_matches_sequential_results() {
    // P0/M0 against the motivating fixture.
    let fx = motivating::build_fixture(2_000, 400, 21);
    let cobra = fx
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .build();
    let programs = vec![motivating::p0(), motivating::m0()];
    assert_batch_matches(&cobra, &programs);

    // All six Wilos representatives against the wilos fixture.
    let fx = wilos::build_fixture(2_000, 21);
    let cobra = fx
        .cobra_builder()
        .network(NetworkProfile::fast_local())
        .build();
    let programs: Vec<Program> = wilos::Pattern::all()
        .into_iter()
        .map(wilos::representative)
        .collect();
    assert!(programs.len() >= 4);
    assert_batch_matches(&cobra, &programs);
}

fn assert_batch_matches(cobra: &Cobra, programs: &[Program]) {
    let sequential: Vec<Optimized> = programs
        .iter()
        .map(|p| cobra.optimize_program(p).unwrap())
        .collect();
    let parallel: Vec<Optimized> = cobra
        .optimize_batch_with_workers(programs, 3)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(sequential.len(), parallel.len());
    for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(
            function_to_string(&s.program),
            function_to_string(&p.program),
            "program {i}: byte-identical emitted program"
        );
        assert_eq!(
            s.est_cost_ns.to_bits(),
            p.est_cost_ns.to_bits(),
            "program {i}: bit-identical cost"
        );
        assert_eq!(s.alternatives, p.alternatives, "program {i}");
        assert_eq!(s.tags, p.tags, "program {i}");
    }
}

/// Empty and singleton batches take the sequential path and still work.
#[test]
fn batch_edge_cases() {
    let fx = motivating::build_fixture(500, 100, 5);
    let cobra = fx
        .cobra_builder()
        .network(NetworkProfile::fast_local())
        .build();
    assert!(cobra.optimize_batch(&[]).is_empty());
    let one = cobra.optimize_batch(&[motivating::p0()]);
    assert_eq!(one.len(), 1);
    assert!(one[0].is_ok());
}
