//! Mutation smoke test, *dynamic fallback path*: the oracle is only
//! trustworthy if it *would* catch a semantics-breaking rewrite. Register
//! an intentionally broken rule ([`cobra::oracle::broken_limit_rule`])
//! alongside the standard set; the cost-based search prefers its
//! too-cheap alternatives, and the differential suite must flag the
//! divergence and minimize it to a tiny seed-keyed repro.
//!
//! Since the static verifier (`crates/analysis`) landed, the *first* line
//! of defense is `tests/verifier_properties.rs`:
//! `broken_limit_rule_is_rejected_statically_on_seed_0` proves the same
//! rule is rejected during expansion with no execution at all. The tests
//! here therefore run with `VerifyLevel::Off` — they exercise the
//! execution-level oracle as the independent fallback that would catch a
//! bug class the static passes cannot model.

use cobra::core::{SearchBudget, VerifyLevel};
use cobra::netsim::NetworkProfile;
use cobra::oracle::{broken_limit_rule, fuzz, minimize, run_cell, FailureKind, OracleMatrix};
use cobra::prelude::*;
use cobra::workloads::genprog::{GenCase, GenConfig};

fn broken_matrix() -> OracleMatrix {
    OracleMatrix {
        profiles: vec![NetworkProfile::slow_remote()],
        budgets: vec![("default".to_string(), SearchBudget::default())],
        rulesets: vec![(
            "standard+Xbug".to_string(),
            RuleSet::standard().with_rule(broken_limit_rule()),
        )],
        // Deliberately Off: this file tests the *dynamic* oracle as the
        // fallback detector. (With the default Panic the verifier would
        // abort before the broken alternative ever executed.)
        verify: VerifyLevel::Off,
    }
}

/// With the static verifier disabled, the differential oracle alone still
/// catches the broken rule on at least 10 of the first 40 seeds (the
/// exact count depends on how many generated programs contain a foldable
/// loop whose source yields more than one row), and the failures are
/// genuine result mismatches — both programs still run.
#[test]
fn broken_rule_is_caught() {
    let report = fuzz(0..40, &GenConfig::default(), &broken_matrix());
    assert!(
        report.failures.len() >= 10,
        "a rule that truncates every fold source must be caught often, \
         got {} failures",
        report.failures.len()
    );
    assert!(
        report
            .failures
            .iter()
            .any(|f| matches!(f.kind, FailureKind::Mismatch(_))),
        "at least some failures are clean value mismatches"
    );
    // The same corpus under the *standard* rules is clean — the failures
    // are attributable to the injected rule alone.
    let clean = fuzz(0..40, &GenConfig::default(), &OracleMatrix::default());
    assert!(clean.failures.is_empty(), "{}", clean.render_failures());
}

/// The first caught failure minimizes to a ≤ 10-statement repro that
/// still fails, and the printed seed alone reproduces it.
#[test]
fn caught_failure_minimizes_to_small_repro() {
    let report = fuzz(0..40, &GenConfig::default(), &broken_matrix());
    let failure = report.failures.first().expect("broken rule is caught");

    let case = GenCase::from_seed(failure.seed, &GenConfig::default());
    let repro = minimize(&case, &failure.cell).expect("failure reproduces");
    assert!(
        repro.stmt_count <= 10,
        "repro should be tiny, got {} statements:\n{repro}",
        repro.stmt_count
    );
    let text = repro.to_string();
    assert!(
        text.contains(&format!("seed {}", failure.seed)),
        "repro prints its seed: {text}"
    );

    // Re-runnable from the seed alone: regenerate the case and the
    // minimized program still fails in the same cell.
    let regenerated = GenCase::from_seed(failure.seed, &GenConfig::default())
        .with_program(repro.program.clone())
        .with_row_scale(repro.row_scale);
    assert!(
        run_cell(&regenerated, &failure.cell, None).is_err(),
        "minimized repro must still fail when regenerated from its seed"
    );
}

/// Ablating the broken rule restores a clean corpus — the RuleSet toggle
/// isolates the culprit.
#[test]
fn disabling_the_broken_rule_restores_equivalence() {
    let mut matrix = broken_matrix();
    matrix.rulesets = vec![(
        "standard+Xbug-disabled".to_string(),
        RuleSet::standard()
            .with_rule(broken_limit_rule())
            .without("Xbug"),
    )];
    let report = fuzz(0..40, &GenConfig::default(), &matrix);
    assert!(report.failures.is_empty(), "{}", report.render_failures());
}
