//! Rule-ablation harness: for every rule of the standard set, disabling
//! it via `RuleSet` shrinks the explored alternative space monotonically
//! — never more alternatives, never a cheaper estimate — and for each
//! rule there are motivating workloads where the drop is strict.
//!
//! Also hosts the amortization-factor sensitivity suite (formerly
//! `tests/af_sensitivity.rs`): `AF_Q` gates prefetching (rule N1's cost),
//! so it is the cost-model half of the same ablation story — N1 can lose
//! either by being disabled or by being priced out.

use cobra::imperative::ast::QuerySpec;
use cobra::minidb::BinOp;
use cobra::prelude::*;

/// A bespoke full-aggregation loop over `orders` (rule T5's full
/// extraction: the whole loop becomes one scalar aggregate query).
fn sum_amounts() -> Program {
    let mut f = Function::new(
        "sumAmounts",
        vec!["sum".to_string()],
        vec![Stmt::new(StmtKind::ForEach {
            var: "t".into(),
            iter: Expr::Query(QuerySpec::sql("select * from orders")),
            body: vec![Stmt::new(StmtKind::Let(
                "sum".into(),
                Expr::bin(
                    BinOp::Add,
                    Expr::var("sum"),
                    Expr::field(Expr::var("t"), "o_amount"),
                ),
            ))],
        })],
    );
    f.number_lines(2);
    Program::single(f)
}

/// The ablation suite: motivating example, M0, Wilos A–F, plus the
/// aggregation loop.
fn workloads() -> Vec<(&'static str, Fixture, Program)> {
    let fx = motivating::build_fixture(2_000, 400, 11);
    let mut out = vec![
        ("P0", fx.clone(), motivating::p0()),
        ("M0", fx.clone(), motivating::m0()),
        ("AGG", fx, sum_amounts()),
    ];
    for (name, pattern) in [
        ("A", wilos::Pattern::A),
        ("B", wilos::Pattern::B),
        ("C", wilos::Pattern::C),
        ("D", wilos::Pattern::D),
        ("E", wilos::Pattern::E),
        ("F", wilos::Pattern::F),
    ] {
        out.push((
            name,
            wilos::build_fixture(2_000, 11),
            wilos::representative(pattern),
        ));
    }
    out
}

fn optimize(fx: &Fixture, program: &Program, disable: Option<&str>) -> Optimized {
    let mut builder = fx
        .cobra_builder()
        .network(NetworkProfile::slow_remote())
        .catalog(CostCatalog::with_af(50.0));
    if let Some(rule) = disable {
        builder = builder.disable_rule(rule);
    }
    builder.build().optimize_program(program).unwrap()
}

/// For each rule: disabling it never *adds* alternatives and never
/// *lowers* the estimated cost (the ablated search optimizes over a
/// subset of programs), and on the rule's motivating workloads the
/// alternative count strictly drops.
#[test]
fn disabling_each_rule_shrinks_the_space_monotonically() {
    // Rule → workloads where the drop must be strict (probed on the
    // paper's patterns: e.g. N1 powers the prefetch alternatives of
    // P0/A/C/D/E/F, `inline` enables pattern D, T5 extracts AGG).
    let strict: [(&str, &[&str]); 7] = [
        ("T1", &["A"]),
        ("T2", &["A", "C"]),
        ("T4", &["P0", "C", "D"]),
        ("T5", &["AGG"]),
        ("N1", &["P0", "A", "C", "D", "E", "F"]),
        ("N2", &["C"]),
        ("inline", &["D"]),
    ];
    let suite = workloads();
    for (name, fx, program) in &suite {
        // One un-ablated baseline per workload; it does not depend on
        // which rule is disabled below.
        let full = optimize(fx, program, None);
        for (rule, strict_on) in strict {
            let ablated = optimize(fx, program, Some(rule));
            assert!(
                ablated.alternatives <= full.alternatives,
                "-{rule} on {name}: {} -> {} alternatives",
                full.alternatives,
                ablated.alternatives
            );
            assert!(
                ablated.est_cost_ns >= full.est_cost_ns,
                "-{rule} on {name}: cost must be monotonically >= \
                 ({} -> {})",
                full.est_cost_ns,
                ablated.est_cost_ns
            );
            if strict_on.contains(name) {
                assert!(
                    ablated.alternatives < full.alternatives,
                    "-{rule} on {name}: expected a strict drop \
                     ({} alternatives either way)",
                    full.alternatives
                );
            }
        }
    }
}

/// Ablating N1 must cost exactly what pricing prefetches out does not:
/// on P0 the search falls back to the join plan, still beating the
/// original program.
#[test]
fn ablating_n1_falls_back_to_the_join_plan() {
    let fx = motivating::build_fixture(2_000, 400, 11);
    let no_n1 = optimize(&fx, &motivating::p0(), Some("N1"));
    assert!(
        no_n1.tags.contains(&"sql-join"),
        "without prefetching the join rewrite wins: {:?}",
        no_n1.tags
    );
    assert!(no_n1.est_cost_ns <= no_n1.original_cost_ns);
}

// ----------------------------------------------------------------------
// Amortization-factor sensitivity (formerly tests/af_sensitivity.rs).
//
// The amortization factor (`AF_Q`, §VI) gates prefetching: prefetch cost
// is `C_Q / AF_Q`. With few accesses (AF = 1) fetching a whole relation
// to answer a couple of point lookups must lose; with many expected
// accesses (large AF) it must win. These tests pin that flip down.
// ----------------------------------------------------------------------

/// Pattern-E-shaped program over `role` with only 2 filter keys: barely
/// any reuse, a relatively large relation.
fn two_lookups() -> Program {
    wilos::build_e("afProbe", "role", "r_project", "r_size", 2)
}

fn choice_under(af: f64, scale: usize) -> (Vec<&'static str>, f64, f64) {
    let fx = wilos::build_fixture(scale, 23);
    let cobra = fx
        .cobra_builder()
        .network(NetworkProfile::slow_remote()) // transfer-dominated: AF matters most
        .catalog(CostCatalog::with_af(af))
        .build();
    let opt = cobra.optimize_program(&two_lookups()).unwrap();
    (opt.tags, opt.est_cost_ns, opt.original_cost_ns)
}

#[test]
fn low_af_keeps_point_queries_high_af_prefetches() {
    let scale = 200_000; // role has scale/500 = 400 rows → 2 keys touch ~20%
    let (tags_low, est_low, orig_low) = choice_under(1.0, scale);
    let (tags_high, est_high, _) = choice_under(1_000.0, scale);
    assert!(
        !tags_low.contains(&"prefetch"),
        "AF=1: fetching the whole relation for 2 lookups must lose ({tags_low:?})"
    );
    assert!(
        tags_high.contains(&"prefetch"),
        "AF=1000: amortized prefetch must win ({tags_high:?})"
    );
    // Costs are consistent with the choices.
    assert!(est_low <= orig_low * 1.001);
    assert!(
        est_high < est_low,
        "amortization must reduce estimated cost"
    );
}

#[test]
fn af_choices_are_both_semantics_preserving() {
    let program = two_lookups();
    for af in [1.0, 1_000.0] {
        let fx = wilos::build_fixture(20_000, 23);
        let cobra = fx
            .cobra_builder()
            .network(NetworkProfile::slow_remote())
            .catalog(CostCatalog::with_af(af))
            .build();
        let opt = cobra.optimize_program(&program).unwrap();
        let original = run_on(&fx, NetworkProfile::fast_local(), &program).unwrap();
        let rewritten = run_on(
            &fx,
            NetworkProfile::fast_local(),
            &Program::single(opt.program.clone()),
        )
        .unwrap();
        assert_eq!(
            original.outcome.var_snapshot("result").normalized(),
            rewritten.outcome.var_snapshot("result").normalized(),
            "af={af}"
        );
    }
}

#[test]
fn cost_catalog_file_drives_the_choice() {
    // The paper supplies cost metrics "as a cost catalog file"; the same
    // choice flip must be reachable through the file format.
    let scale = 200_000;
    let low = CostCatalog::parse("default_af = 1\n").unwrap();
    let high = CostCatalog::parse("default_af = 1000\naf.role = 2000\n").unwrap();
    let fx = wilos::build_fixture(scale, 23);
    let mk = |cat: CostCatalog| {
        fx.cobra_builder()
            .network(NetworkProfile::slow_remote())
            .catalog(cat)
            .build()
    };
    let t_low = mk(low).optimize_program(&two_lookups()).unwrap().tags;
    let t_high = mk(high).optimize_program(&two_lookups()).unwrap().tags;
    assert!(!t_low.contains(&"prefetch"), "{t_low:?}");
    assert!(t_high.contains(&"prefetch"), "{t_high:?}");
}
