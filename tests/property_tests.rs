//! Property-based tests across crates: SQL printing round-trips, executor
//! algebraic invariants, and — most importantly — **rewrite soundness**:
//! COBRA-optimized programs compute the same results as the originals on
//! randomized databases.

use cobra::core::{heuristic, Cobra, CostCatalog};
use cobra::imperative::ast::Program;
use cobra::minidb::{sql, Value};
use cobra::netsim::NetworkProfile;
use cobra::workloads::{harness::run_on, motivating, wilos};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// SQL front-end round trips.
// ---------------------------------------------------------------------

/// Strategy for identifier-ish names.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print ∘ parse is a fixpoint for generated SELECT statements.
    #[test]
    fn sql_print_parse_fixpoint(
        table in ident(),
        col in ident(),
        n in 0i64..1000,
        asc in any::<bool>(),
        limit in prop::option::of(0u64..100),
    ) {
        let mut text = format!("select * from {table} where {col} > {n} order by {col}");
        if !asc {
            text.push_str(" desc");
        }
        if let Some(l) = limit {
            text.push_str(&format!(" limit {l}"));
        }
        let plan = sql::parse(&text).unwrap();
        let printed = sql::print(&plan);
        let reparsed = sql::parse(&printed).unwrap();
        prop_assert_eq!(sql::print(&reparsed), printed);
    }

    /// String literals survive the escape/unescape round trip.
    #[test]
    fn sql_string_literals_round_trip(s in "[a-zA-Z' ]{0,20}") {
        let text = format!("select * from t where c = '{}'", s.replace('\'', "''"));
        let plan = sql::parse(&text).unwrap();
        let printed = sql::print(&plan);
        let plan2 = sql::parse(&printed).unwrap();
        prop_assert_eq!(plan, plan2);
    }
}

// ---------------------------------------------------------------------
// Executor invariants on randomized databases.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// σ_p(σ_q(R)) ≡ σ_q(σ_p(R)), and both subsume σ_{p∧q}(R).
    #[test]
    fn selection_commutes(orders in 1usize..300, seed in 0u64..500) {
        let fx = motivating::build_fixture(orders, 20, seed);
        let db = fx.db.borrow();
        let funcs = cobra::minidb::FuncRegistry::with_builtins();
        let exec = cobra::minidb::Executor::new(&db, &funcs);
        let none = std::collections::HashMap::new();
        let a = sql::parse(
            "select * from orders where o_amount > 100.0 and o_status = 'open'",
        ).unwrap();
        let b = sql::parse(
            "select * from orders where o_status = 'open' and o_amount > 100.0",
        ).unwrap();
        let ra = exec.execute(&a, &none).unwrap();
        let rb = exec.execute(&b, &none).unwrap();
        prop_assert_eq!(ra.rows, rb.rows);
    }

    /// Join cardinality equals the sum over orders of matching customers
    /// (FK semantics), independent of join input order.
    #[test]
    fn join_symmetry(orders in 1usize..200, customers in 1usize..50, seed in 0u64..500) {
        let fx = motivating::build_fixture(orders, customers, seed);
        let db = fx.db.borrow();
        let funcs = cobra::minidb::FuncRegistry::with_builtins();
        let exec = cobra::minidb::Executor::new(&db, &funcs);
        let none = std::collections::HashMap::new();
        let ab = sql::parse(
            "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk",
        ).unwrap();
        let ba = sql::parse(
            "select * from customer c join orders o on o.o_customer_sk = c.c_customer_sk",
        ).unwrap();
        let rab = exec.execute(&ab, &none).unwrap();
        let rba = exec.execute(&ba, &none).unwrap();
        prop_assert_eq!(rab.row_count(), rba.row_count());
        prop_assert_eq!(rab.row_count() as usize, orders, "every order joins its customer");
    }

    /// count(*) equals the materialized row count for any filter.
    #[test]
    fn count_matches_materialization(orders in 1usize..300, seed in 0u64..500) {
        let fx = motivating::build_fixture(orders, 10, seed);
        let db = fx.db.borrow();
        let funcs = cobra::minidb::FuncRegistry::with_builtins();
        let exec = cobra::minidb::Executor::new(&db, &funcs);
        let none = std::collections::HashMap::new();
        let rows = exec.execute(
            &sql::parse("select * from orders where o_status = 'open'").unwrap(),
            &none,
        ).unwrap();
        let count = exec.execute(
            &sql::parse("select count(*) as n from orders where o_status = 'open'").unwrap(),
            &none,
        ).unwrap();
        prop_assert_eq!(count.rows[0][0].clone(), Value::Int(rows.row_count() as i64));
    }
}

// ---------------------------------------------------------------------
// Rewrite soundness: the headline property.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// COBRA's chosen program computes the same `result` as P0 on random
    /// databases, for both networks and several AF values.
    #[test]
    fn cobra_rewrites_preserve_p0_semantics(
        orders in 1usize..400,
        customers in 1usize..100,
        seed in 0u64..1000,
        slow in any::<bool>(),
        af in prop::sample::select(vec![1.0f64, 50.0]),
    ) {
        let fx = motivating::build_fixture(orders, customers, seed);
        let net = if slow { NetworkProfile::slow_remote() } else { NetworkProfile::fast_local() };
        let p0 = motivating::p0();
        let cobra = Cobra::new(fx.db.clone(), net.clone(), CostCatalog::with_af(af), fx.mapping.clone())
            .with_funcs(fx.funcs.clone());
        let opt = cobra.optimize_program(&p0).unwrap();
        let original = run_on(&fx, net.clone(), &p0).unwrap();
        let rewritten = run_on(&fx, net, &Program::single(opt.program.clone())).unwrap();
        prop_assert_eq!(
            original.outcome.var_snapshot("result").normalized(),
            rewritten.outcome.var_snapshot("result").normalized()
        );
    }

    /// Heuristic rewrites are also semantics-preserving (they share the
    /// same transformation machinery).
    #[test]
    fn heuristic_rewrites_preserve_p0_semantics(
        orders in 1usize..300,
        customers in 1usize..60,
        seed in 0u64..1000,
    ) {
        let fx = motivating::build_fixture(orders, customers, seed);
        let net = NetworkProfile::fast_local();
        let p0 = motivating::p0();
        let h = heuristic::optimize_heuristic(&p0, &fx.mapping);
        let original = run_on(&fx, net.clone(), &p0).unwrap();
        let rewritten = run_on(&fx, net, &Program::single(h)).unwrap();
        prop_assert_eq!(
            original.outcome.var_snapshot("result").normalized(),
            rewritten.outcome.var_snapshot("result").normalized()
        );
    }
}

// Wilos representatives: soundness across every pattern (fixed seeds,
// all patterns — a loop instead of proptest keeps the run time bounded).
#[test]
fn cobra_preserves_all_wilos_pattern_semantics() {
    for seed in [3u64, 17] {
        for pattern in wilos::Pattern::all() {
            let program = wilos::representative(pattern);
            let net = NetworkProfile::fast_local();
            for af in [1.0, 50.0] {
                // Fresh fixtures per run: pattern A writes to the database.
                let fx_a = wilos::build_fixture(3_000, seed);
                let original = run_on(&fx_a, net.clone(), &program).unwrap();

                let fx_b = wilos::build_fixture(3_000, seed);
                let cobra = Cobra::new(
                    fx_b.db.clone(),
                    net.clone(),
                    CostCatalog::with_af(af),
                    fx_b.mapping.clone(),
                )
                .with_funcs(fx_b.funcs.clone());
                let opt = cobra.optimize_program(&program).unwrap();
                let mut functions = vec![opt.program.clone()];
                functions.extend(program.functions.iter().skip(1).cloned());
                let rewritten = run_on(&fx_b, net.clone(), &Program { functions }).unwrap();

                assert_eq!(
                    original.outcome.var_snapshot("result").normalized(),
                    rewritten.outcome.var_snapshot("result").normalized(),
                    "pattern {pattern:?} af={af} seed={seed}:\n{}",
                    cobra::imperative::pretty::function_to_string(&opt.program)
                );
                // Pattern A also mutates rows: database states must agree.
                if pattern == wilos::Pattern::A {
                    assert_eq!(
                        fx_a.db.borrow().table("role").unwrap().rows(),
                        fx_b.db.borrow().table("role").unwrap().rows(),
                        "pattern A database effects preserved"
                    );
                }
            }
        }
    }
}
