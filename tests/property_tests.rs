//! Property-based tests across crates: SQL printing round-trips, executor
//! algebraic invariants, and — most importantly — **rewrite soundness**:
//! COBRA-optimized programs compute the same results as the originals on
//! randomized databases.
//!
//! The workspace builds without network access, so instead of proptest the
//! cases are driven by a small deterministic xorshift generator: same
//! properties, reproducible counterexamples (the failing seed is in the
//! assertion message).

use cobra::core::{heuristic, CostCatalog};
use cobra::imperative::ast::Program;
use cobra::minidb::{sql, Value};
use cobra::netsim::NetworkProfile;
use cobra::workloads::rng::StdRng;
use cobra::workloads::{harness::run_on, motivating, wilos};

/// An identifier-ish name: `[a-z][a-z0-9_]{0,8}`.
fn ident(rng: &mut StdRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut s = String::new();
    s.push(FIRST[rng.gen_range(0..FIRST.len())] as char);
    for _ in 0..rng.gen_range(0..9usize) {
        s.push(REST[rng.gen_range(0..REST.len())] as char);
    }
    s
}

// ---------------------------------------------------------------------
// SQL front-end round trips.
// ---------------------------------------------------------------------

/// print ∘ parse is a fixpoint for generated SELECT statements.
#[test]
fn sql_print_parse_fixpoint() {
    let mut rng = StdRng::seed_from_u64(0xC0B7A);
    for case in 0..64 {
        let table = ident(&mut rng);
        let col = ident(&mut rng);
        let n = rng.gen_range(0..1000);
        let mut text = format!("select * from {table} where {col} > {n} order by {col}");
        if !rng.gen_bool() {
            text.push_str(" desc");
        }
        if rng.gen_bool() {
            text.push_str(&format!(" limit {}", rng.gen_range(0..100)));
        }
        let plan = sql::parse(&text).unwrap();
        let printed = sql::print(&plan);
        let reparsed = sql::parse(&printed).unwrap();
        assert_eq!(sql::print(&reparsed), printed, "case {case}: {text}");
    }
}

/// String literals survive the escape/unescape round trip.
#[test]
fn sql_string_literals_round_trip() {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ' ";
    let mut rng = StdRng::seed_from_u64(0x51A7);
    for case in 0..64 {
        let len = rng.gen_range(0..21) as usize;
        let s: String = (0..len)
            .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
            .collect();
        let text = format!("select * from t where c = '{}'", s.replace('\'', "''"));
        let plan = sql::parse(&text).unwrap();
        let printed = sql::print(&plan);
        let plan2 = sql::parse(&printed).unwrap();
        assert_eq!(plan, plan2, "case {case}: {text}");
    }
}

// ---------------------------------------------------------------------
// Executor invariants on randomized databases.
// ---------------------------------------------------------------------

/// σ_p(σ_q(R)) ≡ σ_q(σ_p(R)), and both subsume σ_{p∧q}(R).
#[test]
fn selection_commutes() {
    let mut rng = StdRng::seed_from_u64(0x5E1EC7);
    for case in 0..24 {
        let orders = rng.gen_range(1..300) as usize;
        let seed = rng.gen_range(0..500);
        let fx = motivating::build_fixture(orders, 20, seed);
        let db = fx.db.read().unwrap();
        let funcs = cobra::minidb::FuncRegistry::with_builtins();
        let exec = cobra::minidb::Executor::new(&db, &funcs);
        let none = std::collections::HashMap::new();
        let a = sql::parse("select * from orders where o_amount > 100.0 and o_status = 'open'")
            .unwrap();
        let b = sql::parse("select * from orders where o_status = 'open' and o_amount > 100.0")
            .unwrap();
        let ra = exec.execute(&a, &none).unwrap();
        let rb = exec.execute(&b, &none).unwrap();
        assert_eq!(ra.rows, rb.rows, "case {case}: orders={orders} seed={seed}");
    }
}

/// Join cardinality equals the sum over orders of matching customers
/// (FK semantics), independent of join input order.
#[test]
fn join_symmetry() {
    let mut rng = StdRng::seed_from_u64(0x1014);
    for case in 0..24 {
        let orders = rng.gen_range(1..200) as usize;
        let customers = rng.gen_range(1..50) as usize;
        let seed = rng.gen_range(0..500);
        let fx = motivating::build_fixture(orders, customers, seed);
        let db = fx.db.read().unwrap();
        let funcs = cobra::minidb::FuncRegistry::with_builtins();
        let exec = cobra::minidb::Executor::new(&db, &funcs);
        let none = std::collections::HashMap::new();
        let ab = sql::parse(
            "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk",
        )
        .unwrap();
        let ba = sql::parse(
            "select * from customer c join orders o on o.o_customer_sk = c.c_customer_sk",
        )
        .unwrap();
        let rab = exec.execute(&ab, &none).unwrap();
        let rba = exec.execute(&ba, &none).unwrap();
        assert_eq!(rab.row_count(), rba.row_count(), "case {case} seed={seed}");
        assert_eq!(
            rab.row_count() as usize,
            orders,
            "case {case} seed={seed}: every order joins its customer"
        );
    }
}

/// count(*) equals the materialized row count for any filter.
#[test]
fn count_matches_materialization() {
    let mut rng = StdRng::seed_from_u64(0xC0047);
    for case in 0..24 {
        let orders = rng.gen_range(1..300) as usize;
        let seed = rng.gen_range(0..500);
        let fx = motivating::build_fixture(orders, 10, seed);
        let db = fx.db.read().unwrap();
        let funcs = cobra::minidb::FuncRegistry::with_builtins();
        let exec = cobra::minidb::Executor::new(&db, &funcs);
        let none = std::collections::HashMap::new();
        let rows = exec
            .execute(
                &sql::parse("select * from orders where o_status = 'open'").unwrap(),
                &none,
            )
            .unwrap();
        let count = exec
            .execute(
                &sql::parse("select count(*) as n from orders where o_status = 'open'").unwrap(),
                &none,
            )
            .unwrap();
        assert_eq!(
            count.rows[0][0],
            Value::Int(rows.row_count() as i64),
            "case {case} seed={seed}"
        );
    }
}

// ---------------------------------------------------------------------
// Rewrite soundness: the headline property.
// ---------------------------------------------------------------------

/// COBRA's chosen program computes the same `result` as P0 on random
/// databases, for both networks and several AF values.
#[test]
fn cobra_rewrites_preserve_p0_semantics() {
    let mut rng = StdRng::seed_from_u64(0xFACADE);
    for case in 0..12 {
        let orders = rng.gen_range(1..400) as usize;
        let customers = rng.gen_range(1..100) as usize;
        let seed = rng.gen_range(0..1000);
        let slow = rng.gen_bool();
        let af = if rng.gen_bool() { 1.0 } else { 50.0 };
        let fx = motivating::build_fixture(orders, customers, seed);
        let net = if slow {
            NetworkProfile::slow_remote()
        } else {
            NetworkProfile::fast_local()
        };
        let p0 = motivating::p0();
        let cobra = fx
            .cobra_builder()
            .network(net.clone())
            .catalog(CostCatalog::with_af(af))
            .build();
        let opt = cobra.optimize_program(&p0).unwrap();
        let original = run_on(&fx, net.clone(), &p0).unwrap();
        let rewritten = run_on(&fx, net, &Program::single(opt.program.clone())).unwrap();
        assert_eq!(
            original.outcome.var_snapshot("result").normalized(),
            rewritten.outcome.var_snapshot("result").normalized(),
            "case {case}: orders={orders} customers={customers} seed={seed} slow={slow} af={af}"
        );
    }
}

/// Heuristic rewrites are also semantics-preserving (they share the
/// same transformation machinery).
#[test]
fn heuristic_rewrites_preserve_p0_semantics() {
    let mut rng = StdRng::seed_from_u64(0x4E0951);
    for case in 0..12 {
        let orders = rng.gen_range(1..300) as usize;
        let customers = rng.gen_range(1..60) as usize;
        let seed = rng.gen_range(0..1000);
        let fx = motivating::build_fixture(orders, customers, seed);
        let net = NetworkProfile::fast_local();
        let p0 = motivating::p0();
        let h = heuristic::optimize_heuristic(&p0, &fx.mapping);
        let original = run_on(&fx, net.clone(), &p0).unwrap();
        let rewritten = run_on(&fx, net, &Program::single(h)).unwrap();
        assert_eq!(
            original.outcome.var_snapshot("result").normalized(),
            rewritten.outcome.var_snapshot("result").normalized(),
            "case {case}: orders={orders} customers={customers} seed={seed}"
        );
    }
}

// Wilos representatives: soundness across every pattern (fixed seeds,
// all patterns — a loop keeps the run time bounded).
#[test]
fn cobra_preserves_all_wilos_pattern_semantics() {
    for seed in [3u64, 17] {
        for pattern in wilos::Pattern::all() {
            let program = wilos::representative(pattern);
            let net = NetworkProfile::fast_local();
            for af in [1.0, 50.0] {
                // Fresh fixtures per run: pattern A writes to the database.
                let fx_a = wilos::build_fixture(3_000, seed);
                let original = run_on(&fx_a, net.clone(), &program).unwrap();

                let fx_b = wilos::build_fixture(3_000, seed);
                let cobra = fx_b
                    .cobra_builder()
                    .network(net.clone())
                    .catalog(CostCatalog::with_af(af))
                    .build();
                let opt = cobra.optimize_program(&program).unwrap();
                let mut functions = vec![opt.program.clone()];
                functions.extend(program.functions.iter().skip(1).cloned());
                let rewritten = run_on(&fx_b, net.clone(), &Program { functions }).unwrap();

                assert_eq!(
                    original.outcome.var_snapshot("result").normalized(),
                    rewritten.outcome.var_snapshot("result").normalized(),
                    "pattern {pattern:?} af={af} seed={seed}:\n{}",
                    cobra::imperative::pretty::function_to_string(&opt.program)
                );
                // Pattern A also mutates rows: database states must agree.
                if pattern == wilos::Pattern::A {
                    assert_eq!(
                        fx_a.db.read().unwrap().table("role").unwrap().rows(),
                        fx_b.db.read().unwrap().table("role").unwrap().rows(),
                        "pattern A database effects preserved"
                    );
                }
            }
        }
    }
}
