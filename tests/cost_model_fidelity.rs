//! Cost-model fidelity (the paper's "Threats to validity" discussion):
//! estimated costs deviate from actual runtimes — unmodelled constants,
//! bandwidth utilization — but what matters is that the model *ranks*
//! alternatives the way measurements do. These tests quantify that.

use cobra::minidb::FeedbackStore;
use cobra::netsim::NetworkProfile;
use cobra::oracle::{mid_range, spearman};
use cobra::workloads::genprog::{GenCase, GenConfig};
use cobra::workloads::harness::run_on_with_feedback;
use cobra::workloads::{harness::run_on, motivating};
use std::sync::Arc;

/// Measured times and estimated costs of P0/P1/P2 on one configuration.
fn measure(orders: usize, customers: usize, net: NetworkProfile) -> Vec<(&'static str, f64, f64)> {
    let fx = motivating::build_fixture(orders, customers, 31);
    let cobra = fx.cobra_builder().network(net.clone()).build();
    [
        ("P0", motivating::p0()),
        ("P1", motivating::p1()),
        ("P2", motivating::p2()),
    ]
    .into_iter()
    .map(|(name, p)| {
        let actual = run_on(&fx, net.clone(), &p).unwrap().secs;
        let estimated = cobra.cost_of(p.entry()) / 1e9;
        (name, actual, estimated)
    })
    .collect()
}

/// The estimated winner must be the measured winner (or within 25 % of
/// it) on a grid of configurations spanning both crossover regimes.
#[test]
fn estimated_winner_is_measured_winner() {
    let grid = [
        (500usize, 10_000usize),
        (5_000, 5_000),
        (20_000, 2_000),
        (2_000, 50),
    ];
    for (orders, customers) in grid {
        for net in [NetworkProfile::slow_remote(), NetworkProfile::fast_local()] {
            let rows = measure(orders, customers, net.clone());
            let est_winner = rows.iter().min_by(|a, b| a.2.total_cmp(&b.2)).unwrap();
            let act_best = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
            assert!(
                est_winner.1 <= act_best * 1.25,
                "({orders},{customers},{}): estimated winner {} runs {:.3}s vs best {:.3}s\n{rows:?}",
                net.name(),
                est_winner.0,
                est_winner.1,
                act_best
            );
        }
    }
}

/// For query-dominated programs (P1, P2) the estimate should also be
/// *calibrated*: within a small factor of the measured time on the slow
/// network, where transfer dominates and the model is exact.
#[test]
fn estimates_are_calibrated_when_transfer_dominates() {
    let rows = measure(20_000, 5_000, NetworkProfile::slow_remote());
    for (name, actual, estimated) in rows {
        if name == "P0" {
            // P0's estimate ignores the ORM session cache by design
            // (§VI; the paper's model shares this) — it overestimates.
            assert!(
                estimated >= actual * 0.9,
                "P0 may only be overestimated: est {estimated:.1}s vs actual {actual:.1}s"
            );
            continue;
        }
        let ratio = estimated / actual;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{name}: est {estimated:.2}s vs actual {actual:.2}s (ratio {ratio:.2})"
        );
    }
}

/// Experiment-2 note: on the fast network, P0's *measured* time grows
/// sub-linearly once the session cache holds every customer.
#[test]
fn session_cache_saturation_is_observable() {
    let net = NetworkProfile::fast_local();
    let small = run_on(
        &motivating::build_fixture(5_000, 500, 31),
        net.clone(),
        &motivating::p0(),
    )
    .unwrap();
    let large = run_on(
        &motivating::build_fixture(50_000, 500, 31),
        net,
        &motivating::p0(),
    )
    .unwrap();
    // 10× the orders but the same 500 customers: round trips stay ~equal.
    assert!(
        large.outcome.round_trips <= small.outcome.round_trips + 5,
        "lookups saturate: {} vs {}",
        large.outcome.round_trips,
        small.outcome.round_trips
    );
    // …and the runtime grows far less than 10×.
    assert!(large.secs < small.secs * 6.0);
}

/// Fidelity at scale: across 40 *generated* programs — each with its own
/// randomized schema, data and control flow — the model's predicted costs
/// must *rank* programs the way simulated execution does, on every
/// network profile. (Spearman rank correlation; the paper's "Threats to
/// validity" argues ranking is what the search actually needs.)
#[test]
fn predicted_costs_rank_generated_programs_like_execution() {
    let cfg = GenConfig::default();
    for net in [
        NetworkProfile::slow_remote(),
        mid_range(),
        NetworkProfile::fast_local(),
    ] {
        let mut predicted = Vec::new();
        let mut simulated = Vec::new();
        for seed in 3000..3040u64 {
            let case = GenCase::from_seed(seed, &cfg);
            let fixture = case.fixture();
            let cobra = fixture.cobra_builder().network(net.clone()).build();
            predicted.push(cobra.cost_of(case.program.entry()));
            simulated.push(
                run_on(&case.fixture(), net.clone(), &case.program)
                    .unwrap()
                    .secs,
            );
        }
        let rho = spearman(&predicted, &simulated);
        assert!(
            rho >= 0.7,
            "{}: predicted cost must rank like simulated time, rho = {rho:.3}",
            net.name()
        );
    }
}

/// Adaptive statistics earn their keep on *skewed* data: per network
/// profile, across 20 generated programs whose data columns and foreign
/// keys pile up near zero, histogram + runtime-feedback estimation must
/// rank programs strictly better than the uniform-NDV baseline (the
/// pre-histogram estimator: fixed 1/3 range selectivity, null-blind
/// 1/NDV equality) — and clear an absolute fidelity floor of its own.
#[test]
fn histograms_and_feedback_improve_skewed_corpus_ranking() {
    let cfg = GenConfig::skewed();
    for net in [
        NetworkProfile::slow_remote(),
        mid_range(),
        NetworkProfile::fast_local(),
    ] {
        let mut baseline = Vec::new();
        let mut adaptive = Vec::new();
        let mut simulated = Vec::new();
        for seed in 7000..7020u64 {
            let case = GenCase::from_seed(seed, &cfg);
            let fixture = case.fixture();
            // Uniform-NDV baseline: histograms off, no feedback.
            let base = fixture
                .cobra_builder()
                .network(net.clone())
                .histograms(false)
                .build();
            baseline.push(base.cost_of(case.program.entry()));
            // Adaptive: histograms plus one observed execution (on its
            // own fixture, so updates don't touch the estimated one).
            // That run doubles as the simulated ground truth — runs on
            // fresh fixtures are deterministic.
            let store = Arc::new(FeedbackStore::new());
            let run =
                run_on_with_feedback(&case.fixture(), net.clone(), &case.program, store.clone())
                    .unwrap();
            simulated.push(run.secs);
            let adapt = fixture
                .cobra_builder()
                .network(net.clone())
                .feedback(store)
                .build();
            adaptive.push(adapt.cost_of(case.program.entry()));
        }
        let rho_base = spearman(&baseline, &simulated);
        let rho_adapt = spearman(&adaptive, &simulated);
        eprintln!(
            "skewed corpus {}: baseline rho {rho_base:.3}, histogram+feedback rho {rho_adapt:.3}",
            net.name()
        );
        assert!(
            rho_adapt > rho_base,
            "{}: histogram+feedback estimation must rank strictly better \
             than the uniform-NDV baseline ({rho_adapt:.3} vs {rho_base:.3})",
            net.name()
        );
        assert!(
            rho_adapt >= 0.9,
            "{}: adaptive fidelity floor, rho = {rho_adapt:.3}",
            net.name()
        );
    }
}

/// The same holds for the *optimized* programs' predicted cost vs their
/// simulated runtime — the quantity the search actually minimizes.
#[test]
fn optimized_cost_estimates_rank_like_optimized_runtimes() {
    let cfg = GenConfig::default();
    let net = NetworkProfile::slow_remote();
    let mut predicted = Vec::new();
    let mut simulated = Vec::new();
    for seed in 3100..3130u64 {
        let case = GenCase::from_seed(seed, &cfg);
        let fixture = case.fixture();
        let cobra = fixture.cobra_builder().network(net.clone()).build();
        let opt = cobra.optimize_program(&case.program).unwrap();
        let rewritten = case.program.with_entry(opt.program);
        predicted.push(opt.est_cost_ns);
        simulated.push(
            run_on(&case.fixture(), net.clone(), &rewritten)
                .unwrap()
                .secs,
        );
    }
    let rho = spearman(&predicted, &simulated);
    assert!(rho >= 0.7, "optimized-programs rank correlation: {rho:.3}");
}
