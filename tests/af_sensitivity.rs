//! The amortization factor (`AF_Q`, §VI) gates prefetching: prefetch cost
//! is `C_Q / AF_Q`. With few accesses (AF = 1) fetching a whole relation
//! to answer a couple of point lookups must lose; with many expected
//! accesses (large AF) it must win. These tests pin that flip down.

use cobra::core::{Cobra, CostCatalog};
use cobra::imperative::ast::Program;
use cobra::netsim::NetworkProfile;
use cobra::workloads::{harness::run_on, wilos};

/// Pattern-E-shaped program over `role` with only 2 filter keys: barely
/// any reuse, a relatively large relation.
fn two_lookups() -> Program {
    wilos::build_e("afProbe", "role", "r_project", "r_size", 2)
}

fn choice_under(af: f64, scale: usize) -> (Vec<&'static str>, f64, f64) {
    let fx = wilos::build_fixture(scale, 23);
    let cobra = Cobra::new(
        fx.db.clone(),
        NetworkProfile::slow_remote(), // transfer-dominated: AF matters most
        CostCatalog::with_af(af),
        fx.mapping.clone(),
    )
    .with_funcs(fx.funcs.clone());
    let opt = cobra.optimize_program(&two_lookups()).unwrap();
    (opt.tags, opt.est_cost_ns, opt.original_cost_ns)
}

#[test]
fn low_af_keeps_point_queries_high_af_prefetches() {
    let scale = 200_000; // role has scale/500 = 400 rows → 2 keys touch ~20%
    let (tags_low, est_low, orig_low) = choice_under(1.0, scale);
    let (tags_high, est_high, _) = choice_under(1_000.0, scale);
    assert!(
        !tags_low.contains(&"prefetch"),
        "AF=1: fetching the whole relation for 2 lookups must lose ({tags_low:?})"
    );
    assert!(
        tags_high.contains(&"prefetch"),
        "AF=1000: amortized prefetch must win ({tags_high:?})"
    );
    // Costs are consistent with the choices.
    assert!(est_low <= orig_low * 1.001);
    assert!(
        est_high < est_low,
        "amortization must reduce estimated cost"
    );
}

#[test]
fn af_choices_are_both_semantics_preserving() {
    let program = two_lookups();
    for af in [1.0, 1_000.0] {
        let fx = wilos::build_fixture(20_000, 23);
        let cobra = Cobra::new(
            fx.db.clone(),
            NetworkProfile::slow_remote(),
            CostCatalog::with_af(af),
            fx.mapping.clone(),
        )
        .with_funcs(fx.funcs.clone());
        let opt = cobra.optimize_program(&program).unwrap();
        let original = run_on(&fx, NetworkProfile::fast_local(), &program).unwrap();
        let rewritten = run_on(
            &fx,
            NetworkProfile::fast_local(),
            &Program::single(opt.program.clone()),
        )
        .unwrap();
        assert_eq!(
            original.outcome.var_snapshot("result").normalized(),
            rewritten.outcome.var_snapshot("result").normalized(),
            "af={af}"
        );
    }
}

#[test]
fn cost_catalog_file_drives_the_choice() {
    // The paper supplies cost metrics "as a cost catalog file"; the same
    // choice flip must be reachable through the file format.
    let scale = 200_000;
    let low = CostCatalog::parse("default_af = 1\n").unwrap();
    let high = CostCatalog::parse("default_af = 1000\naf.role = 2000\n").unwrap();
    let fx = wilos::build_fixture(scale, 23);
    let mk = |cat: CostCatalog| {
        Cobra::new(
            fx.db.clone(),
            NetworkProfile::slow_remote(),
            cat,
            fx.mapping.clone(),
        )
        .with_funcs(fx.funcs.clone())
    };
    let t_low = mk(low).optimize_program(&two_lookups()).unwrap().tags;
    let t_high = mk(high).optimize_program(&two_lookups()).unwrap().tags;
    assert!(!t_low.contains(&"prefetch"), "{t_low:?}");
    assert!(t_high.contains(&"prefetch"), "{t_high:?}");
}
