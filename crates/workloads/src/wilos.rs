//! A synthetic stand-in for the Wilos application (Experiment 4).
//!
//! Wilos is an open-source process-orchestration application built on
//! Hibernate/Spring; the paper manually identified **32 code fragments**
//! in it where cost-based rewriting applies, classified into six patterns
//! (Figure 14), and evaluated a representative of each (Figure 15).
//!
//! We cannot ship Wilos itself, so this module reproduces its *decision
//! structure*: a project-management schema (project → phase → iteration →
//! activity → task → workproduct, role → participant, a process tree),
//! a data generator with the paper's setup (largest relations at the
//! configured scale, ~10:1 many-to-one ratios, 20 % predicate
//! selectivity), and 32 fragments whose shapes match the patterns:
//!
//! | id | pattern | decision |
//! |----|---------|----------|
//! | A | nested loops with intermittent updates | SQL-translate the inner loop (iterative queries) vs prefetch the inner relation |
//! | B | multiple aggregations in one loop | extra SQL aggregate query vs single query |
//! | C | nested-loops join | SQL join vs cache-and-join locally |
//! | D | function called inside a loop | inline + SQL rewrite vs per-iteration execution |
//! | E | collection filtered differently across calls | iterative point queries vs prefetch whole relation |
//! | F | different parts of a collection across callees | multiple select/project queries vs one prefetch |

use crate::harness::Fixture;
use crate::rng::StdRng;
use imperative::ast::{Expr, Function, Program, QuerySpec, Stmt, StmtKind};
use minidb::{BinOp, Column, DataType, Database, FuncRegistry, Schema, Value};
use orm::{EntityMapping, MappingRegistry};

use std::sync::Arc;

/// The six cost-based patterns of Figure 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pattern {
    A,
    B,
    C,
    D,
    E,
    F,
}

impl Pattern {
    /// All patterns in order.
    pub fn all() -> [Pattern; 6] {
        [
            Pattern::A,
            Pattern::B,
            Pattern::C,
            Pattern::D,
            Pattern::E,
            Pattern::F,
        ]
    }

    /// Paper description of the cost-based choice (Figure 14).
    pub fn description(self) -> &'static str {
        match self {
            Pattern::A => {
                "Nested loops with intermittent updates: inner loop can be \
                 translated to SQL vs overall degradation due to iterative queries"
            }
            Pattern::B => {
                "Multiple aggregations inside loop: faster aggregation by \
                 translation to SQL vs multiple queries (NRT) instead of one"
            }
            Pattern::C => {
                "Nested loops join: better join algo at the database and fetch \
                 (large) result of SQL join vs cache tables at application and \
                 join locally"
            }
            Pattern::D => {
                "Function called inside a loop can be rewritten using SQL: \
                 overall performance may degrade due to iterative queries if \
                 caller loop cannot be translated"
            }
            Pattern::E => {
                "Collection filtered differently across different calls: \
                 multiple point lookup queries vs prefetch whole table once \
                 and filter from cache"
            }
            Pattern::F => {
                "Different parts of a collection used across callee functions: \
                 multiple select/project queries vs prefetch all data with one \
                 query"
            }
        }
    }
}

/// One of the 32 Wilos code fragments (Figure 16).
pub struct Fragment {
    /// Serial number (1–32, as in Figure 16).
    pub id: usize,
    /// Pattern classification.
    pub pattern: Pattern,
    /// Source location in Wilos (Figure 16's file/line).
    pub file: &'static str,
    /// Line number in the Wilos source.
    pub line: u32,
    /// The synthesized program with the fragment's decision structure.
    pub program: Program,
}

// ---------------------------------------------------------------------
// Schema and data generation.
// ---------------------------------------------------------------------

fn schema_of(cols: &[(&str, DataType, u32)]) -> Schema {
    Schema::new(
        cols.iter()
            .map(|(n, t, w)| Column::with_width(*n, *t, *w))
            .collect(),
    )
}

/// The five process/task states: equality on a state has the paper's 20 %
/// selectivity.
const STATES: [&str; 5] = ["created", "ready", "started", "suspended", "finished"];
const PROCESS_TYPES: [&str; 5] = ["guidance", "phase", "task", "activity", "milestone"];
/// Number of distinct `pr_root` values (pattern E's filter keys).
pub const PROCESS_ROOTS: i64 = 20;

/// Build the Wilos-like database at `scale` (rows in the largest
/// relations: `process`, `task`, `workproduct`), deterministic in `seed`.
pub fn build_fixture(scale: usize, seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = scale.max(100);
    let mut db = Database::new();

    let n_projects = (n / 10_000).max(10);
    let n_phases = (n / 1_000).max(20);
    let n_iterations = (n / 100).max(40);
    let n_activities = (n / 10).max(80);
    let n_tasks = n;
    let n_workproducts = n;
    let n_roles = (n / 500).max(20);
    let n_participants = (n / 50).max(200);
    let n_processes = n;

    let t = db
        .create_table(
            "project",
            schema_of(&[
                ("p_id", DataType::Int, 8),
                ("p_name", DataType::Str, 30),
                ("p_state", DataType::Str, 10),
            ]),
        )
        .unwrap();
    t.set_primary_key("p_id").unwrap();
    t.insert_many((0..n_projects).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::str(format!("project-{i}")),
            Value::str(STATES[i % 5]),
        ]
    }))
    .unwrap();

    let t = db
        .create_table(
            "phase",
            schema_of(&[
                ("ph_id", DataType::Int, 8),
                ("ph_project", DataType::Int, 8),
                ("ph_name", DataType::Str, 20),
                ("ph_order", DataType::Int, 8),
            ]),
        )
        .unwrap();
    t.set_primary_key("ph_id").unwrap();
    t.insert_many((0..n_phases).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::Int((i % n_projects) as i64),
            Value::str(format!("phase-{i}")),
            Value::Int((i / n_projects) as i64),
        ]
    }))
    .unwrap();

    let t = db
        .create_table(
            "iteration",
            schema_of(&[
                ("it_id", DataType::Int, 8),
                ("it_phase", DataType::Int, 8),
                ("it_count", DataType::Int, 8),
                ("it_state", DataType::Str, 10),
            ]),
        )
        .unwrap();
    t.set_primary_key("it_id").unwrap();
    t.insert_many((0..n_iterations).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::Int((i % n_phases) as i64),
            Value::Int((i % 7) as i64),
            Value::str(STATES[i % 5]),
        ]
    }))
    .unwrap();

    let t = db
        .create_table(
            "activity",
            schema_of(&[
                ("a_id", DataType::Int, 8),
                ("a_iteration", DataType::Int, 8),
                ("a_name", DataType::Str, 24),
                ("a_size", DataType::Int, 8),
            ]),
        )
        .unwrap();
    t.set_primary_key("a_id").unwrap();
    t.insert_many((0..n_activities).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::Int((i % n_iterations) as i64),
            Value::str(format!("activity-{i}")),
            Value::Int(0),
        ]
    }))
    .unwrap();

    let t = db
        .create_table(
            "task",
            schema_of(&[
                ("t_id", DataType::Int, 8),
                ("t_activity", DataType::Int, 8),
                ("t_state", DataType::Str, 10),
                ("t_priority", DataType::Int, 8),
                ("t_size", DataType::Int, 8),
            ]),
        )
        .unwrap();
    t.set_primary_key("t_id").unwrap();
    t.insert_many((0..n_tasks).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::Int((i % n_activities) as i64),
            Value::str(STATES[i % 5]),
            Value::Int((i % 5) as i64),
            Value::Int(rng.gen_range(1..100)),
        ]
    }))
    .unwrap();

    let t = db
        .create_table(
            "workproduct",
            schema_of(&[
                ("w_id", DataType::Int, 8),
                ("w_task", DataType::Int, 8),
                ("w_state", DataType::Str, 10),
                ("w_cost", DataType::Float, 8),
            ]),
        )
        .unwrap();
    t.set_primary_key("w_id").unwrap();
    let task_fk_range = (n_tasks / 10).max(1) as i64;
    t.insert_many((0..n_workproducts).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::Int((i as i64) % task_fk_range),
            Value::str(STATES[i % 5]),
            Value::Float((i % 89) as f64 * 0.5),
        ]
    }))
    .unwrap();

    let t = db
        .create_table(
            "role",
            schema_of(&[
                ("r_id", DataType::Int, 8),
                ("r_project", DataType::Int, 8),
                ("r_name", DataType::Str, 20),
                ("r_size", DataType::Int, 8),
            ]),
        )
        .unwrap();
    t.set_primary_key("r_id").unwrap();
    t.insert_many((0..n_roles).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::Int((i % n_projects) as i64),
            Value::str(format!("role-{i}")),
            Value::Int(0),
        ]
    }))
    .unwrap();

    let t = db
        .create_table(
            "participant",
            schema_of(&[
                ("pa_id", DataType::Int, 8),
                ("pa_role", DataType::Int, 8),
                ("pa_name", DataType::Str, 30),
                ("pa_email", DataType::Str, 40),
            ]),
        )
        .unwrap();
    t.set_primary_key("pa_id").unwrap();
    t.insert_many((0..n_participants).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::Int((i % n_roles) as i64),
            Value::str(format!("participant-{i}")),
            Value::str(format!("p{i}@wilos.example")),
        ]
    }))
    .unwrap();

    let t = db
        .create_table(
            "process",
            schema_of(&[
                ("pr_id", DataType::Int, 8),
                ("pr_root", DataType::Int, 8),
                ("pr_parent", DataType::Int, 8),
                ("pr_type", DataType::Str, 12),
                ("pr_size", DataType::Int, 8),
            ]),
        )
        .unwrap();
    t.set_primary_key("pr_id").unwrap();
    let parent_range = (n_processes / 10).max(1) as i64;
    t.insert_many((0..n_processes).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::Int((i as i64) % PROCESS_ROOTS),
            Value::Int((i as i64) % parent_range),
            Value::str(PROCESS_TYPES[i % 5]),
            Value::Int(rng.gen_range(1..50)),
        ]
    }))
    .unwrap();

    // Secondary indexes on every foreign-key / filter column, as any
    // production schema would have (MySQL auto-indexes FK columns).
    for (table, col) in [
        ("phase", "ph_project"),
        ("iteration", "it_phase"),
        ("activity", "a_iteration"),
        ("task", "t_activity"),
        ("workproduct", "w_task"),
        ("role", "r_project"),
        ("participant", "pa_role"),
        ("process", "pr_parent"),
        ("process", "pr_root"),
    ] {
        db.table_mut(table).unwrap().create_index(col).unwrap();
    }
    db.analyze_all();

    let mut mapping = MappingRegistry::new();
    mapping.register(EntityMapping::new("Project", "project", "p_id"));
    mapping.register(EntityMapping::new("Phase", "phase", "ph_id").many_to_one(
        "project",
        "Project",
        "ph_project",
    ));
    mapping.register(
        EntityMapping::new("Iteration", "iteration", "it_id")
            .many_to_one("phase", "Phase", "it_phase"),
    );
    mapping.register(
        EntityMapping::new("Activity", "activity", "a_id").many_to_one(
            "iteration",
            "Iteration",
            "a_iteration",
        ),
    );
    mapping.register(EntityMapping::new("Task", "task", "t_id").many_to_one(
        "activity",
        "Activity",
        "t_activity",
    ));
    mapping.register(
        EntityMapping::new("WorkProduct", "workproduct", "w_id")
            .many_to_one("task", "Task", "w_task"),
    );
    mapping.register(EntityMapping::new("Role", "role", "r_id").many_to_one(
        "project",
        "Project",
        "r_project",
    ));
    mapping.register(
        EntityMapping::new("Participant", "participant", "pa_id")
            .many_to_one("role", "Role", "pa_role"),
    );
    mapping.register(EntityMapping::new("Process", "process", "pr_id"));

    let mut funcs = FuncRegistry::with_builtins();
    funcs.register("pairKey", DataType::Int, |args| {
        let a = args.first().and_then(|v| v.as_i64()).unwrap_or(0);
        let b = args.get(1).and_then(|v| v.as_i64()).unwrap_or(0);
        Ok(Value::Int(a * 1_000_003 + b))
    });

    Fixture {
        db: minidb::shared(db),
        mapping,
        funcs: Arc::new(funcs),
    }
}

// ---------------------------------------------------------------------
// Pattern program builders.
// ---------------------------------------------------------------------

fn st(kind: StmtKind) -> Stmt {
    Stmt::new(kind)
}

/// Pattern A: outer loop with a database update; the inner loop filters a
/// relation. The inner loop is the cost-based decision point.
pub fn build_a(
    name: &str,
    outer_entity: &str,
    outer_pk: &str,
    inner_entity: &str,
    inner_fk: &str,
    update_table: &str,
    update_col: &str,
) -> Program {
    let mut f = Function::new(
        name,
        vec!["result".to_string()],
        vec![
            st(StmtKind::NewCollection("result".into())),
            st(StmtKind::ForEach {
                var: "x".into(),
                iter: Expr::LoadAll(outer_entity.into()),
                body: vec![
                    st(StmtKind::NewCollection("matches".into())),
                    st(StmtKind::ForEach {
                        var: "y".into(),
                        iter: Expr::LoadAll(inner_entity.into()),
                        body: vec![st(StmtKind::If {
                            cond: Expr::bin(
                                BinOp::Eq,
                                Expr::field(Expr::var("y"), inner_fk),
                                Expr::field(Expr::var("x"), outer_pk),
                            ),
                            then_branch: vec![st(StmtKind::Add("matches".into(), Expr::var("y")))],
                            else_branch: vec![],
                        })],
                    }),
                    st(StmtKind::UpdateQuery {
                        table: update_table.into(),
                        set_col: update_col.into(),
                        value: Expr::Len(Box::new(Expr::var("matches"))),
                        key_col: outer_pk.into(),
                        key: Expr::field(Expr::var("x"), outer_pk),
                    }),
                    st(StmtKind::Add(
                        "result".into(),
                        Expr::Len(Box::new(Expr::var("matches"))),
                    )),
                ],
            }),
        ],
    );
    f.number_lines(2);
    Program::single(f)
}

/// Pattern B: one cursor loop computing a scalar count *and* materializing
/// the rows — extracting the count to SQL adds a round trip.
pub fn build_b(name: &str, table: &str, id_col: &str) -> Program {
    let mut f = Function::new(
        name,
        vec!["ids".to_string(), "cnt".to_string()],
        vec![
            st(StmtKind::Let("cnt".into(), Expr::lit(0i64))),
            st(StmtKind::NewCollection("ids".into())),
            st(StmtKind::ForEach {
                var: "t".into(),
                iter: Expr::Query(QuerySpec::sql(&format!("select * from {table}"))),
                body: vec![
                    st(StmtKind::Let(
                        "cnt".into(),
                        Expr::bin(BinOp::Add, Expr::var("cnt"), Expr::lit(1i64)),
                    )),
                    st(StmtKind::Add(
                        "ids".into(),
                        Expr::field(Expr::var("t"), id_col),
                    )),
                ],
            }),
        ],
    );
    f.number_lines(2);
    Program::single(f)
}

/// Pattern C: nested-loops join via iterative inner queries.
pub fn build_c(
    name: &str,
    outer_entity: &str,
    outer_pk: &str,
    inner_table: &str,
    inner_fk: &str,
    inner_val: &str,
) -> Program {
    let mut f = Function::new(
        name,
        vec!["result".to_string()],
        vec![
            st(StmtKind::NewCollection("result".into())),
            st(StmtKind::ForEach {
                var: "x".into(),
                iter: Expr::LoadAll(outer_entity.into()),
                body: vec![st(StmtKind::ForEach {
                    var: "y".into(),
                    iter: Expr::Query(
                        QuerySpec::sql(&format!(
                            "select * from {inner_table} where {inner_fk} = :k"
                        ))
                        .bind("k", Expr::field(Expr::var("x"), outer_pk)),
                    ),
                    body: vec![st(StmtKind::Add(
                        "result".into(),
                        Expr::Call(
                            "pairKey".into(),
                            vec![
                                Expr::field(Expr::var("x"), outer_pk),
                                Expr::field(Expr::var("y"), inner_val),
                            ],
                        ),
                    ))],
                })],
            }),
        ],
    );
    f.number_lines(2);
    Program::single(f)
}

/// Pattern D: a helper function (with ORM navigation) called inside a
/// loop; inlining + SQL translation is the rewrite.
pub fn build_d(
    name: &str,
    loop_entity: &str,
    loop_pk: &str,
    assoc_field: &str,
    assoc_val: &str,
) -> Program {
    let helper_name = format!("{name}_helper");
    let mut entry = Function::new(
        name,
        vec!["result".to_string()],
        vec![
            st(StmtKind::NewCollection("result".into())),
            st(StmtKind::ForEach {
                var: "w".into(),
                iter: Expr::LoadAll(loop_entity.into()),
                body: vec![
                    st(StmtKind::LetCall(
                        "v".into(),
                        helper_name.clone(),
                        vec![Expr::var("w")],
                    )),
                    st(StmtKind::Add("result".into(), Expr::var("v"))),
                ],
            }),
        ],
    );
    entry.number_lines(2);
    let mut helper = Function::new(
        helper_name,
        vec!["row".to_string()],
        vec![
            st(StmtKind::Let(
                "target".into(),
                Expr::nav(Expr::var("row"), assoc_field),
            )),
            st(StmtKind::Return(Some(Expr::Call(
                "pairKey".into(),
                vec![
                    Expr::field(Expr::var("row"), loop_pk),
                    Expr::field(Expr::var("target"), assoc_val),
                ],
            )))),
        ],
    );
    helper.number_lines(2);
    Program {
        functions: vec![entry, helper],
    }
}

/// Pattern E: the same relation filtered with a different key per call.
/// `keys` filter values are iterated; each issues a point/filtered query.
pub fn build_e(name: &str, table: &str, key_col: &str, val_col: &str, keys: i64) -> Program {
    let mut f = Function::new(
        name,
        vec!["result".to_string()],
        vec![
            st(StmtKind::NewCollection("result".into())),
            st(StmtKind::Let("k".into(), Expr::lit(0i64))),
            st(StmtKind::While {
                cond: Expr::bin(BinOp::Lt, Expr::var("k"), Expr::lit(keys)),
                body: vec![
                    st(StmtKind::Let(
                        "rows".into(),
                        Expr::Query(
                            QuerySpec::sql(&format!("select * from {table} where {key_col} = :k"))
                                .bind("k", Expr::var("k")),
                        ),
                    )),
                    st(StmtKind::Let("s".into(), Expr::lit(0i64))),
                    st(StmtKind::ForEach {
                        var: "r".into(),
                        iter: Expr::var("rows"),
                        body: vec![st(StmtKind::Let(
                            "s".into(),
                            Expr::bin(
                                BinOp::Add,
                                Expr::var("s"),
                                Expr::field(Expr::var("r"), val_col),
                            ),
                        ))],
                    }),
                    st(StmtKind::Add("result".into(), Expr::var("s"))),
                    st(StmtKind::Let(
                        "k".into(),
                        Expr::bin(BinOp::Add, Expr::var("k"), Expr::lit(1i64)),
                    )),
                ],
            }),
        ],
    );
    f.number_lines(2);
    Program::single(f)
}

/// Pattern F: two callees read different parts (projections/filters) of
/// the same relation.
pub fn build_f(
    name: &str,
    table: &str,
    type_col: &str,
    type_a: &str,
    type_b: &str,
    id_col: &str,
    val_col: &str,
) -> Program {
    let mut f = Function::new(
        name,
        vec!["result".to_string()],
        vec![
            st(StmtKind::NewCollection("result".into())),
            st(StmtKind::Let(
                "part1".into(),
                Expr::Query(QuerySpec::sql(&format!(
                    "select {id_col}, {val_col} from {table} where {type_col} = '{type_a}'"
                ))),
            )),
            st(StmtKind::Let(
                "part2".into(),
                Expr::Query(QuerySpec::sql(&format!(
                    "select {id_col}, {val_col} from {table} where {type_col} = '{type_b}'"
                ))),
            )),
            st(StmtKind::ForEach {
                var: "x".into(),
                iter: Expr::var("part1"),
                body: vec![st(StmtKind::Add(
                    "result".into(),
                    Expr::Call(
                        "pairKey".into(),
                        vec![
                            Expr::field(Expr::var("x"), id_col),
                            Expr::field(Expr::var("x"), val_col),
                        ],
                    ),
                ))],
            }),
            st(StmtKind::ForEach {
                var: "y".into(),
                iter: Expr::var("part2"),
                body: vec![st(StmtKind::Add(
                    "result".into(),
                    Expr::Call(
                        "pairKey".into(),
                        vec![
                            Expr::field(Expr::var("y"), id_col),
                            Expr::field(Expr::var("y"), val_col),
                        ],
                    ),
                ))],
            }),
        ],
    );
    f.number_lines(2);
    Program::single(f)
}

/// The representative program of a pattern, used in Figure 15.
pub fn representative(pattern: Pattern) -> Program {
    match pattern {
        Pattern::A => build_a(
            "patternA",
            "Role",
            "r_id",
            "Participant",
            "pa_role",
            "role",
            "r_size",
        ),
        Pattern::B => build_b("patternB", "task", "t_id"),
        Pattern::C => build_c(
            "patternC",
            "Role",
            "r_id",
            "participant",
            "pa_role",
            "pa_id",
        ),
        Pattern::D => build_d("patternD", "WorkProduct", "w_id", "task", "t_priority"),
        Pattern::E => build_e("patternE", "process", "pr_root", "pr_size", PROCESS_ROOTS),
        Pattern::F => build_f(
            "patternF", "process", "pr_type", "guidance", "phase", "pr_id", "pr_size",
        ),
    }
}

/// The 32 code fragments of Figure 16, with their Wilos source locations.
pub fn fragments() -> Vec<Fragment> {
    let mut out = Vec::with_capacity(32);
    let mut id = 0;
    let mut push = |pattern: Pattern, file: &'static str, line: u32, program: Program| {
        id += 1;
        out.push(Fragment {
            id,
            pattern,
            file,
            line,
            program,
        });
    };

    // Pattern A — 3 fragments.
    push(
        Pattern::A,
        "ProjectService",
        1139,
        build_a(
            "fragA1",
            "Role",
            "r_id",
            "Participant",
            "pa_role",
            "role",
            "r_size",
        ),
    );
    push(
        Pattern::A,
        "TaskDescriptorService",
        198,
        build_a(
            "fragA2",
            "Activity",
            "a_id",
            "Task",
            "t_activity",
            "activity",
            "a_size",
        ),
    );
    push(
        Pattern::A,
        "ConcreteWorkBreakdownElementService",
        144,
        build_a(
            "fragA3",
            "Task",
            "t_id",
            "WorkProduct",
            "w_task",
            "task",
            "t_size",
        ),
    );

    // Pattern B — 2 fragments.
    push(
        Pattern::B,
        "IterationService",
        139,
        build_b("fragB1", "task", "t_id"),
    );
    push(
        Pattern::B,
        "PhaseService",
        185,
        build_b("fragB2", "workproduct", "w_id"),
    );

    // Pattern C — 9 fragments.
    push(
        Pattern::C,
        "ConcreteRoleAffectationService",
        60,
        build_c("fragC1", "Role", "r_id", "participant", "pa_role", "pa_id"),
    );
    push(
        Pattern::C,
        "ConcreteTaskDescriptorService",
        312,
        build_c("fragC2", "Activity", "a_id", "task", "t_activity", "t_id"),
    );
    push(
        Pattern::C,
        "ConcreteTaskDescriptorService",
        1276,
        build_c("fragC3", "Task", "t_id", "workproduct", "w_task", "w_id"),
    );
    push(
        Pattern::C,
        "ConcreteTaskDescriptorService",
        1302,
        build_c("fragC4", "Task", "t_id", "workproduct", "w_task", "w_cost"),
    );
    push(
        Pattern::C,
        "ConcreteWorkBreakdownElementService",
        63,
        build_c(
            "fragC5",
            "Iteration",
            "it_id",
            "activity",
            "a_iteration",
            "a_id",
        ),
    );
    push(
        Pattern::C,
        "ConcreteWorkProductDescriptorService",
        445,
        build_c("fragC6", "Phase", "ph_id", "iteration", "it_phase", "it_id"),
    );
    push(
        Pattern::C,
        "ParticipantService",
        129,
        build_c("fragC7", "Project", "p_id", "role", "r_project", "r_id"),
    );
    push(
        Pattern::C,
        "RoleService",
        15,
        build_c("fragC8", "Project", "p_id", "phase", "ph_project", "ph_id"),
    );
    push(
        Pattern::C,
        "ActivityService",
        407,
        build_c(
            "fragC9",
            "Activity",
            "a_id",
            "task",
            "t_activity",
            "t_priority",
        ),
    );

    // Pattern D — 7 fragments.
    push(
        Pattern::D,
        "IterationService",
        293,
        build_d("fragD1", "WorkProduct", "w_id", "task", "t_priority"),
    );
    push(
        Pattern::D,
        "PhaseService",
        307,
        build_d("fragD2", "Task", "t_id", "activity", "a_size"),
    );
    push(
        Pattern::D,
        "ActivityService",
        229,
        build_d("fragD3", "Activity", "a_id", "iteration", "it_count"),
    );
    push(
        Pattern::D,
        "RoleDescriptorService",
        276,
        build_d("fragD4", "Participant", "pa_id", "role", "r_size"),
    );
    push(
        Pattern::D,
        "TaskDescriptorService",
        140,
        build_d("fragD5", "Iteration", "it_id", "phase", "ph_order"),
    );
    push(
        Pattern::D,
        "TaskDescriptorService",
        142,
        build_d("fragD6", "Phase", "ph_id", "project", "p_id"),
    );
    push(
        Pattern::D,
        "WorkProductDescriptorService",
        310,
        build_d("fragD7", "Role", "r_id", "project", "p_id"),
    );

    // Pattern E — 9 fragments.
    push(
        Pattern::E,
        "ProjectService",
        346,
        build_e("fragE1", "process", "pr_root", "pr_size", PROCESS_ROOTS),
    );
    push(
        Pattern::E,
        "ProjectService",
        567,
        build_e("fragE2", "role", "r_project", "r_size", 10),
    );
    push(
        Pattern::E,
        "ProjectService",
        647,
        build_e("fragE3", "participant", "pa_role", "pa_id", 20),
    );
    push(
        Pattern::E,
        "ProjectService",
        704,
        build_e("fragE4", "task", "t_activity", "t_size", 40),
    );
    push(
        Pattern::E,
        "ProcessService",
        1212,
        build_e("fragE5", "workproduct", "w_task", "w_id", 40),
    );
    push(
        Pattern::E,
        "ProcessService",
        1253,
        build_e("fragE6", "phase", "ph_project", "ph_order", 10),
    );
    push(
        Pattern::E,
        "ProcessService",
        1593,
        build_e("fragE7", "iteration", "it_phase", "it_count", 20),
    );
    push(
        Pattern::E,
        "ProcessService",
        1631,
        build_e("fragE8", "activity", "a_iteration", "a_size", 40),
    );
    push(
        Pattern::E,
        "ProcessService",
        1740,
        build_e("fragE9", "process", "pr_parent", "pr_size", 40),
    );

    // Pattern F — 2 fragments.
    push(
        Pattern::F,
        "ProcessService",
        406,
        build_f(
            "fragF1", "process", "pr_type", "guidance", "phase", "pr_id", "pr_size",
        ),
    );
    push(
        Pattern::F,
        "ProcessService",
        921,
        build_f(
            "fragF2",
            "task",
            "t_state",
            "created",
            "ready",
            "t_id",
            "t_priority",
        ),
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_on;
    use netsim::NetworkProfile;

    #[test]
    fn fragment_counts_match_figure_14() {
        let frags = fragments();
        assert_eq!(frags.len(), 32);
        let count = |p: Pattern| frags.iter().filter(|f| f.pattern == p).count();
        assert_eq!(count(Pattern::A), 3);
        assert_eq!(count(Pattern::B), 2);
        assert_eq!(count(Pattern::C), 9);
        assert_eq!(count(Pattern::D), 7);
        assert_eq!(count(Pattern::E), 9);
        assert_eq!(count(Pattern::F), 2);
    }

    #[test]
    fn fragment_ids_are_sequential_like_figure_16() {
        let frags = fragments();
        for (i, f) in frags.iter().enumerate() {
            assert_eq!(f.id, i + 1);
        }
        assert_eq!(frags[0].file, "ProjectService");
        assert_eq!(frags[0].line, 1139);
        assert_eq!(frags[31].file, "ProcessService");
        assert_eq!(frags[31].line, 921);
    }

    #[test]
    fn fixture_scales_and_ratios() {
        let fx = build_fixture(10_000, 1);
        let db = fx.db.read().unwrap();
        assert_eq!(db.table("task").unwrap().row_count(), 10_000);
        assert_eq!(db.table("process").unwrap().row_count(), 10_000);
        let roles = db.table("role").unwrap().row_count();
        let participants = db.table("participant").unwrap().row_count();
        assert_eq!(participants / roles, 10, "10:1 many-to-one ratio");
    }

    #[test]
    fn state_predicates_have_twenty_percent_selectivity() {
        let fx = build_fixture(5_000, 1);
        let db = fx.db.read().unwrap();
        let t = db.table("task").unwrap();
        let created = t
            .rows()
            .iter()
            .filter(|r| r[2] == Value::str("created"))
            .count();
        let frac = created as f64 / t.row_count() as f64;
        assert!((frac - 0.2).abs() < 0.01, "selectivity {frac}");
    }

    #[test]
    fn all_representatives_run() {
        let fx = build_fixture(2_000, 2);
        for p in Pattern::all() {
            let program = representative(p);
            let r = run_on(&fx, NetworkProfile::fast_local(), &program)
                .unwrap_or_else(|e| panic!("{p:?}: {e}"));
            assert!(r.secs > 0.0, "{p:?}");
        }
    }

    #[test]
    fn pattern_a_updates_the_database() {
        let fx = build_fixture(2_000, 2);
        run_on(
            &fx,
            NetworkProfile::fast_local(),
            &representative(Pattern::A),
        )
        .unwrap();
        let db = fx.db.read().unwrap();
        let updated = db
            .table("role")
            .unwrap()
            .rows()
            .iter()
            .filter(|r| r[3] != Value::Int(0))
            .count();
        assert!(updated > 0, "r_size written");
    }

    #[test]
    fn pattern_e_aggregates_per_key() {
        let fx = build_fixture(2_000, 2);
        let r = run_on(
            &fx,
            NetworkProfile::fast_local(),
            &representative(Pattern::E),
        )
        .unwrap();
        let interp::Snapshot::List(items) = r.outcome.var_snapshot("result") else {
            panic!()
        };
        assert_eq!(items.len(), PROCESS_ROOTS as usize);
    }
}
