//! The motivating example (§II, Figure 3) and program M0 (Figure 7).
//!
//! Schema sizing follows the TPC-DS specification the paper references:
//! `customer` rows are ≈132 B and `orders` rows ≈100 B (declared column
//! widths, so `S_row` is exact in both the simulator and the cost model).

use crate::harness::Fixture;
use crate::rng::StdRng;
use imperative::ast::{Expr, Function, Program, QuerySpec, Stmt, StmtKind};
use minidb::{Column, DataType, Database, FuncRegistry, Schema, Value};
use orm::{EntityMapping, MappingRegistry};

use std::sync::Arc;

/// Columns of `orders` (~100 B/row).
fn orders_schema() -> Schema {
    Schema::new(vec![
        Column::new("o_id", DataType::Int),
        Column::new("o_customer_sk", DataType::Int),
        Column::new("o_date", DataType::Int),
        Column::new("o_amount", DataType::Float),
        Column::with_width("o_status", DataType::Str, 10),
        Column::with_width("o_comment", DataType::Str, 58),
    ])
}

/// Columns of `customer` (~132 B/row, TPC-DS customer-like).
fn customer_schema() -> Schema {
    Schema::new(vec![
        Column::new("c_customer_sk", DataType::Int),
        Column::new("c_birth_year", DataType::Int),
        Column::with_width("c_first_name", DataType::Str, 20),
        Column::with_width("c_last_name", DataType::Str, 30),
        Column::with_width("c_email_address", DataType::Str, 50),
        Column::with_width("c_birth_country", DataType::Str, 16),
    ])
}

/// Build the orders/customer database with `n_orders` and `n_customers`
/// rows (deterministic in `seed`), plus mappings and `myFunc`.
pub fn build_fixture(n_orders: usize, n_customers: usize, seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();

    let t = db.create_table("customer", customer_schema()).unwrap();
    t.set_primary_key("c_customer_sk").unwrap();
    let rows = (0..n_customers).map(|i| {
        vec![
            Value::Int(i as i64),
            Value::Int(1930 + (i % 70) as i64),
            Value::str(format!("First{}", i % 1000)),
            Value::str(format!("Last{}", i % 5000)),
            Value::str(format!("user{i}@example.com")),
            Value::str("Wonderland"),
        ]
    });
    t.insert_many(rows).unwrap();

    let t = db.create_table("orders", orders_schema()).unwrap();
    t.set_primary_key("o_id").unwrap();
    let n_cust = n_customers.max(1) as i64;
    let rows = (0..n_orders).map(|i| {
        let cust = rng.gen_range(0..n_cust);
        vec![
            Value::Int(i as i64),
            Value::Int(cust),
            Value::Int(2_450_000 + (i % 365) as i64),
            Value::Float((i % 997) as f64 * 1.37),
            Value::str(if i % 5 == 0 { "open" } else { "done" }),
            Value::str(format!("order comment {}", i % 100)),
        ]
    });
    t.insert_many(rows).unwrap();
    db.analyze_all();

    let mut mapping = MappingRegistry::new();
    mapping.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
        "customer",
        "Customer",
        "o_customer_sk",
    ));
    mapping.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));

    let mut funcs = FuncRegistry::with_builtins();
    funcs.register("myFunc", DataType::Int, |args| {
        let a = args.first().and_then(|v| v.as_i64()).unwrap_or(0);
        let b = args.get(1).and_then(|v| v.as_i64()).unwrap_or(0);
        Ok(Value::Int(a * 10_000 + b))
    });

    Fixture {
        db: minidb::shared(db),
        mapping,
        funcs: Arc::new(funcs),
    }
}

/// P0 (Figure 3a): ORM navigation inside the loop — the N+1 pattern.
pub fn p0() -> Program {
    let mut f = Function::new(
        "processOrders",
        vec!["result".to_string()],
        vec![
            Stmt::new(StmtKind::NewCollection("result".into())),
            Stmt::new(StmtKind::ForEach {
                var: "o".into(),
                iter: Expr::LoadAll("Order".into()),
                body: vec![
                    Stmt::new(StmtKind::Let(
                        "cust".into(),
                        Expr::nav(Expr::var("o"), "customer"),
                    )),
                    Stmt::new(StmtKind::Let(
                        "val".into(),
                        Expr::Call(
                            "myFunc".into(),
                            vec![
                                Expr::field(Expr::var("o"), "o_id"),
                                Expr::field(Expr::var("cust"), "c_birth_year"),
                            ],
                        ),
                    )),
                    Stmt::new(StmtKind::Add("result".into(), Expr::var("val"))),
                ],
            }),
        ],
    );
    f.number_lines(2);
    Program::single(f)
}

/// P1 (Figure 3b): one join query; processing stays in the loop.
pub fn p1() -> Program {
    let mut f = Function::new(
        "processOrders",
        vec!["result".to_string()],
        vec![
            Stmt::new(StmtKind::NewCollection("result".into())),
            Stmt::new(StmtKind::Let(
                "joinRes".into(),
                Expr::Query(QuerySpec::sql(
                    "select * from orders o join customer c \
                     on o.o_customer_sk = c.c_customer_sk",
                )),
            )),
            Stmt::new(StmtKind::ForEach {
                var: "r".into(),
                iter: Expr::var("joinRes"),
                body: vec![
                    Stmt::new(StmtKind::Let(
                        "val".into(),
                        Expr::Call(
                            "myFunc".into(),
                            vec![
                                Expr::field(Expr::var("r"), "o_id"),
                                Expr::field(Expr::var("r"), "c_birth_year"),
                            ],
                        ),
                    )),
                    Stmt::new(StmtKind::Add("result".into(), Expr::var("val"))),
                ],
            }),
        ],
    );
    f.number_lines(2);
    Program::single(f)
}

/// P2 (Figure 3c): prefetch customers, join locally through the cache.
pub fn p2() -> Program {
    let mut f = Function::new(
        "processOrders",
        vec!["result".to_string()],
        vec![
            Stmt::new(StmtKind::NewCollection("result".into())),
            Stmt::new(StmtKind::CacheByColumn {
                cache: "cache_customer_by_c_customer_sk".into(),
                source: Expr::LoadAll("Customer".into()),
                key_col: "c_customer_sk".into(),
            }),
            Stmt::new(StmtKind::ForEach {
                var: "o".into(),
                iter: Expr::LoadAll("Order".into()),
                body: vec![
                    Stmt::new(StmtKind::Let(
                        "cust".into(),
                        Expr::LookupCache(
                            "cache_customer_by_c_customer_sk".into(),
                            Box::new(Expr::field(Expr::var("o"), "o_customer_sk")),
                        ),
                    )),
                    Stmt::new(StmtKind::Let(
                        "val".into(),
                        Expr::Call(
                            "myFunc".into(),
                            vec![
                                Expr::field(Expr::var("o"), "o_id"),
                                Expr::field(Expr::var("cust"), "c_birth_year"),
                            ],
                        ),
                    )),
                    Stmt::new(StmtKind::Add("result".into(), Expr::var("val"))),
                ],
            }),
        ],
    );
    f.number_lines(2);
    Program::single(f)
}

/// Program M0 (Figure 7): sum and cumulative sums in one loop — the
/// dependent-aggregation example motivating the tuple/project extension.
/// (The `sales` role is played by `orders`: month ← `o_date`, amount ←
/// `o_amount`.)
pub fn m0() -> Program {
    let mut f = Function::new(
        "mySum",
        vec![],
        vec![
            Stmt::new(StmtKind::Let("sum".into(), Expr::lit(0.0f64))),
            Stmt::new(StmtKind::NewMap("cSum".into())),
            Stmt::new(StmtKind::ForEach {
                var: "t".into(),
                iter: Expr::Query(QuerySpec::sql(
                    "select o_date, o_amount from orders order by o_date",
                )),
                body: vec![
                    Stmt::new(StmtKind::Let(
                        "sum".into(),
                        Expr::bin(
                            minidb::BinOp::Add,
                            Expr::var("sum"),
                            Expr::field(Expr::var("t"), "o_amount"),
                        ),
                    )),
                    Stmt::new(StmtKind::Put(
                        "cSum".into(),
                        Expr::field(Expr::var("t"), "o_date"),
                        Expr::var("sum"),
                    )),
                ],
            }),
            Stmt::new(StmtKind::Print(Expr::var("sum"))),
            Stmt::new(StmtKind::Print(Expr::Len(Box::new(Expr::var("cSum"))))),
        ],
    );
    f.number_lines(2);
    Program::single(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_on;
    use netsim::NetworkProfile;

    #[test]
    fn fixture_has_tpcds_like_row_sizes() {
        let fx = build_fixture(10, 5, 1);
        let db = fx.db.read().unwrap();
        assert_eq!(db.table("customer").unwrap().schema().row_bytes(), 132);
        assert_eq!(db.table("orders").unwrap().schema().row_bytes(), 100);
    }

    #[test]
    fn datagen_is_deterministic() {
        let a = build_fixture(50, 10, 42);
        let b = build_fixture(50, 10, 42);
        assert_eq!(
            a.db.read().unwrap().table("orders").unwrap().rows(),
            b.db.read().unwrap().table("orders").unwrap().rows()
        );
    }

    #[test]
    fn p0_p1_p2_are_semantically_equivalent() {
        let fx = build_fixture(200, 40, 3);
        let net = NetworkProfile::fast_local();
        let r0 = run_on(&fx, net.clone(), &p0()).unwrap();
        let r1 = run_on(&fx, net.clone(), &p1()).unwrap();
        let r2 = run_on(&fx, net, &p2()).unwrap();
        let s0 = r0.outcome.var_snapshot("result").normalized();
        let s1 = r1.outcome.var_snapshot("result").normalized();
        let s2 = r2.outcome.var_snapshot("result").normalized();
        assert_eq!(s0, s1);
        assert_eq!(s0, s2);
    }

    #[test]
    fn p0_suffers_n_plus_one() {
        let fx = build_fixture(200, 40, 3);
        let net = NetworkProfile::fast_local();
        let r0 = run_on(&fx, net.clone(), &p0()).unwrap();
        let r1 = run_on(&fx, net, &p1()).unwrap();
        assert_eq!(r1.outcome.round_trips, 1);
        assert!(
            r0.outcome.round_trips > 30,
            "N+1: {}",
            r0.outcome.round_trips
        );
    }

    #[test]
    fn m0_computes_dependent_aggregates() {
        let fx = build_fixture(100, 10, 5);
        let r = run_on(&fx, NetworkProfile::fast_local(), &m0()).unwrap();
        assert_eq!(r.outcome.prints.len(), 2);
    }
}
