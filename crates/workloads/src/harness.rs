//! Shared experiment harness: fixtures, sessions and program execution.

use imperative::ast::Program;
use interp::{Interp, InterpConfig, Outcome};
use minidb::{DbResult, ExecEngine, FuncRegistry};
use netsim::{Clock, NetworkProfile};
use orm::{MappingRegistry, RemoteDb, Session};

use std::sync::Arc;

/// A database + mappings + function registry, ready to run programs.
#[derive(Clone)]
pub struct Fixture {
    /// The shared database.
    pub db: minidb::SharedDb,
    /// ORM mappings for the schema.
    pub mapping: MappingRegistry,
    /// Pure functions the programs call (`myFunc`, …).
    pub funcs: Arc<FuncRegistry>,
}

/// Outcome of running one program on one network profile.
pub struct RunResult {
    /// Interpreter outcome (results, prints, statement counts).
    pub outcome: Outcome,
    /// Simulated wall-clock seconds.
    pub secs: f64,
}

impl Fixture {
    /// Start a [`cobra_core::CobraBuilder`] pre-wired with this fixture's
    /// database, mappings and functions — configure network, catalog,
    /// rules and budget, then `build()`:
    ///
    /// ```
    /// use netsim::NetworkProfile;
    /// use workloads::motivating;
    ///
    /// let fixture = motivating::build_fixture(100, 20, 7);
    /// let cobra = fixture
    ///     .cobra_builder()
    ///     .network(NetworkProfile::slow_remote())
    ///     .build();
    /// assert!(cobra.rules().is_enabled("N1"));
    /// ```
    pub fn cobra_builder(&self) -> cobra_core::CobraBuilder {
        cobra_core::Cobra::builder(self.db.clone())
            .mappings(self.mapping.clone())
            .funcs(self.funcs.clone())
    }

    /// This fixture over a *different* shared database handle — same
    /// mappings and functions, the handle adopted as is (no re-wrapping
    /// into a fresh `Arc<RwLock<_>>`). Sessions and optimizers built from
    /// the result share `db` with everything else holding that handle,
    /// which is what a server needs: N sessions against one database.
    pub fn with_db(&self, db: minidb::SharedDb) -> Fixture {
        Fixture {
            db,
            mapping: self.mapping.clone(),
            funcs: self.funcs.clone(),
        }
    }

    /// An independent tenant copy: the database is deep-copied (minting a
    /// fresh `Database::instance_id`, so cached estimates and plans for
    /// this fixture can never be served for the original — the
    /// `CacheStamp` machinery keys on the instance id), while mappings
    /// and functions stay shared. Two tenants with identical schemas and
    /// data are still distinct cache tenants.
    pub fn fork_db(&self) -> Fixture {
        let copy = self.db.read().unwrap().clone();
        self.with_db(minidb::shared(copy))
    }

    /// Open a fresh session over `net` with its own virtual clock.
    pub fn session(&self, net: NetworkProfile) -> (Session, Arc<Clock>) {
        self.session_on(net, ExecEngine::default())
    }

    /// [`Fixture::session`], pinned to a specific execution engine —
    /// the differential suite runs the same programs on
    /// [`ExecEngine::Columnar`] and [`ExecEngine::Row`] and compares.
    pub fn session_on(&self, net: NetworkProfile, engine: ExecEngine) -> (Session, Arc<Clock>) {
        let clock = Arc::new(Clock::new());
        let remote = Arc::new(
            RemoteDb::new(self.db.clone(), self.funcs.clone(), net, clock.clone())
                .with_engine(engine),
        );
        (Session::new(remote, Arc::new(self.mapping.clone())), clock)
    }

    /// [`Fixture::session`], with every executed query recording its
    /// observed cardinality into `feedback` (the runtime half of the
    /// cardinality feedback loop — pair it with
    /// `CobraBuilder::feedback`).
    pub fn session_with_feedback(
        &self,
        net: NetworkProfile,
        feedback: Arc<minidb::FeedbackStore>,
    ) -> (Session, Arc<Clock>) {
        let clock = Arc::new(Clock::new());
        let remote = Arc::new(
            RemoteDb::new(self.db.clone(), self.funcs.clone(), net, clock.clone())
                .with_feedback(feedback),
        );
        (Session::new(remote, Arc::new(self.mapping.clone())), clock)
    }
}

/// Execute `program` against `fixture` over `net` and report results plus
/// simulated time. Each run uses a fresh session and clock (a fresh
/// transaction, as in the paper's per-run measurements).
pub fn run_on(fixture: &Fixture, net: NetworkProfile, program: &Program) -> DbResult<RunResult> {
    let (session, _clock) = fixture.session(net);
    run_in(&session, program)
}

/// [`run_on`], pinned to a specific execution engine. The columnar and
/// row engines must produce bit-identical outcomes; this is the hook the
/// differential suite uses to check that.
pub fn run_on_engine(
    fixture: &Fixture,
    net: NetworkProfile,
    engine: ExecEngine,
    program: &Program,
) -> DbResult<RunResult> {
    let (session, _clock) = fixture.session_on(net, engine);
    run_in(&session, program)
}

/// [`run_on`], additionally recording every executed query's observed
/// cardinality and work into `feedback` — one execution populates the
/// observations that feedback-aware estimation
/// (`Estimator::with_feedback`, `CobraBuilder::feedback`) then prefers.
pub fn run_on_with_feedback(
    fixture: &Fixture,
    net: NetworkProfile,
    program: &Program,
    feedback: Arc<minidb::FeedbackStore>,
) -> DbResult<RunResult> {
    let (session, _clock) = fixture.session_with_feedback(net, feedback);
    run_in(&session, program)
}

fn run_in(session: &Session, program: &Program) -> DbResult<RunResult> {
    let outcome = Interp::new(session, program)
        .with_config(InterpConfig::default())
        .run(vec![])?;
    let secs = netsim::ns_to_secs(outcome.elapsed_ns);
    Ok(RunResult { outcome, secs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motivating;

    #[test]
    fn run_on_reports_time_and_results() {
        let fixture = motivating::build_fixture(100, 20, 7);
        let p0 = motivating::p0();
        let r = run_on(&fixture, NetworkProfile::fast_local(), &p0).unwrap();
        assert!(r.secs > 0.0);
        assert!(r.outcome.round_trips >= 1);
    }
}
