//! Seeded random program generation for the differential-execution oracle.
//!
//! Every case is reproducible from a single `u64` seed: the seed drives a
//! [`StdRng`] that first draws a **schema** (2–5 tables with foreign-key
//! chains, varied row counts and row widths), then a **well-typed
//! program** over that schema composing the shapes COBRA's rules target —
//! loops over query results, ORM association navigation (the N+1
//! pattern), correlated inner queries and scalar aggregates, scalar
//! `funcs` calls, conditionals, accumulators, result-list appends, client
//! caches, database updates (pattern A blockers) — plus the fixture data
//! itself.
//!
//! ```
//! use workloads::genprog::{GenCase, GenConfig};
//!
//! let case = GenCase::from_seed(7, &GenConfig::default());
//! let again = GenCase::from_seed(7, &GenConfig::default());
//! assert_eq!(case.pretty(), again.pretty()); // fully seed-determined
//! ```
//!
//! Generated programs are *sound by construction*: expression generation
//! tracks a typed scope (integer variables vs row variables and their
//! tables), navigations only follow declared foreign keys, cache lookups
//! only probe caches keyed by a primary key the looked-up value is a
//! foreign key into, and NULLs (e.g. `sum` over an empty correlated set)
//! only flow through NULL-safe operators. Running the *original* program
//! must always succeed; only optimizer bugs can make the rewritten one
//! fail.

use crate::harness::Fixture;
use crate::rng::StdRng;
use imperative::ast::{Expr, Function, Program, QuerySpec, Stmt, StmtKind};
use imperative::pretty;
use minidb::{BinOp, Column, DataType, Database, FuncRegistry, Schema, Value};
use orm::{EntityMapping, MappingRegistry};

use std::sync::Arc;

/// Size knobs for generated schemas and programs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Minimum number of tables per schema (≥ 2 so navigation exists).
    pub min_tables: usize,
    /// Maximum number of tables per schema.
    pub max_tables: usize,
    /// Minimum rows per table (the historical corpus draws from 4).
    pub min_rows: usize,
    /// Maximum rows per table (each table draws its own count).
    pub max_rows: usize,
    /// Maximum *extra* top-level statements beyond the fixed skeleton
    /// (one loop is always generated).
    pub max_top_stmts: usize,
    /// Maximum statements per loop body.
    pub max_body_stmts: usize,
    /// Maximum loop-nesting depth below a top-level loop.
    pub max_depth: usize,
    /// Data-skew exponent. `None` draws every data column uniformly (the
    /// historical corpus, byte-identical). `Some(s)` draws values as
    /// `⌊range·uˢ⌋` for uniform `u` — a power-law-ish pile-up near zero
    /// (column values *and* foreign keys, so join fan-outs are skewed
    /// too). Skewed data is where uniform-NDV estimation misranks plans
    /// and histograms + runtime feedback earn their keep.
    pub skew: Option<f64>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            min_tables: 2,
            max_tables: 5,
            min_rows: 4,
            max_rows: 48,
            max_top_stmts: 4,
            max_body_stmts: 4,
            max_depth: 2,
            skew: None,
        }
    }
}

impl GenConfig {
    /// The skewed-corpus preset: larger tables (so selectivity errors
    /// actually move costs) with heavily skewed data columns and foreign
    /// keys. Used by the cost-model-fidelity suite and the `opt_bench`
    /// estimation-error metric.
    pub fn skewed() -> GenConfig {
        GenConfig {
            max_rows: 320,
            skew: Some(2.5),
            ..GenConfig::default()
        }
    }

    /// The execution-throughput preset: 1M+ rows per table across a
    /// small schema, so scan/filter/join throughput is memory-bandwidth
    /// bound rather than dispatch bound. Skewed like [`GenConfig::skewed`]
    /// so joins have realistic fan-out. Used by `opt_bench`'s
    /// executions/sec section; far too large for the differential corpus.
    pub fn large() -> GenConfig {
        GenConfig {
            min_tables: 2,
            max_tables: 3,
            min_rows: 1_000_000,
            max_rows: 1_250_000,
            skew: Some(2.5),
            ..GenConfig::default()
        }
    }
}

/// One generated table: a primary key, two integer data columns, a string
/// padding column (varying the row width the cost model sees), and an
/// optional foreign key into an earlier table.
#[derive(Debug, Clone)]
pub struct GenTable {
    /// Table name (`t0`, `t1`, …).
    pub name: String,
    /// Mapped ORM entity name (`E0`, `E1`, …).
    pub entity: String,
    /// Base row count (before any [`GenCase::row_scale`] shrinking).
    pub rows: usize,
    /// Declared width of the string padding column.
    pub str_width: u32,
    /// Index of the foreign-key parent table, when present.
    pub parent: Option<usize>,
}

impl GenTable {
    /// Primary-key column name.
    pub fn pk(&self) -> String {
        format!("{}_id", self.name)
    }
    /// Foreign-key column name (only meaningful when `parent` is set).
    pub fn fk(&self) -> String {
        format!("{}_fk", self.name)
    }
    /// First integer data column (values 0..100).
    pub fn col_a(&self) -> String {
        format!("{}_a", self.name)
    }
    /// Second integer data column (values 0..50).
    pub fn col_b(&self) -> String {
        format!("{}_b", self.name)
    }
    /// String padding column.
    pub fn col_s(&self) -> String {
        format!("{}_s", self.name)
    }
}

/// A randomly drawn relational schema with FK relationships.
#[derive(Debug, Clone)]
pub struct GenSchema {
    /// The tables; a table's `parent` always has a smaller index.
    pub tables: Vec<GenTable>,
    /// Data-skew exponent the fixture builder applies (from
    /// [`GenConfig::skew`]).
    pub skew: Option<f64>,
}

impl GenSchema {
    /// Draw a schema: `min_tables..=max_tables` tables, table 1 always
    /// FK-linked to table 0 (so navigation shapes always exist), later
    /// tables FK-linked to a random earlier table with high probability.
    pub fn generate(rng: &mut StdRng, cfg: &GenConfig) -> GenSchema {
        let n = rng.gen_range(cfg.min_tables..cfg.max_tables + 1);
        let mut tables = Vec::with_capacity(n);
        for i in 0..n {
            let parent = if i == 1 {
                Some(0)
            } else if i >= 2 && rng.chance(75) {
                Some(rng.gen_range(0..i))
            } else {
                None
            };
            tables.push(GenTable {
                name: format!("t{i}"),
                entity: format!("E{i}"),
                rows: rng.gen_range(cfg.min_rows..cfg.max_rows.max(cfg.min_rows + 1)),
                str_width: rng.gen_range(4..40u32),
                parent,
            });
        }
        GenSchema {
            tables,
            skew: cfg.skew,
        }
    }

    /// Indices of tables whose FK parent is `t`.
    pub fn children_of(&self, t: usize) -> Vec<usize> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, tab)| tab.parent == Some(t))
            .map(|(i, _)| i)
            .collect()
    }

    /// Build a fresh fixture (database + mappings + functions) for this
    /// schema, deterministic in `data_seed`. `row_scale` multiplies every
    /// table's row count (floor 1) — the minimizer shrinks with values
    /// below 1.0, and benchmarks may scale *up* with values above it (the
    /// `f64 → usize` cast saturates, so huge products stay well-defined).
    /// Each call returns an *independent* database, so runs that issue
    /// `update` statements cannot contaminate each other.
    pub fn build_fixture(&self, data_seed: u64, row_scale: f64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(data_seed);
        let mut db = Database::new();
        let mut mapping = MappingRegistry::new();
        let scaled: Vec<usize> = self
            .tables
            .iter()
            .map(|t| (((t.rows as f64) * row_scale) as usize).max(1))
            .collect();
        // Rows each table *actually* holds after insertion. FK draws are
        // bounded by this, not by the requested `scaled` target, so child
        // rows can never reference a parent key that was not materialized
        // — however aggressively `row_scale` shrinks each table. (Parents
        // always precede children, so the count is known in time.)
        let mut inserted: Vec<usize> = Vec::with_capacity(self.tables.len());
        for (i, t) in self.tables.iter().enumerate() {
            let mut cols = vec![Column::new(t.pk(), DataType::Int)];
            if t.parent.is_some() {
                cols.push(Column::new(t.fk(), DataType::Int));
            }
            cols.push(Column::new(t.col_a(), DataType::Int));
            cols.push(Column::new(t.col_b(), DataType::Int));
            cols.push(Column::with_width(t.col_s(), DataType::Str, t.str_width));
            let table = db.create_table(&t.name, Schema::new(cols)).unwrap();
            table.set_primary_key(&t.pk()).unwrap();
            let parent_rows = t.parent.map(|p| inserted[p] as i64).unwrap_or(1);
            let skew = self.skew;
            let rows = (0..scaled[i]).map(|r| {
                let mut row = vec![Value::Int(r as i64)];
                if t.parent.is_some() {
                    row.push(Value::Int(draw_value(&mut rng, parent_rows, skew)));
                }
                row.push(Value::Int(draw_value(&mut rng, 100, skew)));
                row.push(Value::Int(draw_value(&mut rng, 50, skew)));
                row.push(Value::str(format!("{}-{}", t.name, r % 7)));
                row
            });
            table.insert_many(rows).unwrap();
            inserted.push(table.row_count());

            let mut m = EntityMapping::new(&t.entity, &t.name, t.pk());
            if let Some(p) = t.parent {
                m = m.many_to_one("parent", &self.tables[p].entity, t.fk());
            }
            mapping.register(m);
        }
        db.analyze_all();

        let mut funcs = FuncRegistry::with_builtins();
        funcs.register("combine", DataType::Int, |args| {
            let a = args.first().and_then(|v| v.as_i64());
            let b = args.get(1).and_then(|v| v.as_i64());
            Ok(match (a, b) {
                (Some(a), Some(b)) => Value::Int(a.wrapping_mul(3).wrapping_add(b)),
                _ => Value::Null,
            })
        });
        funcs.register("scale10", DataType::Int, |args| {
            Ok(match args.first().and_then(|v| v.as_i64()) {
                Some(a) => Value::Int(a.wrapping_mul(10)),
                None => Value::Null,
            })
        });

        Fixture {
            db: minidb::shared(db),
            mapping,
            funcs: Arc::new(funcs),
        }
    }
}

/// A generated differential-testing case: schema + program, reproducible
/// from `seed` alone.
#[derive(Debug, Clone)]
pub struct GenCase {
    /// The generating seed — printing it is a complete repro recipe.
    pub seed: u64,
    /// The drawn schema.
    pub schema: GenSchema,
    /// The drawn program (entry function `gen`, out-parameter `result`).
    pub program: Program,
    /// Data-size multiplier applied by [`GenCase::fixture`] (1.0 as
    /// generated; the minimizer lowers it while a failure reproduces).
    pub row_scale: f64,
}

impl GenCase {
    /// Generate the case for `seed` under `cfg`. Deterministic: equal
    /// seeds and configs yield structurally identical cases.
    pub fn from_seed(seed: u64, cfg: &GenConfig) -> GenCase {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = GenSchema::generate(&mut rng, cfg);
        let mut gen = ProgramGen {
            rng: &mut rng,
            schema: &schema,
            cfg,
            fresh: 0,
        };
        let program = Program::single(gen.function());
        GenCase {
            seed,
            schema,
            program,
            row_scale: 1.0,
        }
    }

    /// A fresh, independent fixture for one run (data deterministic in the
    /// seed; rebuilt per run so `update` statements cannot leak between
    /// the original and the optimized execution).
    pub fn fixture(&self) -> Fixture {
        self.schema
            .build_fixture(self.seed.wrapping_mul(0x9E3779B97F4A7C15), self.row_scale)
    }

    /// This case with a replacement program (used by the minimizer).
    pub fn with_program(&self, program: Program) -> GenCase {
        GenCase {
            program,
            ..self.clone()
        }
    }

    /// This case with a different data scale (used by the minimizer).
    pub fn with_row_scale(&self, row_scale: f64) -> GenCase {
        GenCase {
            row_scale,
            ..self.clone()
        }
    }

    /// The variables the oracle observes: the entry function's
    /// out-parameters.
    pub fn observed_vars(&self) -> Vec<String> {
        self.program.entry().params.clone()
    }

    /// Pretty-printed program text (paper-style pseudo-code).
    pub fn pretty(&self) -> String {
        pretty::program_to_string(&self.program)
    }
}

/// Typed generation scope: which variables hold integers and which hold
/// row objects (and of which table). Child blocks clone it, so variables
/// introduced under a conditional or loop never leak into code that may
/// execute without them being bound.
#[derive(Clone, Default)]
struct Scope {
    ints: Vec<String>,
    rows: Vec<(String, usize)>,
}

struct ProgramGen<'a> {
    rng: &'a mut StdRng,
    schema: &'a GenSchema,
    cfg: &'a GenConfig,
    fresh: u32,
}

impl<'a> ProgramGen<'a> {
    fn fresh(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    fn function(&mut self) -> Function {
        let mut scope = Scope::default();
        let mut body = vec![
            Stmt::new(StmtKind::NewCollection("result".into())),
            // A wide-range literal: distinguishes seeds and makes broken
            // accumulator initialization observable.
            Stmt::new(StmtKind::Let(
                "total".into(),
                Expr::lit(self.rng.gen_range(0..1_000_000_000i64)),
            )),
        ];
        scope.ints.push("total".into());
        body.push(self.gen_loop(&scope, 0));
        let extra = self.rng.gen_range(0..self.cfg.max_top_stmts + 1);
        for _ in 0..extra {
            body.extend(self.gen_top_stmt(&mut scope));
        }
        body.push(Stmt::new(StmtKind::Add(
            "result".into(),
            Expr::var("total"),
        )));
        if self.rng.chance(60) {
            body.push(Stmt::new(StmtKind::Print(Expr::var("total"))));
        }
        if self.rng.chance(30) {
            body.push(Stmt::new(StmtKind::Print(Expr::Len(Box::new(Expr::var(
                "result",
            ))))));
        }
        let mut f = Function::new("gen", vec!["result".to_string()], body);
        f.number_lines(2);
        f
    }

    /// One top-level statement (possibly a multi-statement unit like a
    /// prefetch cache plus the loop probing it).
    fn gen_top_stmt(&mut self, scope: &mut Scope) -> Vec<Stmt> {
        let navigable: Vec<usize> = (0..self.schema.tables.len())
            .filter(|&i| self.schema.tables[i].parent.is_some())
            .collect();
        loop {
            let roll = self.rng.gen_range(0..100u32);
            return match roll {
                0..=39 => vec![self.gen_loop(scope, 0)],
                40..=54 => vec![self.gen_if(scope)],
                55..=69 => vec![self.total_update(scope)],
                70..=79 => self.gen_while(scope),
                80..=87 => vec![self.gen_update_query()],
                _ => {
                    if navigable.is_empty() {
                        continue; // reroll: no FK pair to prefetch over
                    }
                    let child = *self.rng.pick(&navigable);
                    self.gen_cache_unit(child)
                }
            };
        }
    }

    /// `for (v : <source>) { … }` over a random table.
    fn gen_loop(&mut self, scope: &Scope, depth: usize) -> Stmt {
        let t = self.rng.gen_range(0..self.schema.tables.len());
        let table = &self.schema.tables[t];
        let iter = match self.rng.gen_range(0..10u32) {
            0..=3 => Expr::LoadAll(table.entity.clone()),
            4..=6 => Expr::Query(QuerySpec::sql(&format!("select * from {}", table.name))),
            7..=8 => Expr::Query(QuerySpec::sql(&format!(
                "select * from {} where {} < {}",
                table.name,
                table.col_a(),
                self.rng.gen_range(10..90i64)
            ))),
            _ => Expr::Query(QuerySpec::sql(&format!(
                "select * from {} where {} < {} order by {}",
                table.name,
                table.col_a(),
                self.rng.gen_range(10..90i64),
                table.pk()
            ))),
        };
        let var = self.fresh("v");
        let mut inner = scope.clone();
        inner.rows.push((var.clone(), t));
        let n = self.rng.gen_range(1..self.cfg.max_body_stmts + 1);
        let mut body = Vec::new();
        for _ in 0..n {
            body.extend(self.gen_body_stmt(&mut inner, t, &var, depth));
        }
        if !writes_observable(&body) {
            // Keep the loop live: fold-based rewriting only considers
            // loops with live outputs, and dead loops teach the oracle
            // nothing.
            body.push(Stmt::new(StmtKind::Let(
                "total".into(),
                Expr::bin(
                    BinOp::Add,
                    Expr::var("total"),
                    Expr::field(Expr::var(&var), table.col_a()),
                ),
            )));
        }
        Stmt::new(StmtKind::ForEach { var, iter, body })
    }

    /// One loop-body statement (may expand to a short sequence).
    fn gen_body_stmt(&mut self, scope: &mut Scope, t: usize, var: &str, depth: usize) -> Vec<Stmt> {
        let table = &self.schema.tables[t];
        let children = self.schema.children_of(t);
        loop {
            let roll = self.rng.gen_range(0..100u32);
            match roll {
                // x = v.<int column>
                0..=17 => {
                    let x = self.fresh("x");
                    let col = self.pick_int_col(t);
                    let read =
                        Stmt::new(StmtKind::Let(x.clone(), Expr::field(Expr::var(var), col)));
                    scope.ints.push(x);
                    return vec![read];
                }
                // p = v.parent; z = p.<col>   (the N+1 shape)
                18..=29 if table.parent.is_some() => {
                    let parent = table.parent.unwrap();
                    let p = self.fresh("p");
                    let z = self.fresh("z");
                    let nav = Stmt::new(StmtKind::Let(
                        p.clone(),
                        Expr::nav(Expr::var(var), "parent"),
                    ));
                    let col = self.pick_int_col(parent);
                    let read = Stmt::new(StmtKind::Let(z.clone(), Expr::field(Expr::var(&p), col)));
                    scope.rows.push((p, parent));
                    scope.ints.push(z);
                    return vec![nav, read];
                }
                // y = combine(e1, e2) / scale10(e)
                30..=39 => {
                    let y = self.fresh("y");
                    let call = if self.rng.gen_bool() {
                        Expr::Call(
                            "combine".into(),
                            vec![self.int_expr(scope, 2), self.int_expr(scope, 2)],
                        )
                    } else {
                        Expr::Call("scale10".into(), vec![self.int_expr(scope, 2)])
                    };
                    scope.ints.push(y.clone());
                    return vec![Stmt::new(StmtKind::Let(y, call))];
                }
                // total = total + e
                40..=55 => return vec![self.total_update(scope)],
                // result.add(e)
                56..=69 => {
                    let e = self.int_expr(scope, 2);
                    return vec![Stmt::new(StmtKind::Add("result".into(), e))];
                }
                // if (…) { … } [else { … }]
                70..=77 => return vec![self.gen_if(scope)],
                // nested correlated loop over a child table
                78..=85 if depth < self.cfg.max_depth && !children.is_empty() => {
                    let c = *self.rng.pick(&children);
                    return vec![self.gen_correlated_loop(scope, t, var, c, depth)];
                }
                // s = executeScalar("select sum(..) .. where fk = :k"); total += s
                86..=93 if !children.is_empty() => {
                    let c = *self.rng.pick(&children);
                    let child = &self.schema.tables[c];
                    let s = self.fresh("s");
                    let spec = QuerySpec::sql(&format!(
                        "select sum({}) from {} where {} = :k",
                        child.col_a(),
                        child.name,
                        child.fk()
                    ))
                    .bind("k", Expr::field(Expr::var(var), table.pk()));
                    let q = Stmt::new(StmtKind::Let(s.clone(), Expr::ScalarQuery(spec)));
                    let add = Stmt::new(StmtKind::Let(
                        "total".into(),
                        Expr::bin(BinOp::Add, Expr::var("total"), Expr::var(&s)),
                    ));
                    scope.ints.push(s);
                    return vec![q, add];
                }
                // database write inside the loop (pattern A blocker)
                94..=96 => return vec![self.gen_update_query()],
                // conditional break (unstructured control flow)
                97..=98 => {
                    let cond = self.cmp_expr(scope);
                    return vec![Stmt::new(StmtKind::If {
                        cond,
                        then_branch: vec![Stmt::new(StmtKind::Break)],
                        else_branch: vec![],
                    })];
                }
                _ => continue, // reroll guarded choices that don't apply
            }
        }
    }

    /// `for (w : executeQuery("select * from child where fk = :k")) { … }`
    fn gen_correlated_loop(
        &mut self,
        scope: &Scope,
        t: usize,
        var: &str,
        c: usize,
        depth: usize,
    ) -> Stmt {
        let table = &self.schema.tables[t];
        let child = &self.schema.tables[c];
        let spec = QuerySpec::sql(&format!(
            "select * from {} where {} = :k",
            child.name,
            child.fk()
        ))
        .bind("k", Expr::field(Expr::var(var), table.pk()));
        let w = self.fresh("w");
        let mut inner = scope.clone();
        inner.rows.push((w.clone(), c));
        let mut body = Vec::new();
        let n = self.rng.gen_range(1..3usize);
        for _ in 0..n {
            body.extend(self.gen_body_stmt(&mut inner, c, &w, depth + 1));
        }
        if !writes_observable(&body) {
            body.push(Stmt::new(StmtKind::Let(
                "total".into(),
                Expr::bin(
                    BinOp::Add,
                    Expr::var("total"),
                    Expr::field(Expr::var(&w), child.col_b()),
                ),
            )));
        }
        Stmt::new(StmtKind::ForEach {
            var: w,
            iter: Expr::Query(spec),
            body,
        })
    }

    /// A client-cache prefetch over `child`'s parent plus a loop probing
    /// it (the P2 shape of Figure 3c). The loop body is fixed (lookup +
    /// accumulate), so no generation scope is involved.
    fn gen_cache_unit(&mut self, c: usize) -> Vec<Stmt> {
        let child = self.schema.tables[c].clone();
        let parent_idx = child.parent.unwrap();
        let parent = self.schema.tables[parent_idx].clone();
        let cache = self.fresh("cache");
        let prefetch = Stmt::new(StmtKind::CacheByColumn {
            cache: cache.clone(),
            source: Expr::LoadAll(parent.entity.clone()),
            key_col: parent.pk(),
        });
        let v = self.fresh("v");
        let r = self.fresh("r");
        let lookup = Stmt::new(StmtKind::Let(
            r.clone(),
            Expr::LookupCache(cache, Box::new(Expr::field(Expr::var(&v), child.fk()))),
        ));
        let col = self.pick_int_col(parent_idx);
        let use_it = Stmt::new(StmtKind::Let(
            "total".into(),
            Expr::bin(
                BinOp::Add,
                Expr::var("total"),
                Expr::field(Expr::var(&r), col),
            ),
        ));
        let looped = Stmt::new(StmtKind::ForEach {
            var: v,
            iter: Expr::LoadAll(child.entity.clone()),
            body: vec![lookup, use_it],
        });
        vec![prefetch, looped]
    }

    /// `if (a ⋈ b) { … } [else { … }]` with small branches.
    fn gen_if(&mut self, scope: &Scope) -> Stmt {
        let cond = self.cmp_expr(scope);
        let mut then_scope = scope.clone();
        let then_branch = vec![self.simple_stmt(&mut then_scope)];
        let else_branch = if self.rng.chance(50) {
            let mut else_scope = scope.clone();
            vec![self.simple_stmt(&mut else_scope)]
        } else {
            vec![]
        };
        Stmt::new(StmtKind::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    /// `i = 0; while (i < N) { i = i + 1; total = total + e }` — a counted
    /// loop whose iteration count is unknown to the region analysis.
    fn gen_while(&mut self, scope: &mut Scope) -> Vec<Stmt> {
        let i = self.fresh("i");
        let init = Stmt::new(StmtKind::Let(i.clone(), Expr::lit(0i64)));
        let bound = self.rng.gen_range(2..5i64);
        let step = Stmt::new(StmtKind::Let(
            i.clone(),
            Expr::bin(BinOp::Add, Expr::var(&i), Expr::lit(1i64)),
        ));
        let work = self.total_update(scope);
        let w = Stmt::new(StmtKind::While {
            cond: Expr::bin(BinOp::Lt, Expr::var(&i), Expr::lit(bound)),
            body: vec![step, work],
        });
        scope.ints.push(i);
        vec![init, w]
    }

    /// `update t set b = C where pk = K` on a random table.
    fn gen_update_query(&mut self) -> Stmt {
        let t = self.rng.gen_range(0..self.schema.tables.len());
        let table = &self.schema.tables[t];
        let key = self.rng.gen_range(0..table.rows as i64);
        Stmt::new(StmtKind::UpdateQuery {
            table: table.name.clone(),
            set_col: table.col_b(),
            value: Expr::lit(self.rng.gen_range(0..100i64)),
            key_col: table.pk(),
            key: Expr::lit(key),
        })
    }

    /// `total = total ⊕ e`.
    fn total_update(&mut self, scope: &Scope) -> Stmt {
        let op = *self.rng.pick(&[BinOp::Add, BinOp::Sub]);
        let e = self.int_expr(scope, 2);
        Stmt::new(StmtKind::Let(
            "total".into(),
            Expr::bin(op, Expr::var("total"), e),
        ))
    }

    /// A simple observable statement for conditional branches.
    fn simple_stmt(&mut self, scope: &mut Scope) -> Stmt {
        if self.rng.gen_bool() {
            self.total_update(scope)
        } else {
            let e = self.int_expr(scope, 2);
            Stmt::new(StmtKind::Add("result".into(), e))
        }
    }

    /// An integer-typed (possibly NULL) expression over the scope.
    fn int_expr(&mut self, scope: &Scope, depth: usize) -> Expr {
        let roll = self.rng.gen_range(0..100u32);
        match roll {
            0..=34 => Expr::lit(self.rng.gen_range(0..100i64)),
            35..=59 => {
                let v = self.rng.pick(&scope.ints).clone();
                Expr::var(v)
            }
            60..=79 if !scope.rows.is_empty() => {
                let (v, t) = self.rng.pick(&scope.rows).clone();
                let col = self.pick_int_col(t);
                Expr::field(Expr::var(v), col)
            }
            80..=94 if depth > 0 => {
                let op = *self.rng.pick(&[BinOp::Add, BinOp::Sub, BinOp::Mul]);
                Expr::bin(
                    op,
                    self.int_expr(scope, depth - 1),
                    self.int_expr(scope, depth - 1),
                )
            }
            _ if depth > 0 => Expr::Call("scale10".into(), vec![self.int_expr(scope, depth - 1)]),
            _ => Expr::var(self.rng.pick(&scope.ints).clone()),
        }
    }

    /// A boolean comparison (never NULL-valued operands on both sides of
    /// a `while`; under `if` NULL simply selects the else branch).
    fn cmp_expr(&mut self, scope: &Scope) -> Expr {
        let op = *self
            .rng
            .pick(&[BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq]);
        Expr::bin(op, self.int_expr(scope, 1), self.int_expr(scope, 1))
    }

    /// A random integer column name of table `t`.
    fn pick_int_col(&mut self, t: usize) -> String {
        let table = &self.schema.tables[t];
        let mut cols = vec![table.pk(), table.col_a(), table.col_b()];
        if table.parent.is_some() {
            cols.push(table.fk());
        }
        self.rng.pick(&cols).clone()
    }
}

/// One data value in `[0, bound)`: uniform without skew, `⌊bound·uˢ⌋`
/// with skew exponent `s` (mass piles up near zero; one uniform draw
/// either way, so the unskewed corpus stays byte-identical to the
/// historical one).
fn draw_value(rng: &mut StdRng, bound: i64, skew: Option<f64>) -> i64 {
    let bound = bound.max(1);
    match skew {
        // Same single uniform draw as the historical generator (identical
        // rng consumption keeps the unskewed corpus byte-identical).
        None => rng.gen_range(0..bound),
        Some(s) => {
            let u = (rng.gen_range(0..1_000_000u64) as f64 + 0.5) / 1_000_000.0;
            ((bound as f64 * u.powf(s)) as i64).clamp(0, bound - 1)
        }
    }
}

/// Does any statement in `body` (recursively) write an observable
/// (`total`, `result`, or a print)?
fn writes_observable(body: &[Stmt]) -> bool {
    body.iter().any(|s| match &s.kind {
        StmtKind::Let(v, _) if v == "total" => true,
        StmtKind::Add(c, _) if c == "result" => true,
        StmtKind::Print(_) => true,
        _ => s.children().iter().any(|list| writes_observable(list)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_on;
    use netsim::NetworkProfile;
    use std::collections::HashSet;

    #[test]
    fn cases_are_deterministic_per_seed() {
        let cfg = GenConfig::default();
        for seed in [0u64, 1, 42, 999] {
            let a = GenCase::from_seed(seed, &cfg);
            let b = GenCase::from_seed(seed, &cfg);
            assert_eq!(a.pretty(), b.pretty());
            assert_eq!(
                a.fixture().db.read().unwrap().table("t0").unwrap().rows(),
                b.fixture().db.read().unwrap().table("t0").unwrap().rows()
            );
        }
    }

    #[test]
    fn seeds_produce_distinct_programs() {
        let cfg = GenConfig::default();
        let texts: HashSet<String> = (0..100u64)
            .map(|s| GenCase::from_seed(s, &cfg).pretty())
            .collect();
        assert_eq!(texts.len(), 100, "programs should be pairwise distinct");
    }

    #[test]
    fn generated_programs_run_successfully() {
        let cfg = GenConfig::default();
        for seed in 0..60u64 {
            let case = GenCase::from_seed(seed, &cfg);
            let fixture = case.fixture();
            let r = run_on(&fixture, NetworkProfile::fast_local(), &case.program);
            assert!(
                r.is_ok(),
                "seed {seed} failed: {:?}\n{}",
                r.err(),
                case.pretty()
            );
        }
    }

    #[test]
    fn row_scale_shrinks_data() {
        let case = GenCase::from_seed(5, &GenConfig::default());
        let full = case.fixture();
        let tiny = case.with_row_scale(0.25).fixture();
        let full_rows = full.db.read().unwrap().table("t0").unwrap().rows().len();
        let tiny_rows = tiny.db.read().unwrap().table("t0").unwrap().rows().len();
        assert!(tiny_rows <= full_rows);
        assert!(tiny_rows >= 1);
    }

    /// Every FK value in every child table must reference a primary key
    /// that actually exists in the parent — at full scale and under
    /// aggressive minimizer-style shrinking alike. (FK draws are bounded
    /// by the parent's actually-inserted row count, so this holds by
    /// construction; the test pins the invariant.)
    #[test]
    fn shrunk_fixtures_preserve_fk_validity() {
        use std::collections::HashSet;
        for seed in [1u64, 5, 9, 23, 40] {
            let case = GenCase::from_seed(seed, &GenConfig::default());
            for scale in [1.0, 0.5, 0.1, 0.01] {
                let fixture = case.with_row_scale(scale).fixture();
                let db = fixture.db.read().unwrap();
                for t in &case.schema.tables {
                    let Some(p) = t.parent else { continue };
                    let pks: HashSet<i64> = db
                        .table(&case.schema.tables[p].name)
                        .unwrap()
                        .rows()
                        .iter()
                        .map(|row| row[0].as_i64().unwrap())
                        .collect();
                    for row in db.table(&t.name).unwrap().rows() {
                        let fk = row[1].as_i64().unwrap();
                        assert!(
                            pks.contains(&fk),
                            "seed {seed} scale {scale}: {}.{} = {fk} references \
                             a nonexistent {} key",
                            t.name,
                            t.fk(),
                            case.schema.tables[p].name,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn row_scale_scales_up_too() {
        let case = GenCase::from_seed(5, &GenConfig::default());
        let base = case.schema.tables[0].rows;
        let big = case.with_row_scale(3.0).fixture();
        let big_rows = big.db.read().unwrap().table("t0").unwrap().rows().len();
        assert_eq!(big_rows, ((base as f64) * 3.0) as usize);
    }

    #[test]
    fn min_rows_default_keeps_the_corpus_byte_identical() {
        // `min_rows` landed with the large() preset; the historical draw
        // was `gen_range(4..max_rows.max(5))`, which the default must
        // still reproduce exactly.
        assert_eq!(GenConfig::default().min_rows, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let schema = GenSchema::generate(&mut rng, &GenConfig::default());
        let mut rng2 = StdRng::seed_from_u64(7);
        let n = rng2.gen_range(2..6usize);
        let mut rows = Vec::new();
        for i in 0..n {
            if i == 1 {
                Some(0)
            } else if i >= 2 && rng2.chance(75) {
                Some(rng2.gen_range(0..i))
            } else {
                None
            };
            rows.push(rng2.gen_range(4..48usize));
            rng2.gen_range(4..40u32);
        }
        assert_eq!(
            schema.tables.iter().map(|t| t.rows).collect::<Vec<_>>(),
            rows
        );
    }

    #[test]
    fn large_config_draws_million_row_tables() {
        let mut rng = StdRng::seed_from_u64(1);
        let schema = GenSchema::generate(&mut rng, &GenConfig::large());
        assert!(schema.tables.len() >= 2);
        for t in &schema.tables {
            assert!(t.rows >= 1_000_000, "{} has {} rows", t.name, t.rows);
        }
    }
}
