//! The paper's workloads, reproduced.
//!
//! * [`motivating`] — the §II example: program P0 (Hibernate-style, N+1
//!   selects), P1 (join query), P2 (prefetch + client cache), program M0
//!   (Figure 7, dependent aggregations), and the orders/customer database
//!   with row sizes per the TPC-DS specification.
//! * [`wilos`] — a synthetic stand-in for the Wilos application (§VIII,
//!   Experiment 4): the 32 code fragments of Figure 16 across the six
//!   cost-based patterns A–F of Figure 14, plus the representative
//!   programs and data generator (10:1 many-to-one ratio, 20 %
//!   selectivity) used for Figure 15.
//! * [`genprog`] — the seeded random program generator behind the
//!   differential-execution oracle: randomized schemas (2–5 tables,
//!   foreign keys, varied stats) and well-typed programs composing the
//!   shapes the rules target, every case reproducible from one `u64`
//!   seed.
//! * [`harness`] — shared glue: build sessions over a network profile,
//!   run programs, collect outcomes.

pub mod genprog;
pub mod harness;
pub mod motivating;
pub mod rng;
pub mod wilos;

pub use harness::{run_on, run_on_engine, Fixture, RunResult};
