//! Deterministic PRNG, re-exported from [`netsim::rng`].
//!
//! The generator used to live here; it moved down to `netsim` (the lowest
//! layer of the workspace) so the server's fault-injection harness can use
//! the same seeded stream without depending on the workload generators.
//! This module stays as a re-export so existing `workloads::rng::StdRng`
//! callers keep compiling unchanged.

pub use netsim::rng::{SampleRange, StdRng};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<i64> = (0..10).map(|_| a.gen_range(0..1000i64)).collect();
        let ys: Vec<i64> = (0..10).map(|_| b.gen_range(0..1000i64)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn reexport_is_the_netsim_generator() {
        let mut ours = StdRng::seed_from_u64(7);
        let mut theirs = netsim::StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(ours.gen_range(0..u64::MAX), theirs.gen_range(0..u64::MAX));
        }
    }
}
