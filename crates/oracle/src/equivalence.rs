//! Observational-equivalence checking between two program runs.
//!
//! Built on [`interp::NormalizedOutcome`] (`PartialEq`): two runs are
//! equivalent when their observed variables, return values and printed
//! values agree after normalization. Collections always compare as
//! multisets — the rewrites legitimately reorder them (a join enumerates
//! rows in a different order than the loop it replaces, P0 → P1) — while
//! the print *sequence* stays order-sensitive.

use interp::{NormalizedOutcome, Snapshot};

/// The first observable difference between two runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// A variable observed by only one side, or with different values.
    Var {
        /// Variable name.
        name: String,
        /// Value on the original side ([`Snapshot::Unit`] when unbound).
        original: Snapshot,
        /// Value on the rewritten side.
        rewritten: Snapshot,
    },
    /// Different return values.
    Ret {
        /// Original return value.
        original: Snapshot,
        /// Rewritten return value.
        rewritten: Snapshot,
    },
    /// Different print counts.
    PrintCount {
        /// Number of prints on the original side.
        original: usize,
        /// Number of prints on the rewritten side.
        rewritten: usize,
    },
    /// Print `index` produced different values.
    Print {
        /// Position in the print sequence.
        index: usize,
        /// Original printed value.
        original: Snapshot,
        /// Rewritten printed value.
        rewritten: Snapshot,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Var {
                name,
                original,
                rewritten,
            } => write!(
                f,
                "variable `{name}`: original = {original}, rewritten = {rewritten}"
            ),
            Divergence::Ret {
                original,
                rewritten,
            } => write!(
                f,
                "return value: original = {original}, rewritten = {rewritten}"
            ),
            Divergence::PrintCount {
                original,
                rewritten,
            } => write!(
                f,
                "print count: original = {original}, rewritten = {rewritten}"
            ),
            Divergence::Print {
                index,
                original,
                rewritten,
            } => write!(
                f,
                "print[{index}]: original = {original}, rewritten = {rewritten}"
            ),
        }
    }
}

/// Compare two normalized outcomes; `Err` carries the first divergence.
///
/// Equality is the `PartialEq` on [`NormalizedOutcome`], except that a
/// variable absent on one side compares as [`Snapshot::Unit`] (the value
/// [`interp::Outcome::var_snapshot`] reports for unbound variables) — so
/// an observed-variable list that spells `Unit` out and one that omits
/// the entry are the same observation, never a panic.
pub fn check_equivalent(
    original: &NormalizedOutcome,
    rewritten: &NormalizedOutcome,
) -> Result<(), Divergence> {
    // Locate the first difference for the report.
    let names: Vec<&String> = {
        let mut n: Vec<&String> = original
            .vars
            .iter()
            .chain(rewritten.vars.iter())
            .map(|(name, _)| name)
            .collect();
        n.sort();
        n.dedup();
        n
    };
    let lookup = |out: &NormalizedOutcome, name: &str| {
        out.vars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.clone())
            .unwrap_or(Snapshot::Unit)
    };
    for name in names {
        let a = lookup(original, name);
        let b = lookup(rewritten, name);
        if a != b {
            return Err(Divergence::Var {
                name: name.clone(),
                original: a,
                rewritten: b,
            });
        }
    }
    if original.ret != rewritten.ret {
        return Err(Divergence::Ret {
            original: original.ret.clone(),
            rewritten: rewritten.ret.clone(),
        });
    }
    if original.prints.len() != rewritten.prints.len() {
        return Err(Divergence::PrintCount {
            original: original.prints.len(),
            rewritten: rewritten.prints.len(),
        });
    }
    for (i, (a, b)) in original.prints.iter().zip(&rewritten.prints).enumerate() {
        if a != b {
            return Err(Divergence::Print {
                index: i,
                original: a.clone(),
                rewritten: b.clone(),
            });
        }
    }
    // Every observation agrees; any residual `PartialEq` difference can
    // only be vars-list shape (explicit Unit vs omitted entry).
    Ok(())
}

/// Panic with a readable diff unless the two outcomes are equivalent.
///
/// # Panics
/// Panics when the outcomes diverge, printing both sides.
pub fn assert_equivalent(original: &NormalizedOutcome, rewritten: &NormalizedOutcome) {
    if let Err(d) = check_equivalent(original, rewritten) {
        panic!(
            "observational equivalence violated: {d}\n--- original ---\n{original}--- rewritten ---\n{rewritten}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::Value;

    fn base() -> NormalizedOutcome {
        NormalizedOutcome {
            vars: vec![("result".into(), Snapshot::List(vec![]))],
            ret: Snapshot::Unit,
            prints: vec![Snapshot::Scalar(Value::Int(1))],
        }
    }

    #[test]
    fn equal_outcomes_pass() {
        assert!(check_equivalent(&base(), &base()).is_ok());
        assert_equivalent(&base(), &base());
    }

    #[test]
    fn explicit_unit_and_omitted_var_are_equivalent() {
        // An unbound variable snapshots as Unit, so spelling it out and
        // omitting it are the same observation (and never a panic).
        let mut with_unit = base();
        with_unit.vars.push(("ghost".into(), Snapshot::Unit));
        assert!(check_equivalent(&base(), &with_unit).is_ok());
        assert!(check_equivalent(&with_unit, &base()).is_ok());
    }

    #[test]
    fn var_divergence_is_located() {
        let mut b = base();
        b.vars[0].1 = Snapshot::List(vec![Snapshot::Scalar(Value::Int(9))]);
        match check_equivalent(&base(), &b) {
            Err(Divergence::Var { name, .. }) => assert_eq!(name, "result"),
            other => panic!("expected var divergence, got {other:?}"),
        }
    }

    #[test]
    fn print_divergence_is_located() {
        let mut b = base();
        b.prints[0] = Snapshot::Scalar(Value::Int(2));
        match check_equivalent(&base(), &b) {
            Err(Divergence::Print { index: 0, .. }) => {}
            other => panic!("expected print divergence, got {other:?}"),
        }
        b.prints.push(Snapshot::Unit);
        assert!(matches!(
            check_equivalent(&base(), &b),
            Err(Divergence::PrintCount { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "observational equivalence violated")]
    fn assert_panics_on_divergence() {
        let mut b = base();
        b.ret = Snapshot::Scalar(Value::Int(7));
        assert_equivalent(&base(), &b);
    }
}
