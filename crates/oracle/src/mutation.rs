//! Intentionally broken transformation rules for mutation smoke testing.
//!
//! The oracle is only trustworthy if it *would* catch a semantics-breaking
//! rewrite. These rules break semantics on purpose — registered into a
//! [`fir::RuleSet`] alongside the standard rules, they derive alternatives
//! that are cheaper than any correct one, so the cost-based search picks
//! them and the differential suite must flag the mismatch and minimize it.

use fir::{FirNode, Rule};

/// A broken rule that truncates every fold's source query to one row
/// (`… limit 1`). The derived alternative does strictly less work than
/// any correct alternative — less transfer, fewer iterations — so
/// whenever a loop is foldable and its source yields more than one row,
/// the optimizer prefers it.
///
/// Two independent nets must catch it:
///
/// * **statically** — the `analysis` crate's pass 2 (effect analysis)
///   rejects every alternative it derives during expansion, because the
///   rewrite truncates a table read with a LIMIT the base does not have
///   and declares no effect delta
///   (`tests/verifier_properties.rs::broken_limit_rule_is_rejected_statically_on_seed_0`);
/// * **dynamically** — with verification off, the differential oracle
///   flags the result mismatch and minimizes it to a seed-keyed repro
///   (`tests/oracle_mutation.rs`, the fallback path).
///
/// **Never** register this outside a test.
pub fn broken_limit_rule() -> Rule {
    Rule::fold_local(
        "Xbug",
        "INTENTIONALLY BROKEN (mutation smoke test): truncate fold sources to one row",
        |arena, fold| {
            let FirNode::Fold {
                func,
                init,
                source,
                loop_var,
                updated,
            } = arena.node(fold).clone()
            else {
                return None;
            };
            let FirNode::Query { plan, binds } = arena.node(source).clone() else {
                return None;
            };
            if matches!(plan.as_plan(), minidb::LogicalPlan::Limit { .. }) {
                return None; // already mutated; don't refire forever
            }
            let new_source = arena.add(FirNode::Query {
                plan: plan.unshare().limit(1).into(),
                binds,
            });
            Some((
                FirNode::Fold {
                    func,
                    init,
                    source: new_source,
                    loop_var,
                    updated,
                },
                "Xbug",
            ))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::RuleSet;

    #[test]
    fn broken_rule_registers_and_toggles() {
        let set = RuleSet::standard().with_rule(broken_limit_rule());
        assert!(set.is_enabled("Xbug"));
        assert_eq!(set.len(), 8);
        let off = set.without("Xbug");
        assert!(!off.is_enabled("Xbug"));
    }
}
