//! The differential-execution oracle.
//!
//! COBRA's contract is that every rewrite it picks is
//! *semantics-preserving* and that its cost model ranks alternatives the
//! way execution does. This crate tests that contract generatively rather
//! than on hand-written fixtures:
//!
//! 1. [`workloads::genprog`] draws a random schema and a well-typed
//!    program from a `u64` seed (every case reproduces from its seed
//!    alone);
//! 2. the [`matrix`] driver optimizes the program under a sweep of
//!    network profiles × [`cobra_core::SearchBudget`]s × [`fir::RuleSet`]s
//!    and executes original and optimized programs on fresh fixtures,
//!    asserting observational equivalence ([`equivalence`]) and recording
//!    predicted vs simulated cost;
//! 3. on any failure, the [`minimizer`] greedily shrinks the program and
//!    its data to a small self-contained [`Repro`];
//! 4. [`mutation`] supplies an intentionally broken rule so the suite can
//!    prove it *would* catch a semantics-breaking rewrite;
//! 5. [`stats::spearman`] quantifies cost-model fidelity as rank
//!    correlation between predicted `est_cost_ns` and simulated seconds.
//!
//! ```
//! use oracle::{run_case, OracleMatrix};
//! use workloads::genprog::{GenCase, GenConfig};
//!
//! let case = GenCase::from_seed(42, &GenConfig::default());
//! let report = run_case(&case, &OracleMatrix::default());
//! assert!(report.failures.is_empty(), "{}", report.failures[0]);
//! assert_eq!(report.records.len(), 6); // 3 profiles × 2 budgets
//! ```

pub mod equivalence;
pub mod matrix;
pub mod minimizer;
pub mod mutation;
pub mod stats;

pub use equivalence::{assert_equivalent, check_equivalent, Divergence};
pub use matrix::{
    fuzz, mid_range, run_case, run_cell, seed_range_from_env, tight_budget, CaseReport, Failure,
    FailureKind, FuzzReport, OracleCell, OracleMatrix, RunRecord,
};
pub use minimizer::{minimize, Repro};
pub use mutation::broken_limit_rule;
pub use stats::spearman;
