//! The oracle matrix driver: run every generated case across network
//! profiles × search budgets × rule sets, asserting original-vs-optimized
//! observational equivalence in each cell and recording predicted vs
//! simulated cost along the way.

use crate::equivalence::{check_equivalent, Divergence};
use cobra_core::{SearchBudget, VerifyLevel};
use fir::RuleSet;
use imperative::pretty;
use netsim::NetworkProfile;
use workloads::genprog::{GenCase, GenConfig};
use workloads::harness::run_on;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A mid-range network between the paper's two extremes: 100 Mbps, 10 ms
/// RTT (a same-region cloud link).
pub fn mid_range() -> NetworkProfile {
    NetworkProfile::new("mid-range", 100e6, 10.0)
}

/// The minimal search budget of the budget-safety suite: one alternative
/// per region and tiny memo caps. Searches under it must still produce
/// observationally equivalent programs, and must report
/// `budget_exhausted` whenever anything was clipped.
pub fn tight_budget() -> SearchBudget {
    SearchBudget::default()
        .with_max_alternatives_per_region(1)
        .with_max_memo_groups(24)
        .with_max_memo_exprs(40)
}

/// One cell of the oracle matrix: the full optimizer configuration a case
/// is checked under.
#[derive(Debug, Clone)]
pub struct OracleCell {
    /// Network profile the optimizer costs against and the run simulates.
    pub profile: NetworkProfile,
    /// Label of the budget (for reports).
    pub budget_name: String,
    /// The search budget.
    pub budget: SearchBudget,
    /// Label of the rule set (for reports).
    pub ruleset_name: String,
    /// The transformation rules explored.
    pub ruleset: RuleSet,
    /// Static rewrite verification level the optimizer runs under. The
    /// default matrix uses [`VerifyLevel::Panic`]: verification never
    /// alters which alternatives a sound rule set produces, so the fuzz
    /// corpus stays bit-identical while doubling as a verifier soak — any
    /// statically unsound rewrite aborts the run instead of relying on
    /// the differential check to notice.
    pub verify: VerifyLevel,
}

/// The sweep the oracle drives every case through.
#[derive(Clone)]
pub struct OracleMatrix {
    /// Network profiles (default: slow-remote, mid-range, fast-local).
    pub profiles: Vec<NetworkProfile>,
    /// Labelled budgets (default: the default budget and [`tight_budget`]).
    pub budgets: Vec<(String, SearchBudget)>,
    /// Labelled rule sets (default: the standard set).
    pub rulesets: Vec<(String, RuleSet)>,
    /// Verification level for every cell (default:
    /// [`VerifyLevel::Panic`] — see [`OracleCell::verify`]).
    pub verify: VerifyLevel,
}

impl Default for OracleMatrix {
    fn default() -> Self {
        OracleMatrix {
            profiles: vec![
                NetworkProfile::slow_remote(),
                mid_range(),
                NetworkProfile::fast_local(),
            ],
            budgets: vec![
                ("default".to_string(), SearchBudget::default()),
                ("tight".to_string(), tight_budget()),
            ],
            rulesets: vec![("standard".to_string(), RuleSet::standard())],
            verify: VerifyLevel::Panic,
        }
    }
}

impl OracleMatrix {
    /// A matrix sweeping the full standard rule set plus every
    /// single-rule-disabled ablation (one profile, default budget):
    /// disabling any one rule must never break semantics — single-rule
    /// search paths are exercised, not just the full set.
    pub fn rule_ablation() -> OracleMatrix {
        let mut rulesets = vec![("standard".to_string(), RuleSet::standard())];
        for name in RuleSet::standard().names() {
            rulesets.push((
                format!("standard-without-{name}"),
                RuleSet::standard().without(name),
            ));
        }
        OracleMatrix {
            profiles: vec![NetworkProfile::slow_remote()],
            budgets: vec![("default".to_string(), SearchBudget::default())],
            rulesets,
            verify: VerifyLevel::Panic,
        }
    }

    /// A one-cell matrix (used by the minimizer and targeted suites).
    pub fn single(cell: OracleCell) -> OracleMatrix {
        OracleMatrix {
            profiles: vec![cell.profile],
            budgets: vec![(cell.budget_name, cell.budget)],
            rulesets: vec![(cell.ruleset_name, cell.ruleset)],
            verify: cell.verify,
        }
    }

    /// Every cell of the sweep, profiles outermost.
    pub fn cells(&self) -> Vec<OracleCell> {
        let mut out = Vec::new();
        for profile in &self.profiles {
            for (bn, budget) in &self.budgets {
                for (rn, ruleset) in &self.rulesets {
                    out.push(OracleCell {
                        profile: profile.clone(),
                        budget_name: bn.clone(),
                        budget: budget.clone(),
                        ruleset_name: rn.clone(),
                        ruleset: ruleset.clone(),
                        verify: self.verify,
                    });
                }
            }
        }
        out
    }
}

/// Costs and measurements from one passing cell.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Generating seed of the case.
    pub seed: u64,
    /// Profile / budget / ruleset labels of the cell.
    pub profile: String,
    /// Budget label.
    pub budget: String,
    /// Rule-set label.
    pub ruleset: String,
    /// Predicted cost of the chosen program (ns).
    pub est_cost_ns: f64,
    /// Predicted cost of the original program (ns).
    pub original_cost_ns: f64,
    /// Simulated seconds of the original run.
    pub secs_original: f64,
    /// Simulated seconds of the optimized run.
    pub secs_optimized: f64,
    /// Complete programs representable in the search DAG.
    pub alternatives: u64,
    /// Whether the search reported budget exhaustion.
    pub budget_exhausted: bool,
}

/// Why a cell failed.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// The optimizer itself errored.
    Optimize(String),
    /// The *original* program failed to run — a generator soundness bug,
    /// never an optimizer bug; surfaced loudly so it cannot hide.
    OriginalRun(String),
    /// The optimized program failed to run.
    OptimizedRun(String),
    /// Both ran; the observables diverged.
    Mismatch(Divergence),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Optimize(e) => write!(f, "optimizer error: {e}"),
            FailureKind::OriginalRun(e) => write!(f, "ORIGINAL run error (generator bug): {e}"),
            FailureKind::OptimizedRun(e) => write!(f, "optimized run error: {e}"),
            FailureKind::Mismatch(d) => write!(f, "mismatch: {d}"),
        }
    }
}

/// A failing cell: everything needed to reproduce and report it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Generating seed — rerunning the cell from this seed alone
    /// reproduces the failure.
    pub seed: u64,
    /// The failing configuration.
    pub cell: OracleCell,
    /// What went wrong.
    pub kind: FailureKind,
    /// Pretty-printed original program.
    pub program: String,
    /// Pretty-printed optimized program (when optimization succeeded).
    pub optimized: Option<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "oracle failure: seed={} profile={} budget={} rules={}",
            self.seed,
            self.cell.profile.name(),
            self.cell.budget_name,
            self.cell.ruleset_name
        )?;
        writeln!(f, "{}", self.kind)?;
        writeln!(f, "--- original program ---\n{}", self.program)?;
        if let Some(opt) = &self.optimized {
            writeln!(f, "--- optimized program ---\n{opt}")?;
        }
        Ok(())
    }
}

/// Everything one case produced across the matrix.
#[derive(Debug, Clone, Default)]
pub struct CaseReport {
    /// One record per cell, failing or not.
    pub records: Vec<RunRecord>,
    /// The failing cells.
    pub failures: Vec<Failure>,
}

/// Run one cell: optimize under the cell's configuration, execute the
/// original and the optimized program on fresh fixtures, compare
/// observables. `original` may carry a pre-computed original run for this
/// profile (it only depends on the profile, not on budget or rules).
// The Err variant carries the whole failing configuration plus both
// program texts by design — it *is* the repro artifact, and failures are
// rare enough that its size never matters.
#[allow(clippy::result_large_err)]
pub fn run_cell(
    case: &GenCase,
    cell: &OracleCell,
    original: Option<&workloads::RunResult>,
) -> Result<RunRecord, Failure> {
    let fail = |kind, optimized: Option<String>| Failure {
        seed: case.seed,
        cell: cell.clone(),
        kind,
        program: case.pretty(),
        optimized,
    };

    let fixture = case.fixture();
    let cobra = fixture
        .cobra_builder()
        .network(cell.profile.clone())
        .budget(cell.budget.clone())
        .rules(cell.ruleset.clone())
        .verify_rewrites(cell.verify)
        .build();
    let opt = cobra
        .optimize_program(&case.program)
        .map_err(|e| fail(FailureKind::Optimize(e.to_string()), None))?;
    let optimized_program = case.program.with_entry(opt.program.clone());
    let optimized_text = pretty::program_to_string(&optimized_program);

    let fresh_original;
    let original = match original {
        Some(r) => r,
        None => {
            fresh_original = run_on(&case.fixture(), cell.profile.clone(), &case.program)
                .map_err(|e| fail(FailureKind::OriginalRun(e.to_string()), None))?;
            &fresh_original
        }
    };
    let rewritten =
        run_on(&case.fixture(), cell.profile.clone(), &optimized_program).map_err(|e| {
            fail(
                FailureKind::OptimizedRun(e.to_string()),
                Some(optimized_text.clone()),
            )
        })?;

    let observed = case.observed_vars();
    let observed: Vec<&str> = observed.iter().map(|s| s.as_str()).collect();
    check_equivalent(
        &original.outcome.normalized_with_vars(&observed),
        &rewritten.outcome.normalized_with_vars(&observed),
    )
    .map_err(|d| fail(FailureKind::Mismatch(d), Some(optimized_text.clone())))?;

    Ok(RunRecord {
        seed: case.seed,
        profile: cell.profile.name().to_string(),
        budget: cell.budget_name.clone(),
        ruleset: cell.ruleset_name.clone(),
        est_cost_ns: opt.est_cost_ns,
        original_cost_ns: opt.original_cost_ns,
        secs_original: original.secs,
        secs_optimized: rewritten.secs,
        alternatives: opt.alternatives,
        budget_exhausted: opt.budget_exhausted,
    })
}

/// Run one case through every cell of the matrix. The original program is
/// executed once per profile and shared across that profile's cells.
pub fn run_case(case: &GenCase, matrix: &OracleMatrix) -> CaseReport {
    let mut report = CaseReport::default();
    for profile in &matrix.profiles {
        let original = match run_on(&case.fixture(), profile.clone(), &case.program) {
            Ok(orig) => orig,
            Err(e) => {
                // A generator-soundness bug depends only on the profile —
                // record it once, not once per budget × ruleset cell.
                report.failures.push(Failure {
                    seed: case.seed,
                    cell: OracleCell {
                        profile: profile.clone(),
                        budget_name: "-".to_string(),
                        budget: SearchBudget::default(),
                        ruleset_name: "-".to_string(),
                        ruleset: RuleSet::standard(),
                        verify: matrix.verify,
                    },
                    kind: FailureKind::OriginalRun(e.to_string()),
                    program: case.pretty(),
                    optimized: None,
                });
                continue;
            }
        };
        for (bn, budget) in &matrix.budgets {
            for (rn, ruleset) in &matrix.rulesets {
                let cell = OracleCell {
                    profile: profile.clone(),
                    budget_name: bn.clone(),
                    budget: budget.clone(),
                    ruleset_name: rn.clone(),
                    ruleset: ruleset.clone(),
                    verify: matrix.verify,
                };
                match run_cell(case, &cell, Some(&original)) {
                    Ok(rec) => report.records.push(rec),
                    Err(f) => report.failures.push(f),
                }
            }
        }
    }
    report
}

/// Aggregate result of fuzzing a seed range.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Number of cases (seeds) generated and driven through the matrix.
    pub cases: usize,
    /// Total matrix cells executed.
    pub runs: usize,
    /// Number of pairwise-distinct generated programs (by pretty text).
    pub distinct_programs: usize,
    /// Per-cell records, sorted by (seed, profile, budget, ruleset).
    pub records: Vec<RunRecord>,
    /// Every failing cell.
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    /// All failures rendered for a test assertion message.
    pub fn render_failures(&self) -> String {
        if self.failures.is_empty() {
            return "no failures".to_string();
        }
        let mut out = format!("{} failing cell(s):\n", self.failures.len());
        for f in self.failures.iter().take(5) {
            out.push_str(&f.to_string());
        }
        out
    }
}

/// Generate the cases for `seeds` and drive each through `matrix`,
/// fanning cases out over worker threads (the optimizer pipeline is
/// `Send + Sync`; each case owns its fixtures). Results are
/// deterministic: records are sorted after the parallel phase.
pub fn fuzz(seeds: std::ops::Range<u64>, cfg: &GenConfig, matrix: &OracleMatrix) -> FuzzReport {
    let seeds: Vec<u64> = seeds.collect();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(u64, String, CaseReport)>> = Mutex::new(Vec::new());
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(seeds.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&seed) = seeds.get(i) else { break };
                let case = GenCase::from_seed(seed, cfg);
                let report = run_case(&case, matrix);
                results.lock().unwrap().push((seed, case.pretty(), report));
            });
        }
    });

    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|(seed, _, _)| *seed);
    let mut out = FuzzReport {
        cases: results.len(),
        ..FuzzReport::default()
    };
    let mut texts = std::collections::HashSet::new();
    for (_, text, report) in results {
        texts.insert(text);
        out.runs += report.records.len() + report.failures.len();
        out.records.extend(report.records);
        out.failures.extend(report.failures);
    }
    out.distinct_programs = texts.len();
    out.records.sort_by(|a, b| {
        (a.seed, &a.profile, &a.budget, &a.ruleset)
            .cmp(&(b.seed, &b.profile, &b.budget, &b.ruleset))
    });
    out
}

/// The seed range the fuzz suites run, overridable without recompiling:
/// `FUZZ_SEEDS=2000` widens to `0..2000`, `FUZZ_SEEDS=500..900` selects a
/// window. Unset or unparsable → `0..default_count` (what CI pins).
pub fn seed_range_from_env(default_count: u64) -> std::ops::Range<u64> {
    let Ok(raw) = std::env::var("FUZZ_SEEDS") else {
        return 0..default_count;
    };
    let raw = raw.trim();
    if let Some((a, b)) = raw.split_once("..") {
        if let (Ok(a), Ok(b)) = (a.trim().parse(), b.trim().parse()) {
            if a < b {
                return a..b;
            }
        }
    } else if let Ok(n) = raw.parse::<u64>() {
        return 0..n;
    }
    0..default_count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matrix_shape() {
        let m = OracleMatrix::default();
        assert_eq!(m.profiles.len(), 3);
        assert_eq!(m.budgets.len(), 2);
        assert_eq!(m.cells().len(), 6);
    }

    #[test]
    fn one_case_passes_the_default_matrix() {
        let case = GenCase::from_seed(3, &GenConfig::default());
        let report = run_case(&case, &OracleMatrix::default());
        assert_eq!(report.records.len(), 6, "{}", {
            let mut s = String::new();
            for f in &report.failures {
                s.push_str(&f.to_string());
            }
            s
        });
        assert!(report.failures.is_empty());
    }

    #[test]
    fn seed_range_parsing() {
        // Unset env in this process: default applies.
        std::env::remove_var("FUZZ_SEEDS");
        assert_eq!(seed_range_from_env(10), 0..10);
        std::env::set_var("FUZZ_SEEDS", "25");
        assert_eq!(seed_range_from_env(10), 0..25);
        std::env::set_var("FUZZ_SEEDS", "5..9");
        assert_eq!(seed_range_from_env(10), 5..9);
        std::env::set_var("FUZZ_SEEDS", "bogus");
        assert_eq!(seed_range_from_env(10), 0..10);
        std::env::remove_var("FUZZ_SEEDS");
    }
}
