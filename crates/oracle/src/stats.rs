//! Rank statistics for cost-model fidelity checks.

/// Spearman rank-correlation coefficient between two equal-length samples
/// (ties get averaged ranks). Returns a value in `[-1, 1]`; `NaN` inputs
/// are rejected.
///
/// # Panics
/// Panics when the slices differ in length, are shorter than 2, or
/// contain non-finite values.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    assert!(xs.len() >= 2, "need at least two pairs");
    assert!(
        xs.iter().chain(ys).all(|v| v.is_finite()),
        "samples must be finite"
    );
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks (1-based; ties share the mean of their positions).
fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        // Positions i..=j hold ties; their shared rank is the average.
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        // A constant sample carries no ranking information; report no
        // correlation rather than dividing by zero.
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_agreement_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 300.0, 4000.0]; // monotone, non-linear
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_order_is_minus_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [9.0, 5.0, 1.0];
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_get_average_ranks() {
        assert_eq!(ranks(&[5.0, 1.0, 5.0]), vec![2.5, 1.0, 2.5]);
    }

    #[test]
    fn constant_sample_reports_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }
}
