//! Greedy case minimization: shrink a failing program (and its data)
//! while the failure keeps reproducing, then emit a self-contained repro.

use crate::matrix::{run_cell, Failure, FailureKind, OracleCell};
use imperative::ast::{Program, Stmt, StmtKind};
use workloads::genprog::GenCase;

/// A minimized, self-contained reproduction of an oracle failure.
#[derive(Debug, Clone)]
pub struct Repro {
    /// Generating seed (rerun the cell from this seed alone to regenerate
    /// the *original* unminimized case).
    pub seed: u64,
    /// The failing configuration.
    pub cell: OracleCell,
    /// Data scale the failure still reproduces at.
    pub row_scale: f64,
    /// The minimized failing program.
    pub program: Program,
    /// Statement count of the minimized program.
    pub stmt_count: usize,
    /// The failure the minimized program still exhibits.
    pub kind: String,
}

impl std::fmt::Display for Repro {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== oracle repro (seed {}) ===", self.seed)?;
        writeln!(
            f,
            "cell: profile={} budget={} rules={}  row_scale={}",
            self.cell.profile.name(),
            self.cell.budget_name,
            self.cell.ruleset_name,
            self.row_scale
        )?;
        writeln!(f, "failure: {}", self.kind)?;
        writeln!(f, "minimized program ({} statements):", self.stmt_count)?;
        write!(
            f,
            "{}",
            imperative::pretty::program_to_string(&self.program)
        )?;
        writeln!(
            f,
            "reproduce: GenCase::from_seed({}, &GenConfig::default()) + oracle::run_cell(..)",
            self.seed
        )
    }
}

/// Does this case still fail in `cell` with an optimizer-attributable
/// failure (the original must run cleanly — reductions that break the
/// original program are rejected)?
fn still_fails(case: &GenCase, cell: &OracleCell) -> Option<FailureKind> {
    match run_cell(case, cell, None) {
        Ok(_) => None,
        Err(Failure { kind, .. }) => match kind {
            FailureKind::OriginalRun(_) => None,
            other => Some(other),
        },
    }
}

/// All single-step reductions of a statement list. Every candidate has
/// strictly fewer statements than the input, so greedy iteration
/// terminates:
///
/// * drop any one statement,
/// * replace a loop (`for`/`while`) or `try` by its body,
/// * replace an `if` by either branch,
/// * the same, recursively, inside nested bodies.
fn reductions(body: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    let splice = |i: usize, replacement: Vec<Stmt>| -> Vec<Stmt> {
        let mut v = body[..i].to_vec();
        v.extend(replacement);
        v.extend_from_slice(&body[i + 1..]);
        v
    };
    let with_child = |i: usize, rebuild: &dyn Fn(Vec<Stmt>) -> StmtKind, child: Vec<Stmt>| {
        splice(i, vec![Stmt::new(rebuild(child))])
    };
    for (i, stmt) in body.iter().enumerate() {
        out.push(splice(i, vec![]));
        match &stmt.kind {
            StmtKind::ForEach { var, iter, body: b } => {
                out.push(splice(i, b.clone()));
                let (var, iter) = (var.clone(), iter.clone());
                for rb in reductions(b) {
                    out.push(with_child(
                        i,
                        &|child| StmtKind::ForEach {
                            var: var.clone(),
                            iter: iter.clone(),
                            body: child,
                        },
                        rb,
                    ));
                }
            }
            StmtKind::While { cond, body: b } => {
                out.push(splice(i, b.clone()));
                let cond = cond.clone();
                for rb in reductions(b) {
                    out.push(with_child(
                        i,
                        &|child| StmtKind::While {
                            cond: cond.clone(),
                            body: child,
                        },
                        rb,
                    ));
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                out.push(splice(i, then_branch.clone()));
                out.push(splice(i, else_branch.clone()));
                let (cond, tb, eb) = (cond.clone(), then_branch.clone(), else_branch.clone());
                for rt in reductions(&tb) {
                    out.push(with_child(
                        i,
                        &|child| StmtKind::If {
                            cond: cond.clone(),
                            then_branch: child,
                            else_branch: eb.clone(),
                        },
                        rt,
                    ));
                }
                for re in reductions(&eb) {
                    out.push(with_child(
                        i,
                        &|child| StmtKind::If {
                            cond: cond.clone(),
                            then_branch: tb.clone(),
                            else_branch: child,
                        },
                        re,
                    ));
                }
            }
            StmtKind::TryCatch { body: b, handler } => {
                out.push(splice(i, b.clone()));
                let (b2, handler) = (b.clone(), handler.clone());
                for rb in reductions(&b2) {
                    out.push(with_child(
                        i,
                        &|child| StmtKind::TryCatch {
                            body: child,
                            handler: handler.clone(),
                        },
                        rb,
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// Greedily minimize a failing case within one matrix cell: repeatedly
/// apply the first statement reduction that keeps the failure alive, then
/// shrink the data (`row_scale` 0.5 → 0.25 → 0.1) while it still fails.
/// Returns `None` when the case does not fail in `cell` to begin with.
pub fn minimize(case: &GenCase, cell: &OracleCell) -> Option<Repro> {
    let mut kind = still_fails(case, cell)?;
    let mut current = case.clone();

    // Statement shrinking to a local fixpoint.
    loop {
        let entry = current.program.entry().clone();
        let mut improved = false;
        for candidate in reductions(&entry.body) {
            let mut f = entry.clone();
            f.body = candidate;
            let next = current.with_program(current.program.with_entry(f));
            if let Some(k) = still_fails(&next, cell) {
                current = next;
                kind = k;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }

    // Data shrinking.
    for scale in [0.5, 0.25, 0.1] {
        let next = current.with_row_scale(scale);
        if let Some(k) = still_fails(&next, cell) {
            current = next;
            kind = k;
        } else {
            break;
        }
    }

    let stmt_count = current.program.stmt_count();
    Some(Repro {
        seed: case.seed,
        cell: cell.clone(),
        row_scale: current.row_scale,
        program: current.program,
        stmt_count,
        kind: kind.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imperative::ast::Expr;

    fn let_stmt(v: &str) -> Stmt {
        Stmt::new(StmtKind::Let(v.into(), Expr::lit(1i64)))
    }

    #[test]
    fn reductions_strictly_shrink() {
        let body = vec![
            let_stmt("a"),
            Stmt::new(StmtKind::ForEach {
                var: "v".into(),
                iter: Expr::LoadAll("E0".into()),
                body: vec![let_stmt("b"), let_stmt("c")],
            }),
            Stmt::new(StmtKind::If {
                cond: Expr::lit(true),
                then_branch: vec![let_stmt("d")],
                else_branch: vec![],
            }),
        ];
        let total: usize = body.iter().map(|s| s.stmt_count()).sum();
        let cands = reductions(&body);
        assert!(!cands.is_empty());
        for c in &cands {
            let n: usize = c.iter().map(|s| s.stmt_count()).sum();
            assert!(n < total, "candidate did not shrink: {n} vs {total}");
        }
        // Dropping each of the 3 top statements, hoisting the loop body,
        // collapsing the if both ways, and nested reductions.
        assert!(cands.len() >= 8);
    }
}
