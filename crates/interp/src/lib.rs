//! Interpreter for the mini imperative language.
//!
//! Executes a [`imperative::Program`] against an [`orm::Session`] (and
//! through it the simulated network and database), advancing the shared
//! virtual clock:
//!
//! * every executed statement costs `C_Z` nanoseconds (30 ns in the paper,
//!   §VIII: "The cost of executing any other instruction apart from a
//!   query execution statement … was set to 30ns"),
//! * queries, `loadAll`, association-navigation cache misses and updates
//!   are charged by [`orm::RemoteDb`] with round trip + server + transfer
//!   time.
//!
//! The interpreter returns both the program's *results* (final variable
//! bindings, return value, printed output) and its *costs* (elapsed
//! virtual time, round trips, bytes moved), which is what lets the test
//! suite check that COBRA's rewrites preserve semantics while the
//! benchmarks measure the performance of each alternative.

mod machine;
mod value;

pub use machine::{Interp, InterpConfig, NormalizedOutcome, Outcome};
pub use value::{ColumnCache, RowObj, RtVal, Snapshot};
