//! The interpreter proper.

use crate::value::{ColumnCache, RowObj, RtVal, Snapshot};
use imperative::ast::{Expr, Function, Program, Stmt, StmtKind};
use minidb::{apply_bin_op, DbError, DbResult, Value};
use orm::Session;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Interpreter tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct InterpConfig {
    /// Cost per executed (non-query) statement, ns — `C_Z` in §VI; the
    /// paper profiles it at 30 ns.
    pub cz_ns: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig { cz_ns: 30 }
    }
}

/// Result of executing a program.
#[derive(Debug)]
pub struct Outcome {
    /// Final variable bindings of the entry function.
    pub env: HashMap<String, RtVal>,
    /// Return value of the entry function.
    pub ret: RtVal,
    /// Virtual time consumed by the run (ns).
    pub elapsed_ns: u64,
    /// Network round trips performed by the run.
    pub round_trips: u64,
    /// Result bytes transferred from the server during the run.
    pub bytes: u64,
    /// Output of `print` statements, in order.
    pub prints: Vec<String>,
    /// The printed *values* (deep snapshots), in print order. Unlike
    /// [`Outcome::prints`] (display strings, kept for logging), these can
    /// be normalized for order-insensitive comparison — fixing the
    /// print-vs-result asymmetry where results compared structurally but
    /// prints only textually.
    pub print_values: Vec<Snapshot>,
    /// Number of statement executions.
    pub stmts_executed: u64,
}

impl Outcome {
    /// Snapshot of one variable (Unit if absent).
    pub fn var_snapshot(&self, name: &str) -> Snapshot {
        self.env
            .get(name)
            .map(|v| v.snapshot())
            .unwrap_or(Snapshot::Unit)
    }

    /// The run's observables in rewrite-invariant form: the return value
    /// and every printed value, each normalized to bag semantics
    /// ([`Snapshot::normalized`] — collections *always* compare as
    /// multisets, because the cost-based rewrites legitimately reorder
    /// them: a join enumerates rows in a different order than the loop it
    /// replaces (P0 → P1). Element order inside a collection is therefore
    /// not an observable here, even under an `order by` source. What
    /// stays order-sensitive is the print *sequence*: print k must carry
    /// the same (normalized) value on both sides, so reordering
    /// observable side effects is still a divergence.
    ///
    /// Add out-parameter variables with
    /// [`Outcome::normalized_with_vars`]; they are what differential
    /// testing compares between an original and a rewritten program.
    pub fn normalized(&self) -> NormalizedOutcome {
        NormalizedOutcome {
            vars: Vec::new(),
            ret: self.ret.snapshot().normalized(),
            prints: self
                .print_values
                .iter()
                .map(|s| s.clone().normalized())
                .collect(),
        }
    }

    /// [`Outcome::normalized`] extended with the final values of the named
    /// variables (absent variables snapshot as [`Snapshot::Unit`], so a
    /// rewrite that *drops* an observed variable still diverges).
    pub fn normalized_with_vars(&self, names: &[&str]) -> NormalizedOutcome {
        let mut n = self.normalized();
        n.vars = names
            .iter()
            .map(|name| (name.to_string(), self.var_snapshot(name).normalized()))
            .collect();
        n.vars.sort();
        n
    }
}

/// The comparable observables of one program run: selected final variable
/// values, the return value, and printed values — all normalized via
/// [`Snapshot::normalized`]. Two runs are *observationally equivalent*
/// exactly when their `NormalizedOutcome`s are `==`; the differential
/// oracle builds its `assert_equivalent` on this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalizedOutcome {
    /// Observed variables (name, normalized snapshot), sorted by name.
    pub vars: Vec<(String, Snapshot)>,
    /// Normalized return value.
    pub ret: Snapshot,
    /// Normalized printed values, in print order.
    pub prints: Vec<Snapshot>,
}

impl std::fmt::Display for NormalizedOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, snap) in &self.vars {
            writeln!(f, "var {name} = {snap}")?;
        }
        writeln!(f, "ret = {}", self.ret)?;
        for (i, p) in self.prints.iter().enumerate() {
            writeln!(f, "print[{i}] = {p}")?;
        }
        Ok(())
    }
}

/// Control flow signals.
enum Flow {
    Normal,
    Break,
    Return(RtVal),
}

/// Executes programs against an ORM session.
pub struct Interp<'a> {
    session: &'a Session,
    program: &'a Program,
    config: InterpConfig,
}

impl<'a> Interp<'a> {
    /// New interpreter for `program` over `session`.
    pub fn new(session: &'a Session, program: &'a Program) -> Interp<'a> {
        Interp {
            session,
            program,
            config: InterpConfig::default(),
        }
    }

    /// Override configuration.
    pub fn with_config(mut self, config: InterpConfig) -> Interp<'a> {
        self.config = config;
        self
    }

    /// Run the entry function with `args` bound to its parameters (missing
    /// parameters default to fresh collections, matching the paper's
    /// out-parameter style `processOrders(result)`).
    pub fn run(&self, args: Vec<(String, RtVal)>) -> DbResult<Outcome> {
        let clock = self.session.remote().clock().clone();
        let start_ns = clock.now();
        let start_trips = self.session.remote().round_trips();
        let start_bytes = self.session.remote().bytes_transferred();

        let entry = self.program.entry();
        let mut env: HashMap<String, RtVal> = HashMap::new();
        let mut provided: HashMap<String, RtVal> = args.into_iter().collect();
        for p in &entry.params {
            let v = provided.remove(p).unwrap_or_else(RtVal::new_collection);
            env.insert(p.clone(), v);
        }

        let mut state = State {
            prints: Vec::new(),
            print_values: Vec::new(),
            stmts: 0,
            built_caches: Vec::new(),
        };
        let flow = self.exec_block(&entry.body, &mut env, &mut state)?;
        let ret = match flow {
            Flow::Return(v) => v,
            _ => RtVal::Unit,
        };

        Ok(Outcome {
            env,
            ret,
            elapsed_ns: clock.now() - start_ns,
            round_trips: self.session.remote().round_trips() - start_trips,
            bytes: self.session.remote().bytes_transferred() - start_bytes,
            prints: state.prints,
            print_values: state.print_values,
            stmts_executed: state.stmts,
        })
    }

    fn charge(&self, state: &mut State) {
        state.stmts += 1;
        self.session.remote().clock().advance(self.config.cz_ns);
    }

    fn exec_block(
        &self,
        stmts: &[Stmt],
        env: &mut HashMap<String, RtVal>,
        state: &mut State,
    ) -> DbResult<Flow> {
        for s in stmts {
            match self.exec_stmt(s, env, state)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &self,
        stmt: &Stmt,
        env: &mut HashMap<String, RtVal>,
        state: &mut State,
    ) -> DbResult<Flow> {
        self.charge(state);
        match &stmt.kind {
            StmtKind::Let(v, e) => {
                let val = self.eval(e, env, state)?;
                env.insert(v.clone(), val);
                Ok(Flow::Normal)
            }
            StmtKind::NewCollection(v) => {
                env.insert(v.clone(), RtVal::new_collection());
                Ok(Flow::Normal)
            }
            StmtKind::NewMap(v) => {
                env.insert(v.clone(), RtVal::new_map());
                Ok(Flow::Normal)
            }
            StmtKind::Add(c, e) => {
                let val = self.eval(e, env, state)?;
                match env.get(c) {
                    Some(RtVal::Collection(inner)) => {
                        inner.lock().unwrap().push(val);
                        Ok(Flow::Normal)
                    }
                    _ => Err(DbError::Invalid(format!("{c} is not a collection"))),
                }
            }
            StmtKind::Put(m, k, v) => {
                let key = self
                    .eval(k, env, state)?
                    .as_scalar()
                    .cloned()
                    .ok_or_else(|| DbError::Type("map key must be a scalar".into()))?;
                let val = self.eval(v, env, state)?;
                match env.get(m) {
                    Some(RtVal::Map(inner)) => {
                        inner.lock().unwrap().insert(key, val);
                        Ok(Flow::Normal)
                    }
                    _ => Err(DbError::Invalid(format!("{m} is not a map"))),
                }
            }
            StmtKind::ForEach { var, iter, body } => {
                let items = self.eval_iterable(iter, env, state)?;
                for item in items {
                    // The loop header executes once per iteration.
                    self.charge(state);
                    env.insert(var.clone(), item);
                    match self.exec_block(body, env, state)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::While { cond, body } => {
                loop {
                    self.charge(state);
                    let c = self.eval(cond, env, state)?;
                    match c.as_scalar().and_then(|v| v.as_bool()) {
                        Some(true) => {}
                        Some(false) => break,
                        None => {
                            return Err(DbError::Type("while condition must be boolean".into()))
                        }
                    }
                    match self.exec_block(body, env, state)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(cond, env, state)?;
                let truth = c.as_scalar().and_then(|v| v.as_bool()).unwrap_or(false);
                if truth {
                    self.exec_block(then_branch, env, state)
                } else {
                    self.exec_block(else_branch, env, state)
                }
            }
            StmtKind::Print(e) => {
                let v = self.eval(e, env, state)?;
                let snap = v.snapshot();
                state.prints.push(format!("{snap:?}"));
                state.print_values.push(snap);
                Ok(Flow::Normal)
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env, state)?,
                    None => RtVal::Unit,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::CacheByColumn {
                cache,
                source,
                key_col,
            } => {
                // Client-side caches (EhCache/Memcache in the paper) are
                // built once per run: re-executing the statement (e.g.
                // inside a loop or a second callee) is a no-op.
                if state.built_caches.contains(cache) && env.contains_key(cache) {
                    return Ok(Flow::Normal);
                }
                state.built_caches.push(cache.clone());
                let rows = self.eval_iterable(source, env, state)?;
                let row_objs: Vec<Arc<RowObj>> = rows
                    .into_iter()
                    .filter_map(|v| match v {
                        RtVal::Row(r) => Some(r),
                        _ => None,
                    })
                    .collect();
                let built = ColumnCache::build(&row_objs, key_col);
                env.insert(cache.clone(), RtVal::Cache(Arc::new(built)));
                Ok(Flow::Normal)
            }
            StmtKind::UpdateQuery {
                table,
                set_col,
                value,
                key_col,
                key,
            } => {
                let v = self
                    .eval(value, env, state)?
                    .as_scalar()
                    .cloned()
                    .ok_or_else(|| DbError::Type("update value must be a scalar".into()))?;
                let k = self
                    .eval(key, env, state)?
                    .as_scalar()
                    .cloned()
                    .ok_or_else(|| DbError::Type("update key must be a scalar".into()))?;
                self.session
                    .remote()
                    .update(table, key_col, &k, set_col, v)?;
                Ok(Flow::Normal)
            }
            StmtKind::LetCall(target, fname, args) => {
                let f = self
                    .program
                    .function(fname)
                    .ok_or_else(|| DbError::Invalid(format!("unknown function {fname}")))?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, state)?);
                }
                let ret = self.call(f, vals, state)?;
                env.insert(target.clone(), ret);
                Ok(Flow::Normal)
            }
            StmtKind::TryCatch { body, handler: _ } => {
                // The simulation raises no recoverable exceptions; the
                // handler exists to exercise unstructured-region analysis.
                self.exec_block(body, env, state)
            }
        }
    }

    fn call(&self, f: &Function, args: Vec<RtVal>, state: &mut State) -> DbResult<RtVal> {
        if args.len() != f.params.len() {
            return Err(DbError::Invalid(format!(
                "{} expects {} args, got {}",
                f.name,
                f.params.len(),
                args.len()
            )));
        }
        let mut env: HashMap<String, RtVal> = HashMap::new();
        for (p, v) in f.params.iter().zip(args) {
            env.insert(p.clone(), v);
        }
        match self.exec_block(&f.body, &mut env, state)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(RtVal::Unit),
        }
    }

    /// Evaluate an expression used as a loop iterable into a vector.
    fn eval_iterable(
        &self,
        e: &Expr,
        env: &mut HashMap<String, RtVal>,
        state: &mut State,
    ) -> DbResult<Vec<RtVal>> {
        let v = self.eval(e, env, state)?;
        match v {
            RtVal::Collection(c) => Ok(c.lock().unwrap().clone()),
            RtVal::Map(m) => Ok(m.lock().unwrap().values().cloned().collect()),
            // A single-row cache/lookup result iterates as one element
            // (cache lookups return the row itself on a unique match).
            row @ RtVal::Row(_) => Ok(vec![row]),
            other => Err(DbError::Type(format!(
                "cannot iterate over {:?}",
                other.snapshot()
            ))),
        }
    }

    // `state` is threaded through even though expression evaluation does
    // not currently charge it: statement-level charging owns the clock,
    // and sub-evaluations must keep the signature for rules that do.
    #[allow(clippy::only_used_in_recursion)]
    fn eval(
        &self,
        e: &Expr,
        env: &mut HashMap<String, RtVal>,
        state: &mut State,
    ) -> DbResult<RtVal> {
        match e {
            Expr::Var(v) => env
                .get(v)
                .cloned()
                .ok_or_else(|| DbError::Invalid(format!("unbound variable {v}"))),
            Expr::Lit(v) => Ok(RtVal::Scalar(v.clone())),
            Expr::Bin(op, l, r) => {
                let lv = self.eval(l, env, state)?;
                let rv = self.eval(r, env, state)?;
                let (a, b) = match (lv.as_scalar(), rv.as_scalar()) {
                    (Some(a), Some(b)) => (a.clone(), b.clone()),
                    _ => return Err(DbError::Type("binary op on non-scalars".into())),
                };
                Ok(RtVal::Scalar(apply_bin_op(*op, &a, &b)?))
            }
            Expr::Not(inner) => {
                let v = self.eval(inner, env, state)?;
                match v.as_scalar() {
                    Some(Value::Bool(b)) => Ok(RtVal::Scalar(Value::Bool(!b))),
                    Some(Value::Null) => Ok(RtVal::Scalar(Value::Null)),
                    _ => Err(DbError::Type("NOT on non-boolean".into())),
                }
            }
            Expr::Field(base, name) => {
                let v = self.eval(base, env, state)?;
                match v {
                    RtVal::Row(r) => r
                        .field(name)
                        .map(RtVal::Scalar)
                        .ok_or_else(|| DbError::UnknownColumn(name.clone())),
                    // Single-row convention (the ORM `uniqueResult` idiom,
                    // same as cache lookups): a one-row collection behaves
                    // as the row itself. Codegen relies on this when it
                    // lowers association navigation to a point query and
                    // reads the result's columns.
                    RtVal::Collection(c) => {
                        let items = c.lock().unwrap();
                        match items.as_slice() {
                            [RtVal::Row(r)] => r
                                .field(name)
                                .map(RtVal::Scalar)
                                .ok_or_else(|| DbError::UnknownColumn(name.clone())),
                            _ => Err(DbError::Type(format!(
                                "field access .{name} on a {}-row collection",
                                items.len()
                            ))),
                        }
                    }
                    _ => Err(DbError::Type(format!("field access .{name} on non-row"))),
                }
            }
            Expr::Nav(base, field) => {
                let v = self.eval(base, env, state)?;
                let RtVal::Row(r) = v else {
                    return Err(DbError::Type(format!("navigation .{field} on non-row")));
                };
                let entity = r.entity.clone().ok_or_else(|| {
                    DbError::Invalid(format!("navigation .{field} requires an entity-mapped row"))
                })?;
                match self.session.navigate(&entity, field, &r.values)? {
                    Some((target, row)) => {
                        let schema = self.session.entity_schema(&target)?;
                        Ok(RtVal::Row(Arc::new(RowObj {
                            schema,
                            values: row,
                            entity: Some(target),
                        })))
                    }
                    None => Ok(RtVal::Scalar(Value::Null)),
                }
            }
            Expr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let v = self.eval(a, env, state)?;
                    vals.push(
                        v.as_scalar()
                            .cloned()
                            .ok_or_else(|| DbError::Type(format!("{f} argument not scalar")))?,
                    );
                }
                Ok(RtVal::Scalar(self.session.remote().funcs().call(f, &vals)?))
            }
            Expr::LoadAll(entity) => {
                let (schema, rows) = self.session.load_all(entity)?;
                let items: Vec<RtVal> = rows
                    .into_iter()
                    .map(|values| {
                        RtVal::Row(Arc::new(RowObj {
                            schema: schema.clone(),
                            values,
                            entity: Some(entity.clone()),
                        }))
                    })
                    .collect();
                Ok(RtVal::Collection(Arc::new(Mutex::new(items))))
            }
            Expr::Query(spec) => {
                let mut params = HashMap::new();
                for (name, bind) in &spec.binds {
                    let v = self.eval(bind, env, state)?;
                    params.insert(
                        name.clone(),
                        v.as_scalar()
                            .cloned()
                            .ok_or_else(|| DbError::Type(format!(":{name} not scalar")))?,
                    );
                }
                let result = self.session.remote().query(&spec.plan, &params)?;
                let schema = Arc::new(result.schema);
                // Tag rows with their entity when the query is a plain
                // table fetch, so navigation keeps working on them.
                let entity = single_table_entity(&spec.plan, self.session);
                let items: Vec<RtVal> = result
                    .rows
                    .into_iter()
                    .map(|row| {
                        RtVal::Row(Arc::new(RowObj {
                            schema: schema.clone(),
                            values: Arc::new(row),
                            entity: entity.clone(),
                        }))
                    })
                    .collect();
                Ok(RtVal::Collection(Arc::new(Mutex::new(items))))
            }
            Expr::ScalarQuery(spec) => {
                let mut params = HashMap::new();
                for (name, bind) in &spec.binds {
                    let v = self.eval(bind, env, state)?;
                    params.insert(
                        name.clone(),
                        v.as_scalar()
                            .cloned()
                            .ok_or_else(|| DbError::Type(format!(":{name} not scalar")))?,
                    );
                }
                let result = self.session.remote().query(&spec.plan, &params)?;
                let v = result
                    .rows
                    .first()
                    .and_then(|r| r.first())
                    .cloned()
                    .unwrap_or(Value::Null);
                Ok(RtVal::Scalar(v))
            }
            Expr::LookupCache(cache, key) => {
                let k = self
                    .eval(key, env, state)?
                    .as_scalar()
                    .cloned()
                    .ok_or_else(|| DbError::Type("cache key must be scalar".into()))?;
                match env.get(cache) {
                    Some(RtVal::Cache(c)) => {
                        let hits = c.lookup(&k);
                        // Single-row convention: a unique match evaluates to
                        // the row itself (paper: `cust = lookupCache(...)`),
                        // multiple matches to a collection.
                        match hits.len() {
                            1 => Ok(RtVal::Row(hits[0].clone())),
                            _ => Ok(RtVal::Collection(Arc::new(Mutex::new(
                                hits.iter().map(|r| RtVal::Row(r.clone())).collect(),
                            )))),
                        }
                    }
                    _ => Err(DbError::Invalid(format!("{cache} is not a cache"))),
                }
            }
            Expr::MapGet(m, k) => {
                let key = self
                    .eval(k, env, state)?
                    .as_scalar()
                    .cloned()
                    .ok_or_else(|| DbError::Type("map key must be scalar".into()))?;
                let mv = self.eval(m, env, state)?;
                match mv {
                    RtVal::Map(inner) => Ok(inner
                        .lock()
                        .unwrap()
                        .get(&key)
                        .cloned()
                        .unwrap_or(RtVal::Scalar(Value::Null))),
                    _ => Err(DbError::Type("get() on non-map".into())),
                }
            }
            Expr::Len(c) => {
                let v = self.eval(c, env, state)?;
                let n = match v {
                    RtVal::Collection(inner) => inner.lock().unwrap().len(),
                    RtVal::Map(inner) => inner.lock().unwrap().len(),
                    RtVal::Cache(inner) => inner.len(),
                    _ => return Err(DbError::Type("size() on non-container".into())),
                };
                Ok(RtVal::Scalar(Value::Int(n as i64)))
            }
        }
    }
}

/// If the plan reads exactly one base table without reshaping rows
/// (filters/sorts/limits are fine), return its mapped entity.
fn single_table_entity(plan: &minidb::LogicalPlan, session: &Session) -> Option<String> {
    use minidb::LogicalPlan as P;
    fn base_table(plan: &P) -> Option<&str> {
        match plan {
            P::Scan { table, .. } => Some(table),
            P::Select { input, .. } | P::OrderBy { input, .. } | P::Limit { input, .. } => {
                base_table(input)
            }
            _ => None,
        }
    }
    let table = base_table(plan)?;
    session
        .mappings()
        .entity_for_table(table)
        .map(|m| m.entity.clone())
}

struct State {
    prints: Vec<String>,
    print_values: Vec<Snapshot>,
    stmts: u64,
    /// Names of client-side caches already built during this run.
    built_caches: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use imperative::ast::QuerySpec;
    use minidb::{BinOp, Column, DataType, Database, FuncRegistry, Schema};
    use netsim::{Clock, NetworkProfile};
    use orm::{EntityMapping, MappingRegistry, RemoteDb};

    fn fixture() -> (Session, Arc<Clock>) {
        let mut db = Database::new();
        let orders = Schema::new(vec![
            Column::new("o_id", DataType::Int),
            Column::new("o_customer_sk", DataType::Int),
            Column::new("o_amount", DataType::Int),
        ]);
        let t = db.create_table("orders", orders).unwrap();
        t.set_primary_key("o_id").unwrap();
        for i in 0..12i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 4), Value::Int(10 * i)])
                .unwrap();
        }
        let customer = Schema::new(vec![
            Column::new("c_customer_sk", DataType::Int),
            Column::new("c_birth_year", DataType::Int),
        ]);
        let t = db.create_table("customer", customer).unwrap();
        t.set_primary_key("c_customer_sk").unwrap();
        for i in 0..4i64 {
            t.insert(vec![Value::Int(i), Value::Int(1960 + i)]).unwrap();
        }
        db.analyze_all();

        let mut funcs = FuncRegistry::with_builtins();
        funcs.register("myFunc", DataType::Int, |args| {
            let a = args[0].as_i64().unwrap_or(0);
            let b = args[1].as_i64().unwrap_or(0);
            Ok(Value::Int(a * 10_000 + b))
        });

        let clock = Arc::new(Clock::new());
        let remote = Arc::new(RemoteDb::new(
            minidb::shared(db),
            Arc::new(funcs),
            NetworkProfile::new("test", 8e9, 1.0),
            clock.clone(),
        ));
        let mut reg = MappingRegistry::new();
        reg.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
            "customer",
            "Customer",
            "o_customer_sk",
        ));
        reg.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
        (Session::new(remote, Arc::new(reg)), clock)
    }

    /// P0 of Figure 3a.
    fn p0() -> Program {
        Program::single(Function::new(
            "processOrders",
            vec!["result".to_string()],
            vec![
                Stmt::new(StmtKind::NewCollection("result".into())),
                Stmt::new(StmtKind::ForEach {
                    var: "o".into(),
                    iter: Expr::LoadAll("Order".into()),
                    body: vec![
                        Stmt::new(StmtKind::Let(
                            "cust".into(),
                            Expr::nav(Expr::var("o"), "customer"),
                        )),
                        Stmt::new(StmtKind::Let(
                            "val".into(),
                            Expr::Call(
                                "myFunc".into(),
                                vec![
                                    Expr::field(Expr::var("o"), "o_id"),
                                    Expr::field(Expr::var("cust"), "c_birth_year"),
                                ],
                            ),
                        )),
                        Stmt::new(StmtKind::Add("result".into(), Expr::var("val"))),
                    ],
                }),
            ],
        ))
    }

    /// P1 of Figure 3b (join query).
    fn p1() -> Program {
        Program::single(Function::new(
            "processOrders",
            vec!["result".to_string()],
            vec![
                Stmt::new(StmtKind::NewCollection("result".into())),
                Stmt::new(StmtKind::Let(
                    "joinRes".into(),
                    Expr::Query(QuerySpec::sql(
                        "select * from orders o join customer c \
                         on o.o_customer_sk = c.c_customer_sk",
                    )),
                )),
                Stmt::new(StmtKind::ForEach {
                    var: "r".into(),
                    iter: Expr::var("joinRes"),
                    body: vec![
                        Stmt::new(StmtKind::Let(
                            "val".into(),
                            Expr::Call(
                                "myFunc".into(),
                                vec![
                                    Expr::field(Expr::var("r"), "o_id"),
                                    Expr::field(Expr::var("r"), "c_birth_year"),
                                ],
                            ),
                        )),
                        Stmt::new(StmtKind::Add("result".into(), Expr::var("val"))),
                    ],
                }),
            ],
        ))
    }

    /// P2 of Figure 3c (prefetch + cache lookups).
    fn p2() -> Program {
        Program::single(Function::new(
            "processOrders",
            vec!["result".to_string()],
            vec![
                Stmt::new(StmtKind::NewCollection("result".into())),
                Stmt::new(StmtKind::CacheByColumn {
                    cache: "custCache".into(),
                    source: Expr::LoadAll("Customer".into()),
                    key_col: "c_customer_sk".into(),
                }),
                Stmt::new(StmtKind::ForEach {
                    var: "o".into(),
                    iter: Expr::LoadAll("Order".into()),
                    body: vec![
                        Stmt::new(StmtKind::Let(
                            "cust".into(),
                            Expr::LookupCache(
                                "custCache".into(),
                                Box::new(Expr::field(Expr::var("o"), "o_customer_sk")),
                            ),
                        )),
                        Stmt::new(StmtKind::Let(
                            "val".into(),
                            Expr::Call(
                                "myFunc".into(),
                                vec![
                                    Expr::field(Expr::var("o"), "o_id"),
                                    Expr::field(Expr::var("cust"), "c_birth_year"),
                                ],
                            ),
                        )),
                        Stmt::new(StmtKind::Add("result".into(), Expr::var("val"))),
                    ],
                }),
            ],
        ))
    }

    fn run(program: &Program) -> (Outcome, Session) {
        let (session, _clock) = fixture();
        let outcome = Interp::new(&session, program).run(vec![]).unwrap();
        (outcome, session)
    }

    #[test]
    fn p0_produces_expected_results_with_n_plus_one_queries() {
        let (out, _s) = run(&p0());
        let Snapshot::List(items) = out.var_snapshot("result") else {
            panic!()
        };
        assert_eq!(items.len(), 12);
        assert_eq!(items[0], Snapshot::Scalar(Value::Int(1960)));
        assert_eq!(items[5], Snapshot::Scalar(Value::Int(5 * 10_000 + 1961)));
        // 1 loadAll + 4 distinct customer lookups.
        assert_eq!(out.round_trips, 5);
    }

    #[test]
    fn p1_and_p2_compute_the_same_result_with_fewer_round_trips() {
        let (out0, _) = run(&p0());
        let (out1, _) = run(&p1());
        let (out2, _) = run(&p2());
        let r0 = out0.var_snapshot("result").normalized();
        let r1 = out1.var_snapshot("result").normalized();
        let r2 = out2.var_snapshot("result").normalized();
        assert_eq!(r0, r1, "P1 rewrite preserves semantics");
        assert_eq!(r0, r2, "P2 rewrite preserves semantics");
        assert_eq!(out1.round_trips, 1, "single join query");
        assert_eq!(out2.round_trips, 2, "two table fetches");
    }

    #[test]
    fn statement_costs_accumulate_on_the_clock() {
        let (session, clock) = fixture();
        let program = p0();
        let before = clock.now();
        let out = Interp::new(&session, &program)
            .with_config(InterpConfig { cz_ns: 1000 })
            .run(vec![])
            .unwrap();
        assert!(out.stmts_executed > 12 * 3, "loop body re-executes");
        assert!(clock.now() - before >= out.stmts_executed * 1000);
    }

    #[test]
    fn aggregation_loop_like_m0() {
        // Figure 7: sum and cumulative sums in one loop.
        let program = Program::single(Function::new(
            "mySum",
            vec![],
            vec![
                Stmt::new(StmtKind::Let("sum".into(), Expr::lit(0i64))),
                Stmt::new(StmtKind::NewMap("cSum".into())),
                Stmt::new(StmtKind::ForEach {
                    var: "t".into(),
                    iter: Expr::Query(QuerySpec::sql(
                        "select o_id, o_amount from orders order by o_id",
                    )),
                    body: vec![
                        Stmt::new(StmtKind::Let(
                            "sum".into(),
                            Expr::bin(
                                BinOp::Add,
                                Expr::var("sum"),
                                Expr::field(Expr::var("t"), "o_amount"),
                            ),
                        )),
                        Stmt::new(StmtKind::Put(
                            "cSum".into(),
                            Expr::field(Expr::var("t"), "o_id"),
                            Expr::var("sum"),
                        )),
                    ],
                }),
                Stmt::new(StmtKind::Return(Some(Expr::var("sum")))),
            ],
        ));
        let (out, _s) = run(&program);
        assert_eq!(out.ret.snapshot(), Snapshot::Scalar(Value::Int(660)));
        let Snapshot::Map(entries) = out.var_snapshot("cSum") else {
            panic!()
        };
        assert_eq!(entries.len(), 12);
        assert_eq!(entries[2].1, Snapshot::Scalar(Value::Int(30)), "0+10+20");
    }

    #[test]
    fn if_and_while_and_break() {
        let program = Program::single(Function::new(
            "f",
            vec![],
            vec![
                Stmt::new(StmtKind::Let("i".into(), Expr::lit(0i64))),
                Stmt::new(StmtKind::While {
                    cond: Expr::lit(true),
                    body: vec![
                        Stmt::new(StmtKind::Let(
                            "i".into(),
                            Expr::bin(BinOp::Add, Expr::var("i"), Expr::lit(1i64)),
                        )),
                        Stmt::new(StmtKind::If {
                            cond: Expr::bin(BinOp::Ge, Expr::var("i"), Expr::lit(5i64)),
                            then_branch: vec![Stmt::new(StmtKind::Break)],
                            else_branch: vec![],
                        }),
                    ],
                }),
            ],
        ));
        let (out, _) = run(&program);
        assert_eq!(out.var_snapshot("i"), Snapshot::Scalar(Value::Int(5)));
    }

    #[test]
    fn user_function_calls() {
        let program = Program {
            functions: vec![
                Function::new(
                    "main",
                    vec![],
                    vec![Stmt::new(StmtKind::LetCall(
                        "x".into(),
                        "double".into(),
                        vec![Expr::lit(21i64)],
                    ))],
                ),
                Function::new(
                    "double",
                    vec!["n".to_string()],
                    vec![Stmt::new(StmtKind::Return(Some(Expr::bin(
                        BinOp::Mul,
                        Expr::var("n"),
                        Expr::lit(2i64),
                    ))))],
                ),
            ],
        };
        let (out, _) = run(&program);
        assert_eq!(out.var_snapshot("x"), Snapshot::Scalar(Value::Int(42)));
    }

    #[test]
    fn update_query_mutates_database() {
        let (session, _clock) = fixture();
        let program = Program::single(Function::new(
            "f",
            vec![],
            vec![Stmt::new(StmtKind::UpdateQuery {
                table: "orders".into(),
                set_col: "o_amount".into(),
                value: Expr::lit(777i64),
                key_col: "o_id".into(),
                key: Expr::lit(3i64),
            })],
        ));
        Interp::new(&session, &program).run(vec![]).unwrap();
        let db = session.remote().database().read().unwrap();
        assert_eq!(db.table("orders").unwrap().rows()[3][2], Value::Int(777));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let program = Program::single(Function::new(
            "f",
            vec![],
            vec![Stmt::new(StmtKind::Print(Expr::var("ghost")))],
        ));
        let (session, _) = fixture();
        assert!(Interp::new(&session, &program).run(vec![]).is_err());
    }

    #[test]
    fn normalized_outcomes_compare_order_insensitively() {
        // P0 and P1 produce `result` in different orders on the wire, and
        // print it; the normalized observables must still agree.
        let mut with_print = p0();
        with_print.functions[0]
            .body
            .push(Stmt::new(StmtKind::Print(Expr::var("result"))));
        let mut p1_print = p1();
        p1_print.functions[0]
            .body
            .push(Stmt::new(StmtKind::Print(Expr::var("result"))));
        let (a, _) = run(&with_print);
        let (b, _) = run(&p1_print);
        assert_eq!(
            a.normalized_with_vars(&["result"]),
            b.normalized_with_vars(&["result"])
        );
        // An observed variable that only one run binds diverges.
        assert_ne!(
            a.normalized_with_vars(&["result", "ghost_var"]),
            a.normalized_with_vars(&["result"])
        );
        // Print values carry deep snapshots in print order.
        assert_eq!(a.print_values.len(), 1);
        assert!(matches!(a.print_values[0], Snapshot::List(_)));
    }

    #[test]
    fn prints_are_captured_in_order() {
        let program = Program::single(Function::new(
            "f",
            vec![],
            vec![
                Stmt::new(StmtKind::Print(Expr::lit(1i64))),
                Stmt::new(StmtKind::Print(Expr::lit(2i64))),
            ],
        ));
        let (out, _) = run(&program);
        assert_eq!(out.prints.len(), 2);
        assert!(out.prints[0].contains('1'));
    }

    #[test]
    fn try_catch_executes_body_only() {
        let program = Program::single(Function::new(
            "f",
            vec![],
            vec![Stmt::new(StmtKind::TryCatch {
                body: vec![Stmt::new(StmtKind::Let("x".into(), Expr::lit(1i64)))],
                handler: vec![Stmt::new(StmtKind::Let("x".into(), Expr::lit(2i64)))],
            })],
        ));
        let (out, _) = run(&program);
        assert_eq!(out.var_snapshot("x"), Snapshot::Scalar(Value::Int(1)));
    }

    #[test]
    fn single_row_query_results_support_field_access() {
        // The unique-result convention: codegen lowers `o.customer` to a
        // point query and reads fields off the one-row result.
        let program = Program::single(Function::new(
            "f",
            vec![],
            vec![
                Stmt::new(StmtKind::Let(
                    "row".into(),
                    Expr::Query(QuerySpec::sql(
                        "select * from customer where c_customer_sk = 2",
                    )),
                )),
                Stmt::new(StmtKind::Let(
                    "year".into(),
                    Expr::field(Expr::var("row"), "c_birth_year"),
                )),
            ],
        ));
        let (out, _) = run(&program);
        assert_eq!(out.var_snapshot("year"), Snapshot::Scalar(Value::Int(1962)));
        // Multi-row results still reject field access.
        let bad = Program::single(Function::new(
            "f",
            vec![],
            vec![
                Stmt::new(StmtKind::Let(
                    "rows".into(),
                    Expr::Query(QuerySpec::sql("select * from orders")),
                )),
                Stmt::new(StmtKind::Let(
                    "x".into(),
                    Expr::field(Expr::var("rows"), "o_id"),
                )),
            ],
        ));
        let (session, _) = fixture();
        assert!(Interp::new(&session, &bad).run(vec![]).is_err());
    }

    #[test]
    fn query_results_support_navigation_when_single_table() {
        // select * from orders where ... keeps the Order entity tag, so
        // navigation still works on the result rows.
        let program = Program::single(Function::new(
            "f",
            vec![],
            vec![
                Stmt::new(StmtKind::Let(
                    "rows".into(),
                    Expr::Query(QuerySpec::sql("select * from orders where o_id = 1")),
                )),
                Stmt::new(StmtKind::ForEach {
                    var: "o".into(),
                    iter: Expr::var("rows"),
                    body: vec![Stmt::new(StmtKind::Let(
                        "year".into(),
                        Expr::field(Expr::nav(Expr::var("o"), "customer"), "c_birth_year"),
                    ))],
                }),
            ],
        ));
        let (out, _) = run(&program);
        assert_eq!(out.var_snapshot("year"), Snapshot::Scalar(Value::Int(1961)));
    }
}
