//! Runtime values of the interpreter.

use minidb::{Row, Schema, Value};

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// A row object: values plus the schema to resolve field names, plus the
/// originating entity when the row came from the ORM (needed for
/// association navigation).
#[derive(Debug, Clone)]
pub struct RowObj {
    /// Schema describing `values`.
    pub schema: Arc<Schema>,
    /// The row.
    pub values: Arc<Row>,
    /// Entity name when ORM-loaded (`None` for raw query results).
    pub entity: Option<String>,
}

impl RowObj {
    /// Read a field by (possibly qualified) name.
    pub fn field(&self, name: &str) -> Option<Value> {
        self.schema
            .resolve(name)
            .ok()
            .map(|i| self.values[i].clone())
    }
}

/// A client-side column cache built by `Utils.cacheByColumn` (footnote 3 of
/// the paper): rows grouped by the value of a key column.
#[derive(Debug, Clone, Default)]
pub struct ColumnCache {
    rows_by_key: HashMap<Value, Vec<Arc<RowObj>>>,
    len: usize,
}

impl ColumnCache {
    /// Build a cache of `rows` keyed by column `key_col`.
    pub fn build(rows: &[Arc<RowObj>], key_col: &str) -> ColumnCache {
        let mut map: HashMap<Value, Vec<Arc<RowObj>>> = HashMap::new();
        for r in rows {
            if let Some(k) = r.field(key_col) {
                map.entry(k).or_default().push(r.clone());
            }
        }
        ColumnCache {
            rows_by_key: map,
            len: rows.len(),
        }
    }

    /// All rows whose key column equals `key` (empty slice when absent).
    pub fn lookup(&self, key: &Value) -> &[Arc<RowObj>] {
        self.rows_by_key
            .get(key)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of cached rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the cache holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum RtVal {
    /// Absence of a value (procedures without return).
    Unit,
    /// A scalar.
    Scalar(Value),
    /// A row object.
    Row(Arc<RowObj>),
    /// An ordered collection.
    Collection(Arc<Mutex<Vec<RtVal>>>),
    /// A map with deterministic (sorted-key) iteration order.
    Map(Arc<Mutex<BTreeMap<Value, RtVal>>>),
    /// A client-side column cache.
    Cache(Arc<ColumnCache>),
}

impl RtVal {
    /// Wrap a scalar.
    pub fn scalar(v: impl Into<Value>) -> RtVal {
        RtVal::Scalar(v.into())
    }

    /// A fresh empty collection.
    pub fn new_collection() -> RtVal {
        RtVal::Collection(Arc::new(Mutex::new(Vec::new())))
    }

    /// A fresh empty map.
    pub fn new_map() -> RtVal {
        RtVal::Map(Arc::new(Mutex::new(BTreeMap::new())))
    }

    /// The scalar inside, if this is a scalar.
    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            RtVal::Scalar(v) => Some(v),
            _ => None,
        }
    }

    /// Deep, order-preserving snapshot for result comparison.
    pub fn snapshot(&self) -> Snapshot {
        match self {
            RtVal::Unit => Snapshot::Unit,
            RtVal::Scalar(v) => Snapshot::Scalar(v.clone()),
            RtVal::Row(r) => Snapshot::Row((*r.values).clone()),
            RtVal::Collection(c) => {
                Snapshot::List(c.lock().unwrap().iter().map(|v| v.snapshot()).collect())
            }
            RtVal::Map(m) => Snapshot::Map(
                m.lock()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.snapshot()))
                    .collect(),
            ),
            RtVal::Cache(c) => {
                // Caches compare as the multiset of their rows.
                let mut rows: Vec<Snapshot> = Vec::new();
                let mut keys: Vec<&Value> = c.rows_by_key.keys().collect();
                keys.sort();
                for k in keys {
                    for r in &c.rows_by_key[k] {
                        rows.push(Snapshot::Row((*r.values).clone()));
                    }
                }
                Snapshot::List(rows)
            }
        }
    }
}

/// A deep, comparable copy of a runtime value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Snapshot {
    Unit,
    Scalar(Value),
    Row(Vec<Value>),
    List(Vec<Snapshot>),
    Map(Vec<(Value, Snapshot)>),
}

/// Render a scalar with a stable, unambiguous textual form: floats always
/// carry a decimal point (`1.0`, never `1`) via the shortest round-trip
/// formatting, and strings are quoted — so snapshot text never conflates
/// `Int(1)`, `Float(1.0)` and `Str("1")`.
fn write_value(f: &mut std::fmt::Formatter<'_>, v: &Value) -> std::fmt::Result {
    match v {
        Value::Float(x) => write!(f, "{x:?}"),
        Value::Str(s) => write!(f, "{s:?}"),
        other => write!(f, "{other}"),
    }
}

/// Stable textual form used by equivalence diagnostics and repro output.
impl std::fmt::Display for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Snapshot::Unit => write!(f, "unit"),
            Snapshot::Scalar(v) => write_value(f, v),
            Snapshot::Row(vals) => {
                write!(f, "(")?;
                for (i, v) in vals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write_value(f, v)?;
                }
                write!(f, ")")
            }
            Snapshot::List(items) => {
                write!(f, "[")?;
                for (i, s) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "]")
            }
            Snapshot::Map(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write_value(f, k)?;
                    write!(f, ": {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl Snapshot {
    /// Normalize to bag semantics: recursively sort every list. Rewrites
    /// that preserve multisets but not order compare equal afterwards.
    pub fn normalized(mut self) -> Snapshot {
        self.sort_lists();
        self
    }

    fn sort_lists(&mut self) {
        match self {
            Snapshot::List(items) => {
                for i in items.iter_mut() {
                    i.sort_lists();
                }
                items.sort();
            }
            Snapshot::Map(entries) => {
                for (_, v) in entries.iter_mut() {
                    v.sort_lists();
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{Column, DataType};

    fn row(schema: &Arc<Schema>, vals: Vec<Value>) -> Arc<RowObj> {
        Arc::new(RowObj {
            schema: schema.clone(),
            values: Arc::new(vals),
            entity: None,
        })
    }

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Str),
        ]))
    }

    #[test]
    fn row_field_access() {
        let s = schema();
        let r = row(&s, vec![Value::Int(1), Value::str("x")]);
        assert_eq!(r.field("v"), Some(Value::str("x")));
        assert_eq!(r.field("nope"), None);
    }

    #[test]
    fn column_cache_groups_by_key() {
        let s = schema();
        let rows = vec![
            row(&s, vec![Value::Int(1), Value::str("a")]),
            row(&s, vec![Value::Int(2), Value::str("b")]),
            row(&s, vec![Value::Int(1), Value::str("c")]),
        ];
        let cache = ColumnCache::build(&rows, "k");
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.lookup(&Value::Int(1)).len(), 2);
        assert_eq!(cache.lookup(&Value::Int(9)).len(), 0);
    }

    #[test]
    fn snapshots_compare_structurally() {
        let c = RtVal::new_collection();
        if let RtVal::Collection(inner) = &c {
            inner.lock().unwrap().push(RtVal::scalar(2i64));
            inner.lock().unwrap().push(RtVal::scalar(1i64));
        }
        let snap = c.snapshot();
        assert_eq!(
            snap,
            Snapshot::List(vec![
                Snapshot::Scalar(Value::Int(2)),
                Snapshot::Scalar(Value::Int(1))
            ])
        );
        // Normalized comparison is order-insensitive.
        let reordered = Snapshot::List(vec![
            Snapshot::Scalar(Value::Int(1)),
            Snapshot::Scalar(Value::Int(2)),
        ]);
        assert_ne!(snap, reordered);
        assert_eq!(snap.normalized(), reordered.normalized());
    }

    #[test]
    fn map_snapshot_is_key_sorted() {
        let m = RtVal::new_map();
        if let RtVal::Map(inner) = &m {
            inner
                .lock()
                .unwrap()
                .insert(Value::Int(2), RtVal::scalar("b"));
            inner
                .lock()
                .unwrap()
                .insert(Value::Int(1), RtVal::scalar("a"));
        }
        let Snapshot::Map(entries) = m.snapshot() else {
            panic!()
        };
        assert_eq!(entries[0].0, Value::Int(1));
        assert_eq!(entries[1].0, Value::Int(2));
    }

    #[test]
    fn display_keeps_floats_and_strings_unambiguous() {
        let s = Snapshot::List(vec![
            Snapshot::Scalar(Value::Int(1)),
            Snapshot::Scalar(Value::Float(1.0)),
            Snapshot::Scalar(Value::str("1")),
        ]);
        assert_eq!(s.to_string(), "[1, 1.0, \"1\"]");
        let m = Snapshot::Map(vec![(Value::Int(2), Snapshot::Unit)]);
        assert_eq!(m.to_string(), "{2: unit}");
        let r = Snapshot::Row(vec![Value::Float(0.5), Value::Null]);
        assert_eq!(r.to_string(), "(0.5, NULL)");
    }

    #[test]
    fn cache_snapshot_is_deterministic() {
        let s = schema();
        let rows = vec![
            row(&s, vec![Value::Int(2), Value::str("b")]),
            row(&s, vec![Value::Int(1), Value::str("a")]),
        ];
        let c1 = RtVal::Cache(Arc::new(ColumnCache::build(&rows, "k")));
        let rows_rev: Vec<_> = rows.iter().rev().cloned().collect();
        let c2 = RtVal::Cache(Arc::new(ColumnCache::build(&rows_rev, "k")));
        assert_eq!(c1.snapshot(), c2.snapshot());
    }
}
