//! Shared support for the experiment binaries.
//!
//! Each binary regenerates one table/figure of the paper's evaluation
//! (§VIII); see DESIGN.md's per-experiment index. Runtimes are *simulated*
//! (virtual clock), so results are deterministic; the shapes — who wins,
//! by what factor, where crossovers fall — are the reproduction targets.

use cobra_core::{Cobra, CostCatalog};
use imperative::ast::Program;
use netsim::NetworkProfile;
use workloads::harness::{run_on, Fixture};

/// The evaluation scale (rows in the largest relations). Defaults to the
/// paper's 1 million; override with `COBRA_SCALE=<n>` for quicker runs.
pub fn scale() -> usize {
    std::env::var("COBRA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

/// Build a COBRA optimizer for a fixture.
pub fn cobra_for(fixture: &Fixture, net: NetworkProfile, catalog: CostCatalog) -> Cobra {
    fixture
        .cobra_builder()
        .network(net)
        .catalog(catalog)
        .build()
}

/// Optimize `program` and run the chosen rewriting; returns
/// (simulated seconds, feature tags, estimated cost seconds).
pub fn run_cobra_choice(
    fixture: &Fixture,
    net: NetworkProfile,
    catalog: CostCatalog,
    program: &Program,
) -> (f64, Vec<&'static str>, f64) {
    let cobra = cobra_for(fixture, net.clone(), catalog);
    let opt = cobra
        .optimize_program(program)
        .expect("optimization succeeds");
    let mut functions = vec![opt.program.clone()];
    functions.extend(program.functions.iter().skip(1).cloned());
    let rewritten = Program { functions };
    let run = run_on(fixture, net, &rewritten).expect("chosen program runs");
    (run.secs, opt.tags, opt.est_cost_ns / 1e9)
}

/// Run a program and return simulated seconds.
pub fn run_secs(fixture: &Fixture, net: NetworkProfile, program: &Program) -> f64 {
    run_on(fixture, net, program).expect("program runs").secs
}

/// One structured micro-benchmark measurement (what [`bench_record`]
/// returns and the `--json` sinks serialize).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (row label).
    pub name: String,
    /// Free-form configuration string (profile, cardinalities, flags…).
    pub config: String,
    /// Timed iterations (after one warm-up pass).
    pub iters: usize,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Mean iteration, nanoseconds.
    pub mean_ns: f64,
}

impl BenchRecord {
    /// Serialize as one JSON object (stable key order, no trailing comma).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"config\":{},\"iters\":{},\"min_ns\":{:.1},\"mean_ns\":{:.1}}}",
            json_str(&self.name),
            json_str(&self.config),
            self.iters,
            self.min_ns,
            self.mean_ns
        )
    }
}

/// Escape a string for JSON output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A dependency-free micro-benchmark runner (the workspace builds without
/// network access, so criterion is not available). Runs `f` for a warm-up
/// pass, then `iters` timed iterations, and prints min/mean per-iteration
/// wall-clock times. Returns the mean seconds per iteration.
pub fn bench_fn<T>(name: &str, iters: usize, f: impl FnMut() -> T) -> f64 {
    bench_record(name, "", iters, f).mean_ns / 1e9
}

/// The structured-result variant of [`bench_fn`]: same warm-up plus timed
/// loop, but returns the full [`BenchRecord`] (and still prints the
/// human-readable row).
pub fn bench_record<T>(
    name: &str,
    config: &str,
    iters: usize,
    mut f: impl FnMut() -> T,
) -> BenchRecord {
    use std::time::Instant;
    std::hint::black_box(f());
    let iters = iters.max(1);
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{name:<40} min {:>10}  mean {:>10}",
        fmt_secs(min),
        fmt_secs(mean)
    );
    BenchRecord {
        name: name.to_string(),
        config: config.to_string(),
        iters,
        min_ns: min * 1e9,
        mean_ns: mean * 1e9,
    }
}

/// The JSON output path requested for this run: `--json <path>` on the
/// command line, else the `COBRA_BENCH_JSON` environment variable. The
/// fig/opt_time binaries stay print-only when neither is set.
pub fn json_path_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--json") {
        if let Some(p) = args.get(i + 1) {
            return Some(p.into());
        }
    }
    std::env::var_os("COBRA_BENCH_JSON").map(|p| p.into())
}

/// Write `records` as a JSON document `{"bench": name, "records": [...]}`
/// to the path selected by [`json_path_from_args`], if any. Errors are
/// fatal: a benchmark asked to persist results must not lose them quietly.
pub fn emit_json_if_requested(bench: &str, records: &[BenchRecord]) {
    let Some(path) = json_path_from_args() else {
        return;
    };
    let rows: Vec<String> = records
        .iter()
        .map(|r| format!("  {}", r.to_json()))
        .collect();
    let doc = format!(
        "{{\n\"bench\":{},\n\"records\":[\n{}\n]\n}}\n",
        json_str(bench),
        rows.join(",\n")
    );
    std::fs::write(&path, doc).expect("write benchmark JSON");
    println!("wrote {} record(s) to {}", records.len(), path.display());
}

/// Format seconds compactly (3 significant digits, s/ms).
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 100.0 {
        format!("{secs:.0}s")
    } else if secs >= 1.0 {
        format!("{secs:.2}s")
    } else {
        format!("{:.1}ms", secs * 1e3)
    }
}

/// Print a row of fixed-width columns.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_scales_units() {
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(3.456), "3.46s");
        assert_eq!(fmt_secs(3456.0), "3456s");
    }

    #[test]
    fn scale_defaults_to_one_million() {
        if std::env::var("COBRA_SCALE").is_err() {
            assert_eq!(scale(), 1_000_000);
        }
    }
}
