//! Shared support for the experiment binaries.
//!
//! Each binary regenerates one table/figure of the paper's evaluation
//! (§VIII); see DESIGN.md's per-experiment index. Runtimes are *simulated*
//! (virtual clock), so results are deterministic; the shapes — who wins,
//! by what factor, where crossovers fall — are the reproduction targets.

use cobra_core::{Cobra, CostCatalog};
use imperative::ast::Program;
use netsim::NetworkProfile;
use workloads::harness::{run_on, Fixture};

/// The evaluation scale (rows in the largest relations). Defaults to the
/// paper's 1 million; override with `COBRA_SCALE=<n>` for quicker runs.
pub fn scale() -> usize {
    std::env::var("COBRA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

/// Build a COBRA optimizer for a fixture.
pub fn cobra_for(fixture: &Fixture, net: NetworkProfile, catalog: CostCatalog) -> Cobra {
    fixture
        .cobra_builder()
        .network(net)
        .catalog(catalog)
        .build()
}

/// Optimize `program` and run the chosen rewriting; returns
/// (simulated seconds, feature tags, estimated cost seconds).
pub fn run_cobra_choice(
    fixture: &Fixture,
    net: NetworkProfile,
    catalog: CostCatalog,
    program: &Program,
) -> (f64, Vec<&'static str>, f64) {
    let cobra = cobra_for(fixture, net.clone(), catalog);
    let opt = cobra
        .optimize_program(program)
        .expect("optimization succeeds");
    let mut functions = vec![opt.program.clone()];
    functions.extend(program.functions.iter().skip(1).cloned());
    let rewritten = Program { functions };
    let run = run_on(fixture, net, &rewritten).expect("chosen program runs");
    (run.secs, opt.tags, opt.est_cost_ns / 1e9)
}

/// Run a program and return simulated seconds.
pub fn run_secs(fixture: &Fixture, net: NetworkProfile, program: &Program) -> f64 {
    run_on(fixture, net, program).expect("program runs").secs
}

/// A dependency-free micro-benchmark runner (the workspace builds without
/// network access, so criterion is not available). Runs `f` for a warm-up
/// pass, then `iters` timed iterations, and prints min/mean per-iteration
/// wall-clock times. Returns the mean seconds per iteration.
pub fn bench_fn<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    use std::time::Instant;
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{name:<40} min {:>10}  mean {:>10}",
        fmt_secs(min),
        fmt_secs(mean)
    );
    mean
}

/// Format seconds compactly (3 significant digits, s/ms).
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 100.0 {
        format!("{secs:.0}s")
    } else if secs >= 1.0 {
        format!("{secs:.2}s")
    } else {
        format!("{:.1}ms", secs * 1e3)
    }
}

/// Print a row of fixed-width columns.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_scales_units() {
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(3.456), "3.46s");
        assert_eq!(fmt_secs(3456.0), "3456s");
    }

    #[test]
    fn scale_defaults_to_one_million() {
        if std::env::var("COBRA_SCALE").is_err() {
            assert_eq!(scale(), 1_000_000);
        }
    }
}
