//! Figure 15: performance benefits due to COBRA on the Wilos-like
//! patterns — Original vs Heuristic (the paper's citation \[4\], push-to-SQL) vs COBRA(AF=50)
//! vs COBRA(AF=1), on the fast local network with the largest relations at
//! the configured scale (paper: 1 million; `COBRA_SCALE` to override).
//!
//! The y-axis of the paper's figure is the fraction of the original
//! program's runtime; the original's absolute time is printed above each
//! bar — this binary prints the same numbers as a table.

use bench_support::{cobra_for, fmt_secs, run_secs, scale, BenchRecord};
use cobra_core::{heuristic, CostCatalog};
use imperative::ast::Program;
use netsim::NetworkProfile;
use workloads::wilos::{self, Pattern};

fn main() {
    let scale = scale();
    let net = NetworkProfile::fast_local();
    println!("\nFigure 15: fraction of original program time (fast local network, scale {scale})");
    println!(
        "{:<4} {:>10} {:>10} {:>12} {:>12}  {:<28}",
        "P", "Original", "Heuristic", "COBRA(50)", "COBRA(1)", "COBRA choices (AF=50 | AF=1)"
    );
    println!("{:-<88}", "");

    let mut records: Vec<BenchRecord> = Vec::new();
    for pattern in Pattern::all() {
        let program = wilos::representative(pattern);

        // Each variant runs on a fresh fixture (pattern A updates rows).
        let fresh = || wilos::build_fixture(scale, 7);

        let t_orig = run_secs(&fresh(), net.clone(), &program);

        // Heuristic rewrite.
        let fixture = fresh();
        let rewritten = heuristic::optimize_heuristic(&program, &fixture.mapping);
        let heuristic_program = with_entry(&program, rewritten);
        let t_heur = run_secs(&fixture, net.clone(), &heuristic_program);

        // COBRA at AF=50 and AF=1.
        let (t_c50, tags50) = cobra_run(&fresh(), net.clone(), 50.0, &program);
        let (t_c1, tags1) = cobra_run(&fresh(), net.clone(), 1.0, &program);

        println!(
            "{:<4} {:>10} {:>10} {:>12} {:>12}  {:<28}",
            format!("{pattern:?}"),
            fmt_secs(t_orig),
            frac(t_heur, t_orig),
            frac(t_c50, t_orig),
            frac(t_c1, t_orig),
            format!("{} | {}", tags50.join("+"), tags1.join("+")),
        );

        for (variant, secs) in [
            ("original", t_orig),
            ("heuristic", t_heur),
            ("cobra-af50", t_c50),
            ("cobra-af1", t_c1),
        ] {
            records.push(BenchRecord {
                name: format!("fig15/{pattern:?}/{variant}"),
                config: format!("scale={scale} net={}", net.name()),
                iters: 1,
                min_ns: secs * 1e9,
                mean_ns: secs * 1e9,
            });
        }
        // Shape check from the paper: COBRA always performs at least as
        // well as the original and the heuristic (small tolerance for the
        // simulator's fixed per-statement costs).
        let floor = t_orig.min(t_heur) * 1.10;
        if t_c50 > floor || t_c1 > floor {
            println!(
                "    !! COBRA slower than min(original, heuristic): c50={} c1={} floor={}",
                fmt_secs(t_c50),
                fmt_secs(t_c1),
                fmt_secs(floor)
            );
        }
    }
    println!("{:-<88}", "");
    println!("fractions < 1.00 are improvements over Original; paper reports up to 95% over the heuristic");
    bench_support::emit_json_if_requested("fig15", &records);
}

fn cobra_run(
    fixture: &workloads::Fixture,
    net: NetworkProfile,
    af: f64,
    program: &Program,
) -> (f64, Vec<&'static str>) {
    let cobra = cobra_for(fixture, net.clone(), CostCatalog::with_af(af));
    let opt = cobra.optimize_program(program).expect("optimizes");
    let rewritten = with_entry(program, opt.program);
    (run_secs(fixture, net, &rewritten), opt.tags)
}

/// Replace the entry function, keeping helper functions callable.
fn with_entry(program: &Program, entry: imperative::ast::Function) -> Program {
    let mut functions = vec![entry];
    functions.extend(program.functions.iter().skip(1).cloned());
    Program { functions }
}

fn frac(t: f64, orig: f64) -> String {
    format!("{:.3}", t / orig)
}
