//! COBRA optimization time (§VIII: "the time taken for optimization was
//! very small (<1s) for all programs") — measured in *real* wall-clock
//! time, since optimization is the one part of the reproduction that runs
//! the actual algorithm rather than a simulation.

use bench_support::cobra_for;
use cobra_core::CostCatalog;
use netsim::NetworkProfile;
use std::time::Instant;
use workloads::{motivating, wilos};

fn main() {
    let mut records: Vec<bench_support::BenchRecord> = Vec::new();
    println!("\nCOBRA optimization wall-clock time (per program)");
    println!(
        "{:<14} {:>12} {:>14} {:>10} {:>8}",
        "program", "time", "alternatives", "groups", "exprs"
    );
    println!("{:-<64}", "");

    // Optimization-time measurements need statistics, not bulk data: use
    // modest fixtures so the run reflects optimizer work only.
    let fx_m = motivating::build_fixture(10_000, 2_000, 3);
    let net = NetworkProfile::slow_remote();
    let cobra = cobra_for(&fx_m, net.clone(), CostCatalog::default());
    for (name, program) in [
        ("P0", motivating::p0()),
        ("P1", motivating::p1()),
        ("P2", motivating::p2()),
        ("M0", motivating::m0()),
    ] {
        let start = Instant::now();
        let opt = cobra.optimize_program(&program).expect("optimizes");
        let elapsed = start.elapsed();
        println!(
            "{:<14} {:>9.2}ms {:>14} {:>10} {:>8}",
            name,
            elapsed.as_secs_f64() * 1e3,
            opt.alternatives,
            opt.groups,
            opt.exprs
        );
        assert!(elapsed.as_secs_f64() < 1.0, "paper: optimization < 1s");
        records.push(bench_support::BenchRecord {
            name: format!("opt_time/{name}"),
            config: "net=slow-remote".to_string(),
            iters: 1,
            min_ns: elapsed.as_secs_f64() * 1e9,
            mean_ns: elapsed.as_secs_f64() * 1e9,
        });
    }

    let fx_w = wilos::build_fixture(10_000, 3);
    let cobra = cobra_for(&fx_w, NetworkProfile::fast_local(), CostCatalog::default());
    for pattern in wilos::Pattern::all() {
        let program = wilos::representative(pattern);
        let start = Instant::now();
        let opt = cobra.optimize_program(&program).expect("optimizes");
        let elapsed = start.elapsed();
        println!(
            "{:<14} {:>9.2}ms {:>14} {:>10} {:>8}",
            format!("pattern {pattern:?}"),
            elapsed.as_secs_f64() * 1e3,
            opt.alternatives,
            opt.groups,
            opt.exprs
        );
        assert!(elapsed.as_secs_f64() < 1.0, "paper: optimization < 1s");
        records.push(bench_support::BenchRecord {
            name: format!("opt_time/pattern-{pattern:?}"),
            config: "net=fast-local".to_string(),
            iters: 1,
            min_ns: elapsed.as_secs_f64() * 1e9,
            mean_ns: elapsed.as_secs_f64() * 1e9,
        });
    }
    println!("{:-<64}", "");
    println!("all optimizations completed in < 1s, matching the paper's report");
    bench_support::emit_json_if_requested("opt_time", &records);
}
