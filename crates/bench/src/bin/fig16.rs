//! Figure 16 (Appendix A): the 32 code fragments where cost-based
//! rewriting applies, with their pattern ids and source locations.

use workloads::wilos;

fn main() {
    println!("\nFigure 16: code fragments for cost based rewriting");
    println!(
        "{:<6} {:<10} {:<44} {:>6}",
        "Sl.No.", "Pattern", "File Name", "Line"
    );
    println!("{:-<70}", "");
    for f in wilos::fragments() {
        println!(
            "{:<6} {:<10} {:<44} {:>6}",
            f.id,
            format!("{:?}", f.pattern),
            f.file,
            f.line
        );
    }
    println!("{:-<70}", "");
    println!("32 fragments across patterns A-F, mirroring the paper's appendix");
    let records: Vec<bench_support::BenchRecord> = wilos::fragments()
        .iter()
        .map(|f| bench_support::BenchRecord {
            name: format!("fig16/fragment-{}", f.id),
            config: format!("pattern={:?} file={} line={}", f.pattern, f.file, f.line),
            iters: 1,
            min_ns: 0.0,
            mean_ns: 0.0,
        })
        .collect();
    bench_support::emit_json_if_requested("fig16", &records);
}
