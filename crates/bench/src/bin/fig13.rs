//! Figures 13a / 13b / 13c: performance of P0 (Hibernate), P1 (SQL join),
//! P2 (prefetching) and the COBRA choice under varying network conditions
//! and cardinalities.
//!
//! Usage: `fig13 [a|b|c|all] [--quick]`
//!
//! * 13a — slow remote network (500 kbps, 250 ms), |Customer| = 73 000,
//!   |Orders| ∈ {100, 1k, 10k, 100k, 1M}
//! * 13b — fast local network (6 Gbps, 0.5 ms), same cardinalities
//! * 13c — slow remote network, |Orders| = 10 000,
//!   |Customer| ∈ {10, 100, 1k, 10k, 100k}
//!
//! `--quick` divides every cardinality by 10 (also `COBRA_QUICK=1`).

use bench_support::{cobra_for, fmt_secs, print_row, run_cobra_choice, run_secs, BenchRecord};
use cobra_core::CostCatalog;
use netsim::NetworkProfile;
use workloads::motivating;

struct Config {
    name: &'static str,
    net: NetworkProfile,
    /// (orders, customers) grid.
    grid: Vec<(usize, usize)>,
    vary: &'static str,
}

fn configs(quick: bool) -> Vec<Config> {
    let d = if quick { 10 } else { 1 };
    let orders_grid = [100, 1_000, 10_000, 100_000, 1_000_000];
    let customers_grid = [10, 100, 1_000, 10_000, 100_000];
    vec![
        Config {
            name: "13a: slow remote network, varying Orders (Customers = 73k)",
            net: NetworkProfile::slow_remote(),
            grid: orders_grid.iter().map(|&o| (o / d, 73_000 / d)).collect(),
            vary: "Orders",
        },
        Config {
            name: "13b: fast local network, varying Orders (Customers = 73k)",
            net: NetworkProfile::fast_local(),
            grid: orders_grid.iter().map(|&o| (o / d, 73_000 / d)).collect(),
            vary: "Orders",
        },
        Config {
            name: "13c: slow remote network, varying Customers (Orders = 10k)",
            net: NetworkProfile::slow_remote(),
            grid: customers_grid
                .iter()
                .map(|&c| (10_000 / d, c / d.min(c)))
                .collect(),
            vary: "Customers",
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("COBRA_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let mut records: Vec<BenchRecord> = Vec::new();
    for (i, cfg) in configs(quick).into_iter().enumerate() {
        let tag = ["a", "b", "c"][i];
        if which != "all" && which != tag {
            continue;
        }
        run_config(cfg, tag, &mut records);
    }
    bench_support::emit_json_if_requested("fig13", &records);
}

fn run_config(cfg: Config, tag: &str, records: &mut Vec<BenchRecord>) {
    println!("\nFigure {}", cfg.name);
    println!(
        "net: bandwidth {:.1} Mbit/s, RTT {:.1} ms",
        cfg.net.bytes_per_sec() * 8.0 / 1e6,
        cfg.net.round_trip_ns() as f64 / 1e6
    );
    let widths = [10usize, 12, 12, 12, 12, 24];
    print_row(
        &[
            format!("#{}", cfg.vary),
            "Hibernate(P0)".into(),
            "SQL(P1)".into(),
            "Prefetch(P2)".into(),
            "COBRA".into(),
            "COBRA choice".into(),
        ],
        &widths,
    );
    for (orders, customers) in cfg.grid {
        let fixture = motivating::build_fixture(orders, customers, 42);
        let t0 = run_secs(&fixture, cfg.net.clone(), &motivating::p0());
        let t1 = run_secs(&fixture, cfg.net.clone(), &motivating::p1());
        let t2 = run_secs(&fixture, cfg.net.clone(), &motivating::p2());
        let (tc, tags, est) = run_cobra_choice(
            &fixture,
            cfg.net.clone(),
            CostCatalog::default(),
            &motivating::p0(),
        );
        let n = if cfg.vary == "Orders" {
            orders
        } else {
            customers
        };
        print_row(
            &[
                n.to_string(),
                fmt_secs(t0),
                fmt_secs(t1),
                fmt_secs(t2),
                fmt_secs(tc),
                format!("{} (est {})", tags.join("+"), fmt_secs(est)),
            ],
            &widths,
        );
        let cell = format!(
            "orders={orders} customers={customers} net={}",
            cfg.net.name()
        );
        for (variant, secs) in [("P0", t0), ("P1", t1), ("P2", t2), ("COBRA", tc)] {
            records.push(BenchRecord {
                name: format!("fig13{tag}/{variant}/{}={n}", cfg.vary),
                config: cell.clone(),
                iters: 1,
                min_ns: secs * 1e9,
                mean_ns: secs * 1e9,
            });
        }
        // Shape check: COBRA must track the best alternative.
        let best = t0.min(t1).min(t2);
        if tc > best * 1.5 {
            println!(
                "    !! COBRA choice slower than best alternative ({})",
                fmt_secs(best)
            );
        }
        // Sanity: the estimated cost orders alternatives the same way the
        // measurements do for the chosen point (soft check, printed only).
        let _ = cobra_for(&fixture, cfg.net.clone(), CostCatalog::default());
    }
}
