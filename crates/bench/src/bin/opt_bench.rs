//! Optimizer-throughput benchmark over the genprog corpus.
//!
//! Measures *real* wall-clock optimization time (the one part of the
//! reproduction that runs the actual algorithm rather than a simulation):
//!
//! * **single-program latency** — `Cobra::optimize_program` per
//!   (genprog seed × network profile), min/mean over `--iters` runs;
//! * **batch throughput** — `Cobra::optimize_batch_with_workers` over a
//!   replicated corpus program at 1/2/4/8 workers.
//!
//! * **estimation error** — on the *skewed* genprog corpus, the cost
//!   model's calibration: geomean multiplicative error
//!   `exp(mean |ln(est/actual)|)` of estimated vs simulated program
//!   cost, for the uniform-NDV baseline and for histogram + runtime
//!   feedback estimation (the adaptive-statistics fidelity trajectory).
//!
//! * **execution throughput** — real wall-clock query execution on a
//!   [`GenConfig::large`] fixture (1M+ rows per table): scan/filter/
//!   join/aggregate plans run through `minidb::Executor` on the columnar
//!   and row engines *interleaved* (A/B/A/B, cancelling thermal drift),
//!   reporting executions/sec, rows/sec and the per-query and geomean
//!   columnar-over-row speedup.
//!
//! * **serving** — Cobra-as-a-service end to end
//!   (`cobra_server::CobraService`): cold submissions against fresh
//!   tenants (full search per request) vs warm cache-hit submissions at
//!   1/4/8 concurrent sessions, reporting submissions/sec and the
//!   warm-over-cold per-submission speedup.
//!
//! * **soak** — sustained mixed load over the *wire* under fault
//!   injection: several retrying `WireClient`s drive a cold/warm
//!   submission mix against a server running `FaultPlan::chaos`,
//!   reporting p50/p95/p99 submission latency plus ok/error/shed/retry/
//!   fault/replay counts (the ROADMAP's sustained-load soak item).
//!
//! Results land in `BENCH_optimizer.json` (override with `--json <path>`
//! or `COBRA_BENCH_JSON`) so every perf PR leaves a machine-readable
//! trajectory. Pass `--baseline <prior.json>` to embed a previous run and
//! compute the geometric-mean speedup against it.
//!
//! Usage: `opt_bench [--seeds N] [--iters N] [--batch N] [--json PATH]
//!                   [--baseline PATH] [--smoke]`
//!
//! `--smoke` shrinks everything (3 seeds, 1 iter, batch 4) for CI.

use bench_support::{json_str, BenchRecord};
use cobra_core::{Cobra, ValidationConfig, VerifyLevel};
use cobra_server::{CobraService, ServerConfig, TenantSpec};
use imperative::ast::Program;
use minidb::{ExecEngine, Executor, FeedbackStore};
use netsim::NetworkProfile;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use workloads::genprog::{GenCase, GenConfig, GenSchema};
use workloads::harness::{run_on, run_on_with_feedback};
use workloads::rng::StdRng;

struct Config {
    seeds: u64,
    iters: usize,
    batch: usize,
    workers: Vec<usize>,
    /// Skewed-corpus size for the estimation-error metric.
    est_seeds: u64,
    /// Skewed-corpus size for the validated-selection metric.
    val_seeds: u64,
    /// Whether `--smoke` was passed (enables the CI win-rate gate).
    smoke: bool,
    /// Timed iterations per (query × engine) in the execution section.
    exec_iters: usize,
    /// Row scale applied to the [`GenConfig::large`] execution fixture
    /// (1.0 = the full 1M+ rows; smoke shrinks it).
    exec_scale: f64,
    /// Fresh tenants (= full searches) in the serving cold phase.
    serving_cold: usize,
    /// Warm submissions per session per concurrency level.
    serving_submits: usize,
    /// Concurrent retrying clients in the fault-injected soak.
    soak_clients: usize,
    /// Submissions per client in the soak.
    soak_rounds: usize,
    json: std::path::PathBuf,
    baseline: Option<std::path::PathBuf>,
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let (d_seeds, d_iters, d_batch, d_est) = if smoke { (3, 1, 4, 4) } else { (24, 5, 16, 20) };
    // Smoke shrinks the 1M+-row execution fixture to ~2% (tens of
    // thousands of rows) so CI stays fast; timings are report-only there.
    let (d_exec_iters, d_exec_scale) = if smoke { (2, 0.02) } else { (5, 1.0) };
    let (d_serving_cold, d_serving_submits) = if smoke { (3, 10) } else { (8, 50) };
    let (d_soak_clients, d_soak_rounds) = if smoke { (2, 24) } else { (4, 120) };
    let d_val = if smoke { 4 } else { 12 };
    Config {
        seeds: flag("--seeds")
            .and_then(|s| s.parse().ok())
            .unwrap_or(d_seeds),
        iters: flag("--iters")
            .and_then(|s| s.parse().ok())
            .unwrap_or(d_iters),
        batch: flag("--batch")
            .and_then(|s| s.parse().ok())
            .unwrap_or(d_batch),
        est_seeds: flag("--est-seeds")
            .and_then(|s| s.parse().ok())
            .unwrap_or(d_est),
        val_seeds: flag("--val-seeds")
            .and_then(|s| s.parse().ok())
            .unwrap_or(d_val),
        smoke,
        exec_iters: flag("--exec-iters")
            .and_then(|s| s.parse().ok())
            .unwrap_or(d_exec_iters),
        exec_scale: flag("--exec-scale")
            .and_then(|s| s.parse().ok())
            .unwrap_or(d_exec_scale),
        serving_cold: flag("--serving-cold")
            .and_then(|s| s.parse().ok())
            .unwrap_or(d_serving_cold),
        serving_submits: flag("--serving-submits")
            .and_then(|s| s.parse().ok())
            .unwrap_or(d_serving_submits),
        soak_clients: flag("--soak-clients")
            .and_then(|s| s.parse().ok())
            .unwrap_or(d_soak_clients),
        soak_rounds: flag("--soak-rounds")
            .and_then(|s| s.parse().ok())
            .unwrap_or(d_soak_rounds),
        workers: vec![1, 2, 4, 8],
        json: flag("--json")
            .map(Into::into)
            .or_else(|| std::env::var_os("COBRA_BENCH_JSON").map(Into::into))
            .unwrap_or_else(|| "BENCH_optimizer.json".into()),
        baseline: flag("--baseline").map(Into::into),
    }
}

fn profiles() -> Vec<NetworkProfile> {
    vec![
        NetworkProfile::slow_remote(),
        NetworkProfile::new("mid-range", 100e6, 10.0),
        NetworkProfile::fast_local(),
    ]
}

/// Extract `"key":<number>` from our own JSON output (good enough for the
/// flat documents this binary writes; avoids a JSON-parser dependency).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = doc.find(&pat)? + pat.len();
    let rest = &doc[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Checked-in floor for the smoke-mode validated-selection gate: the
/// fraction of skewed cases where the validated pick's full-fixture
/// runtime is no worse than the cost-only pick's. Validation that
/// promotes a plan which loses on the full fixture drags this below the
/// floor and fails CI.
const VALIDATION_SMOKE_FLOOR: f64 = 0.95;

/// The validated-selection section: cost-only argmin vs runtime-validated
/// selection on the skewed genprog corpus, judged by full-fixture runs.
struct ValidationBench {
    cases: u64,
    /// Cases where the validated pick differs from the cost-only argmin.
    differing: u64,
    /// Cases where validation promoted a measured non-argmin candidate.
    promotions: u64,
    /// Cases where the measured ranking disagreed with the predicted one.
    disagreements: u64,
    /// Fraction of cases where each selector's pick is no slower than the
    /// other's on the full fixture (ties count for both).
    validated_win_rate: f64,
    cost_only_win_rate: f64,
    /// Geomean full-fixture speedup of the validated pick over the
    /// cost-only pick (1.0 = identical choices everywhere).
    geomean_speedup: f64,
}

/// Optimize every skewed case twice — cost-only and with
/// [`ValidationConfig::default`] — then run both chosen programs on the
/// *full* fixture (ground truth) and score which selector picked the
/// program that actually runs faster.
fn bench_validation(seeds: u64) -> ValidationBench {
    let gen_cfg = GenConfig::skewed();
    let net = NetworkProfile::slow_remote();
    let mut differing = 0;
    let mut promotions = 0;
    let mut disagreements = 0;
    let mut validated_wins = 0u64;
    let mut cost_only_wins = 0u64;
    let mut log_speedups = Vec::new();
    for seed in 0..seeds {
        let case = GenCase::from_seed(7000 + seed, &gen_cfg);
        let fixture = case.fixture();
        let cost_only = fixture.cobra_builder().network(net.clone()).build();
        let validated = fixture
            .cobra_builder()
            .network(net.clone())
            .validate_selection(ValidationConfig::default())
            .build();
        let a = cost_only
            .optimize_program(&case.program)
            .expect("optimizes");
        let b = validated
            .optimize_program(&case.program)
            .expect("optimizes");
        if let Some(v) = &b.validation {
            if v.promoted_rank > 0 {
                promotions += 1;
            }
            if !v.agreement {
                disagreements += 1;
            }
        }
        if a.program != b.program {
            differing += 1;
        }
        // Ground truth: each pick simulated on its own fresh full-size
        // fixture (deterministic, so one run per pick suffices).
        let t_a = run_on(
            &case.fixture(),
            net.clone(),
            &case.program.with_entry(a.program),
        )
        .expect("cost-only pick runs")
        .secs;
        let t_b = run_on(
            &case.fixture(),
            net.clone(),
            &case.program.with_entry(b.program),
        )
        .expect("validated pick runs")
        .secs;
        if t_b <= t_a * (1.0 + 1e-9) {
            validated_wins += 1;
        }
        if t_a <= t_b * (1.0 + 1e-9) {
            cost_only_wins += 1;
        }
        log_speedups.push((t_a.max(1e-12) / t_b.max(1e-12)).ln());
    }
    let rate = |wins: u64| wins as f64 / seeds.max(1) as f64;
    let out = ValidationBench {
        cases: seeds,
        differing,
        promotions,
        disagreements,
        validated_win_rate: rate(validated_wins),
        cost_only_win_rate: rate(cost_only_wins),
        geomean_speedup: (log_speedups.iter().sum::<f64>() / log_speedups.len().max(1) as f64)
            .exp(),
    };
    println!(
        "\nvalidated selection ({} skewed cases): win-rate validated {:.2} vs cost-only {:.2}; \
         {} differing pick(s), {} promotion(s), {} measured disagreement(s), \
         geomean speedup x{:.3}",
        out.cases,
        out.validated_win_rate,
        out.cost_only_win_rate,
        out.differing,
        out.promotions,
        out.disagreements,
        out.geomean_speedup
    );
    out
}

struct BatchRow {
    profile: String,
    workers: usize,
    batch: usize,
    total_ns: f64,
    per_program_ns: f64,
}

/// One engine's timings for one benchmark query.
struct EngineTiming {
    mean_ns: f64,
    execs_per_sec: f64,
    rows_per_sec: f64,
}

/// Columnar-vs-row measurements for one benchmark query.
struct ExecQueryRow {
    name: &'static str,
    sql: String,
    /// Base-table rows the query reads per execution.
    input_rows: u64,
    /// Result rows per execution (identical across engines by the
    /// equivalence contract; asserted before timing).
    out_rows: u64,
    /// Whether this query counts toward the scan/filter/join speedup gate.
    gated: bool,
    columnar: EngineTiming,
    row: EngineTiming,
    speedup: f64,
}

/// The whole execution-throughput section.
struct ExecSection {
    corpus_rows: u64,
    iters: usize,
    scale: f64,
    geomean_speedup: f64,
    queries: Vec<ExecQueryRow>,
}

/// Run the scan/filter/join/aggregate plans on both engines, interleaved,
/// over a [`GenConfig::large`] fixture scaled by `scale`.
fn bench_execution(iters: usize, scale: f64) -> ExecSection {
    // A fixed-seed large schema: ≥2 tables, t1 FK-linked to t0, 1M+ rows
    // per table at scale 1.0 (GenSchema guarantees the shape).
    let mut rng = StdRng::seed_from_u64(2024);
    let schema = GenSchema::generate(&mut rng, &GenConfig::large());
    let fixture = schema.build_fixture(0xC0B2A, scale);
    let db = fixture.db.read().unwrap();
    let corpus_rows: u64 = schema
        .tables
        .iter()
        .map(|t| db.table(&t.name).unwrap().row_count() as u64)
        .sum();
    let t0 = db.table("t0").unwrap().row_count() as u64;
    let t1 = db.table("t1").unwrap().row_count() as u64;
    println!(
        "\nexecution corpus: {} tables, {corpus_rows} rows total (scale {scale})",
        schema.tables.len()
    );

    // The operator mix of the data plane: a full-column scan reduction, a
    // multi-conjunct filter, a 1M×1M FK hash join, and a grouped
    // aggregate. Aggregating outputs keeps result materialization out of
    // the measurement, so the timing isolates the operators themselves.
    let queries: [(&'static str, String, u64, bool); 4] = [
        (
            "scan",
            "select sum(t0_a) as s from t0".to_string(),
            t0,
            true,
        ),
        (
            "filter",
            "select count(*) as n from t0 where t0_a < 20 and t0_b < 25".to_string(),
            t0,
            true,
        ),
        (
            "join",
            "select count(*) as n from t0 join t1 on t0_id = t1_fk where t1_b < 10".to_string(),
            t0 + t1,
            true,
        ),
        (
            "aggregate",
            "select t0_a, count(*) as n, sum(t0_b) as s from t0 group by t0_a".to_string(),
            t0,
            false,
        ),
    ];

    let params = HashMap::new();
    let mut rows_out = Vec::new();
    for (name, sql, input_rows, gated) in queries {
        let plan = minidb::sql::parse(&sql).expect("benchmark query parses");
        let run = |engine: ExecEngine| {
            Executor::new(&db, &fixture.funcs)
                .with_engine(engine)
                .execute(&plan, &params)
                .expect("benchmark query executes")
        };
        // Warm-up both engines (also populates the columnar cache) and
        // check the equivalence contract before timing anything.
        let c = run(ExecEngine::Columnar);
        let r = run(ExecEngine::Row);
        assert_eq!(c.rows, r.rows, "engines must agree on {name}");
        assert_eq!(c.work, r.work, "work accounting must agree on {name}");
        let out_rows = c.row_count();

        // Interleaved timing: columnar, row, columnar, row, …
        let mut col_ns = Vec::with_capacity(iters);
        let mut row_ns = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(run(ExecEngine::Columnar));
            col_ns.push(t.elapsed().as_secs_f64() * 1e9);
            let t = Instant::now();
            std::hint::black_box(run(ExecEngine::Row));
            row_ns.push(t.elapsed().as_secs_f64() * 1e9);
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let timing = |ns: &[f64]| {
            let mean_ns = mean(ns);
            EngineTiming {
                mean_ns,
                execs_per_sec: 1e9 / mean_ns,
                rows_per_sec: input_rows as f64 * 1e9 / mean_ns,
            }
        };
        let columnar = timing(&col_ns);
        let row = timing(&row_ns);
        let speedup = row.mean_ns / columnar.mean_ns;
        println!(
            "exec/{name}: columnar {:.2} ms ({:.2e} rows/s), row {:.2} ms — {speedup:.2}x",
            columnar.mean_ns / 1e6,
            columnar.rows_per_sec,
            row.mean_ns / 1e6,
        );
        rows_out.push(ExecQueryRow {
            name,
            sql,
            input_rows,
            out_rows,
            gated,
            columnar,
            row,
            speedup,
        });
    }

    let gated: Vec<f64> = rows_out
        .iter()
        .filter(|q| q.gated)
        .map(|q| q.speedup.ln())
        .collect();
    let geomean_speedup = (gated.iter().sum::<f64>() / gated.len() as f64).exp();
    println!("geomean columnar speedup (scan/filter/join): {geomean_speedup:.2}x");

    ExecSection {
        corpus_rows,
        iters,
        scale,
        geomean_speedup,
        queries: rows_out,
    }
}

/// One warm-serving measurement at a fixed session count.
struct ServingRow {
    sessions: usize,
    submissions: usize,
    total_ns: f64,
    per_submission_ns: f64,
    submissions_per_sec: f64,
}

/// The Cobra-as-a-service section: cold full-search submissions vs warm
/// cache-hit submissions at several concurrency levels.
struct ServingSection {
    cold_tenants: usize,
    cold_per_submission_ns: f64,
    cold_searches_per_sec: f64,
    /// Cold per-submission time over warm per-submission time at one
    /// session — what the plan cache buys a serving deployment.
    warm_over_cold_speedup: f64,
    rows: Vec<ServingRow>,
}

fn bench_serving(cold_tenants: usize, submissions: usize) -> ServingSection {
    use cobra_server::CacheOutcome;
    // Seed 0: read-only with a multi-millisecond search; tiny rows keep
    // execution cheap, so the cold path is dominated by the search the
    // warm path skips.
    let case = GenCase::from_seed(0, &GenConfig::default()).with_row_scale(0.2);
    let fx = case.fixture();
    let concurrency = [1usize, 4, 8];
    // Pin the worker pool explicitly: the default follows host
    // parallelism, which on a small CI runner would serialize admission
    // and turn the concurrency sweep into a queueing benchmark.
    let service = CobraService::new(ServerConfig {
        max_concurrent: *concurrency.iter().max().unwrap(),
        ..ServerConfig::default()
    });
    let tenant_spec = |name: String, fx: &workloads::harness::Fixture| {
        TenantSpec::new(name, fx.db.clone(), fx.mapping.clone(), fx.funcs.clone()).feedback(false)
    };

    // Cold: a fresh tenant per submission (fresh database instance id ⇒
    // cold cache key), so every request pays the full optimizer search.
    let mut cold_total_ns = 0.0f64;
    for i in 0..cold_tenants {
        let fx_cold = fx.fork_db();
        let tenant = service.register_tenant(tenant_spec(format!("cold{i}"), &fx_cold));
        let session = service.open_session(tenant).expect("open session");
        let t = Instant::now();
        let reply = service.submit(session, &case.program).expect("cold submit");
        cold_total_ns += t.elapsed().as_secs_f64() * 1e9;
        assert_eq!(reply.cache, CacheOutcome::Miss, "fresh tenant must miss");
    }
    let cold_per_submission_ns = cold_total_ns / cold_tenants as f64;
    let cold_searches_per_sec = 1e9 / cold_per_submission_ns;
    println!(
        "\nserving/cold: {:.3} ms/submission ({:.1} searches/s) over {cold_tenants} fresh tenants",
        cold_per_submission_ns / 1e6,
        cold_searches_per_sec
    );

    // Warm: one tenant, primed once; every further submission is a cache
    // hit regardless of how many sessions race.
    let tenant = service.register_tenant(tenant_spec("warm".to_string(), &fx));
    let prime = service.open_session(tenant).expect("open session");
    let first = service
        .submit(prime, &case.program)
        .expect("priming submit");
    assert_eq!(first.cache, CacheOutcome::Miss);

    let mut rows = Vec::new();
    for &sessions in &concurrency {
        let t = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..sessions {
                let service = service.clone();
                let program = &case.program;
                scope.spawn(move || {
                    let session = service.open_session(tenant).expect("open session");
                    for _ in 0..submissions {
                        let reply = service.submit(session, program).expect("warm submit");
                        assert_eq!(reply.cache, CacheOutcome::Hit, "warm must hit");
                    }
                    service.close_session(session).expect("close session");
                });
            }
        });
        let total_ns = t.elapsed().as_secs_f64() * 1e9;
        let n = (sessions * submissions) as f64;
        let row = ServingRow {
            sessions,
            submissions: sessions * submissions,
            total_ns,
            per_submission_ns: total_ns / n,
            submissions_per_sec: n * 1e9 / total_ns,
        };
        println!(
            "serving/warm/sessions={sessions}: {:.1} µs/submission, {:.0} submissions/s",
            row.per_submission_ns / 1e3,
            row.submissions_per_sec
        );
        rows.push(row);
    }
    let warm_over_cold_speedup = cold_per_submission_ns / rows[0].per_submission_ns;
    println!("serving warm-over-cold speedup (1 session): {warm_over_cold_speedup:.1}x");
    service.shutdown();

    ServingSection {
        cold_tenants,
        cold_per_submission_ns,
        cold_searches_per_sec,
        warm_over_cold_speedup,
        rows,
    }
}

/// The sustained-load soak: mixed cold/warm traffic over the wire with
/// `FaultPlan::chaos` injecting and retrying clients recovering.
struct SoakSection {
    clients: usize,
    rounds: usize,
    submissions: u64,
    /// Submissions that landed (possibly after client retries).
    ok: u64,
    /// Submissions whose typed error survived the whole retry budget.
    errors: u64,
    /// Requests the server shed with `Overloaded`.
    shed: u64,
    /// Reconnect-and-retry attempts across every client.
    client_retries: u64,
    /// Faults the plan actually injected (all kinds).
    faults_injected: u64,
    /// Retried submissions answered from the idempotency reply window.
    idempotent_replays: u64,
    /// Worker panics isolated into `ServerError::Internal`.
    internal_errors: u64,
    mean_ns: f64,
    p50_ns: f64,
    p95_ns: f64,
    p99_ns: f64,
}

/// `program` with an unused `let pad_<i>` prepended: same observable
/// behavior, distinct plan-cache fingerprint — the soak's cold traffic.
fn soak_variant(program: &Program, i: i64) -> Program {
    use imperative::ast::{Expr, Stmt, StmtKind};
    let mut entry = program.entry().clone();
    entry.body.insert(
        0,
        Stmt::new(StmtKind::Let(format!("pad_{i}"), Expr::lit(i))),
    );
    program.with_entry(entry)
}

fn bench_soak(clients: usize, rounds: usize) -> SoakSection {
    use cobra_server::{FaultPlan, RetryPolicy, WireClient, WireServer};
    use std::time::Duration;

    // Injected worker panics are part of the schedule; silence only them.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected"));
        if !injected {
            default_hook(info);
        }
    }));

    let case = GenCase::from_seed(0, &GenConfig::default()).with_row_scale(0.2);
    let fx = case.fixture();
    let faults = FaultPlan::chaos(0x50AC);
    let service = CobraService::new(ServerConfig {
        faults: faults.clone(),
        ..ServerConfig::default()
    });
    service.register_tenant(
        TenantSpec::new("soak", fx.db.clone(), fx.mapping.clone(), fx.funcs.clone())
            .feedback(false),
    );
    let server = WireServer::spawn(service, "127.0.0.1:0").expect("bind soak server");
    let addr = server.local_addr();

    // Warm pool of 4 fingerprints shared by every client (warm after the
    // first pass each) plus a per-client unique variant every 8th round —
    // the cold fraction that keeps full searches in the mix.
    let warm_pool: Vec<Program> = (0..4).map(|i| soak_variant(&case.program, i)).collect();

    let mut latencies_ns: Vec<f64> = Vec::with_capacity(clients * rounds);
    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut client_retries = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let warm_pool = &warm_pool;
                let case = &case;
                scope.spawn(move || {
                    let mut client = WireClient::connect_with(
                        addr,
                        RetryPolicy {
                            max_attempts: 8,
                            base_backoff: Duration::from_millis(2),
                            max_backoff: Duration::from_millis(20),
                            request_timeout: Duration::from_secs(2),
                            seed: 0x50AC + c as u64,
                        },
                    )
                    .expect("soak client connects");
                    let session = client.open_session("soak").expect("soak session");
                    let mut lat = Vec::with_capacity(rounds);
                    let (mut ok, mut errors) = (0u64, 0u64);
                    for round in 0..rounds {
                        let cold;
                        let program = if round % 8 == 7 {
                            cold = soak_variant(&case.program, (c * 100_000 + round) as i64);
                            &cold
                        } else {
                            &warm_pool[round % warm_pool.len()]
                        };
                        let t = Instant::now();
                        match client.submit(session, program) {
                            Ok(_) => ok += 1,
                            Err(_) => errors += 1,
                        }
                        lat.push(t.elapsed().as_secs_f64() * 1e9);
                    }
                    let _ = client.close_session(session);
                    (lat, ok, errors, client.retries())
                })
            })
            .collect();
        for h in handles {
            let (lat, o, e, r) = h.join().expect("soak client thread");
            latencies_ns.extend(lat);
            ok += o;
            errors += e;
            client_retries += r;
        }
    });

    let counters = server.service().counters();
    server.shutdown();

    latencies_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> f64 {
        let n = latencies_ns.len();
        let idx = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1;
        latencies_ns[idx]
    };
    let out = SoakSection {
        clients,
        rounds,
        submissions: latencies_ns.len() as u64,
        ok,
        errors,
        shed: counters.rejected,
        client_retries,
        faults_injected: faults.total_injected(),
        idempotent_replays: counters.idempotent_replays,
        internal_errors: counters.internal_errors,
        mean_ns: latencies_ns.iter().sum::<f64>() / latencies_ns.len().max(1) as f64,
        p50_ns: pct(50.0),
        p95_ns: pct(95.0),
        p99_ns: pct(99.0),
    };
    println!(
        "\nsoak ({} clients x {} rounds, chaos seed 0x50AC): \
         {} ok / {} errors, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        out.clients,
        out.rounds,
        out.ok,
        out.errors,
        out.p50_ns / 1e6,
        out.p95_ns / 1e6,
        out.p99_ns / 1e6
    );
    println!(
        "  {} faults injected, {} client retries, {} shed, {} replays, {} isolated panics",
        out.faults_injected,
        out.client_retries,
        out.shed,
        out.idempotent_replays,
        out.internal_errors
    );
    out
}

fn main() {
    let cfg = parse_args();
    let gen_cfg = GenConfig::default();
    let prof = profiles();

    println!(
        "opt_bench: {} seeds x {} profiles, {} iters; batch {} x workers {:?}",
        cfg.seeds,
        prof.len(),
        cfg.iters,
        cfg.batch,
        cfg.workers
    );

    // ---- single-program latency --------------------------------------
    let mut singles: Vec<BenchRecord> = Vec::new();
    for seed in 0..cfg.seeds {
        let case = GenCase::from_seed(seed, &gen_cfg);
        let fixture = case.fixture();
        for net in &prof {
            let cobra = fixture.cobra_builder().network(net.clone()).build();
            let rec = bench_support::bench_record(
                &format!("optimize_program/seed={seed}/{}", net.name()),
                &format!("seed={seed} profile={}", net.name()),
                cfg.iters,
                || cobra.optimize_program(&case.program).expect("optimizes"),
            );
            singles.push(rec);
        }
    }

    // Geometric means of per-case mean latency, overall and per profile.
    let geomean = |xs: &[f64]| -> f64 {
        if xs.is_empty() {
            return f64::NAN;
        }
        (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
    };
    let overall = geomean(&singles.iter().map(|r| r.mean_ns).collect::<Vec<_>>());
    let mut per_profile: Vec<(String, f64)> = Vec::new();
    for net in &prof {
        let xs: Vec<f64> = singles
            .iter()
            .filter(|r| r.config.ends_with(&format!("profile={}", net.name())))
            .map(|r| r.mean_ns)
            .collect();
        per_profile.push((net.name().to_string(), geomean(&xs)));
    }
    println!(
        "\ngeomean optimize_program latency: {:.3} ms",
        overall / 1e6
    );
    for (name, g) in &per_profile {
        println!("  {name:<12} {:.3} ms", g / 1e6);
    }

    // ---- static verifier overhead ------------------------------------
    // The same (seed x profile) singles corpus with the three-pass rewrite
    // verifier at VerifyLevel::Panic: every candidate alternative is
    // checked during expansion. The geomean ratio against the Off default
    // is the verifier's whole-search overhead (acceptance: <= 10%).
    let mut verified_singles: Vec<f64> = Vec::new();
    for seed in 0..cfg.seeds {
        let case = GenCase::from_seed(seed, &gen_cfg);
        let fixture = case.fixture();
        for net in &prof {
            let cobra = fixture
                .cobra_builder()
                .network(net.clone())
                .verify_rewrites(VerifyLevel::Panic)
                .build();
            let rec = bench_support::bench_record(
                &format!("optimize_program_verified/seed={seed}/{}", net.name()),
                &format!("seed={seed} profile={} verify=panic", net.name()),
                cfg.iters,
                || cobra.optimize_program(&case.program).expect("optimizes"),
            );
            verified_singles.push(rec.mean_ns);
        }
    }
    let verified_geomean = geomean(&verified_singles);
    let verifier_overhead_pct = (verified_geomean / overall - 1.0) * 100.0;
    println!(
        "verifier at Panic: geomean {:.3} ms ({:+.2}% vs Off)",
        verified_geomean / 1e6,
        verifier_overhead_pct
    );

    // ---- batch throughput scaling ------------------------------------
    // One representative case per profile, replicated: isolates worker
    // scaling from per-seed variance (every search is identical work).
    let mut batch_rows: Vec<BatchRow> = Vec::new();
    let batch_case = GenCase::from_seed(0, &gen_cfg);
    let batch_fixture = batch_case.fixture();
    let programs: Vec<Program> = (0..cfg.batch).map(|_| batch_case.program.clone()).collect();
    for net in &prof {
        let cobra: Cobra = batch_fixture.cobra_builder().network(net.clone()).build();
        for &w in &cfg.workers {
            // Warm-up, then one timed pass (batches are big enough that a
            // single pass is stable; iters would multiply runtime 4x).
            let _ = cobra.optimize_batch_with_workers(&programs, w);
            let start = Instant::now();
            let out = cobra.optimize_batch_with_workers(&programs, w);
            let total_ns = start.elapsed().as_secs_f64() * 1e9;
            assert!(out.iter().all(|r| r.is_ok()), "batch optimizes");
            println!(
                "optimize_batch/{}/workers={w}: {:.1} ms total, {:.3} ms/program",
                net.name(),
                total_ns / 1e6,
                total_ns / 1e6 / cfg.batch as f64
            );
            batch_rows.push(BatchRow {
                profile: net.name().to_string(),
                workers: w,
                batch: cfg.batch,
                total_ns,
                per_program_ns: total_ns / cfg.batch as f64,
            });
        }
    }

    // ---- skewed-corpus estimation error ------------------------------
    // Cost-model calibration, not wall-clock: how far estimated program
    // costs sit from simulated runtimes on skewed data, as a geomean
    // multiplicative factor (1.0 = perfectly calibrated). Tracked for
    // the uniform-NDV baseline and for histogram + feedback estimation.
    let est_cfg = GenConfig::skewed();
    let mut err_base = Vec::new();
    let mut err_adaptive = Vec::new();
    for seed in 0..cfg.est_seeds {
        let case = GenCase::from_seed(7000 + seed, &est_cfg);
        let fixture = case.fixture();
        for net in &prof {
            let base = fixture
                .cobra_builder()
                .network(net.clone())
                .histograms(false)
                .build();
            // One run doubles as the ground truth and the feedback
            // recording (runs are deterministic on a fresh fixture).
            let store = Arc::new(FeedbackStore::new());
            let actual =
                run_on_with_feedback(&case.fixture(), net.clone(), &case.program, store.clone())
                    .expect("skewed case runs")
                    .secs;
            let adaptive = fixture
                .cobra_builder()
                .network(net.clone())
                .feedback(store)
                .build();
            let log_err = |est_ns: f64| ((est_ns / 1e9).max(1e-9) / actual.max(1e-9)).ln().abs();
            err_base.push(log_err(base.cost_of(case.program.entry())));
            err_adaptive.push(log_err(adaptive.cost_of(case.program.entry())));
        }
    }
    let error_factor = |errs: &[f64]| -> f64 {
        if errs.is_empty() {
            return f64::NAN;
        }
        (errs.iter().sum::<f64>() / errs.len() as f64).exp()
    };
    let est_base_factor = error_factor(&err_base);
    let est_adaptive_factor = error_factor(&err_adaptive);
    println!(
        "\nskewed-corpus estimation error ({} cases): \
         baseline x{est_base_factor:.3}, histogram+feedback x{est_adaptive_factor:.3}",
        err_base.len()
    );

    // ---- validated selection vs cost-only argmin ---------------------
    // Trust-but-verify scoreboard on the skewed corpus: does the
    // runtime-validated pick actually run faster on the full fixture?
    let validation = bench_validation(cfg.val_seeds);
    if cfg.smoke {
        // CI gate: validated selection must not lose to the cost-only
        // argmin, and must hold the checked-in absolute floor.
        assert!(
            validation.validated_win_rate + 1e-9 >= validation.cost_only_win_rate,
            "validated selection win-rate {:.3} fell below cost-only {:.3}",
            validation.validated_win_rate,
            validation.cost_only_win_rate
        );
        assert!(
            validation.validated_win_rate + 1e-9 >= VALIDATION_SMOKE_FLOOR,
            "validated selection win-rate {:.3} fell below the {VALIDATION_SMOKE_FLOOR} floor",
            validation.validated_win_rate
        );
    }

    // ---- execution throughput: columnar vs row data plane ------------
    // Real wall-clock execution on a GenConfig::large() fixture (1M+
    // rows per table at scale 1.0). Engines run interleaved — columnar,
    // row, columnar, row — so thermal/frequency drift hits both equally.
    let exec_section = bench_execution(cfg.exec_iters, cfg.exec_scale);

    // ---- serving: cold vs warm submissions through CobraService ------
    let serving = bench_serving(cfg.serving_cold, cfg.serving_submits);

    // ---- soak: sustained mixed load over the wire under chaos --------
    let soak = bench_soak(cfg.soak_clients, cfg.soak_rounds);
    // The resilience contract, gated even in smoke: every submission
    // either lands after retries or fails typed — nothing hangs or is
    // silently lost — and the schedule really injected faults.
    assert_eq!(soak.ok + soak.errors, soak.submissions);
    assert!(soak.faults_injected > 0, "chaos schedule must inject");

    // ---- baseline comparison -----------------------------------------
    let baseline_doc = cfg
        .baseline
        .as_ref()
        .map(|p| std::fs::read_to_string(p).expect("read baseline JSON"));
    let baseline_geomean = baseline_doc
        .as_deref()
        .and_then(|d| json_number(d, "geomean_mean_ns"));
    let speedup = baseline_geomean.map(|b| b / overall);
    if let Some(s) = speedup {
        println!("\ngeomean speedup vs baseline: {s:.2}x");
    }

    // ---- JSON emission -----------------------------------------------
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("\"bench\":\"opt_bench\",\n\"schema_version\":1,\n");
    out.push_str(&format!(
        "\"config\":{{\"seeds\":{},\"iters\":{},\"batch\":{},\"workers\":[{}],\"host_parallelism\":{}}},\n",
        cfg.seeds,
        cfg.iters,
        cfg.batch,
        cfg.workers
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(","),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    out.push_str(&format!("\"geomean_mean_ns\":{overall:.1},\n"));
    out.push_str(&format!(
        "\"verifier\":{{\"level\":\"panic\",\"geomean_mean_ns\":{verified_geomean:.1},\
         \"overhead_pct\":{verifier_overhead_pct:.2}}},\n"
    ));
    out.push_str("\"geomean_per_profile\":{");
    out.push_str(
        &per_profile
            .iter()
            .map(|(n, g)| format!("{}:{g:.1}", json_str(n)))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push_str("},\n");
    if let Some(b) = baseline_geomean {
        out.push_str(&format!("\"baseline_geomean_mean_ns\":{b:.1},\n"));
        out.push_str(&format!("\"speedup_geomean\":{:.3},\n", speedup.unwrap()));
    }
    out.push_str(&format!(
        "\"estimation\":{{\"corpus\":\"skewed\",\"cases\":{},\
         \"uniform_ndv_error_factor\":{est_base_factor:.4},\
         \"histogram_feedback_error_factor\":{est_adaptive_factor:.4}}},\n",
        err_base.len()
    ));
    out.push_str(&format!(
        "\"validation\":{{\"corpus\":\"skewed\",\"cases\":{},\"differing\":{},\
         \"promotions\":{},\"disagreements\":{},\"validated_win_rate\":{:.4},\
         \"cost_only_win_rate\":{:.4},\"geomean_speedup_validated_over_cost_only\":{:.4},\
         \"smoke_floor\":{VALIDATION_SMOKE_FLOOR}}},\n",
        validation.cases,
        validation.differing,
        validation.promotions,
        validation.disagreements,
        validation.validated_win_rate,
        validation.cost_only_win_rate,
        validation.geomean_speedup
    ));
    out.push_str(&format!(
        "\"execution\":{{\"corpus_rows\":{},\"scale\":{},\"iters\":{},\
         \"batch_size\":{},\"geomean_speedup_scan_filter_join\":{:.3},\"queries\":[\n",
        exec_section.corpus_rows,
        exec_section.scale,
        exec_section.iters,
        minidb::BATCH_SIZE,
        exec_section.geomean_speedup
    ));
    let engine_json = |t: &EngineTiming| {
        format!(
            "{{\"mean_ns\":{:.1},\"execs_per_sec\":{:.4},\"rows_per_sec\":{:.1}}}",
            t.mean_ns, t.execs_per_sec, t.rows_per_sec
        )
    };
    out.push_str(
        &exec_section
            .queries
            .iter()
            .map(|q| {
                format!(
                    "  {{\"name\":{},\"sql\":{},\"input_rows\":{},\"out_rows\":{},\
                     \"gated\":{},\"columnar\":{},\"row\":{},\"speedup\":{:.3}}}",
                    json_str(q.name),
                    json_str(&q.sql),
                    q.input_rows,
                    q.out_rows,
                    q.gated,
                    engine_json(&q.columnar),
                    engine_json(&q.row),
                    q.speedup
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    out.push_str("\n]},\n");
    out.push_str(&format!(
        "\"serving\":{{\"cold\":{{\"tenants\":{},\"per_submission_ns\":{:.1},\
         \"searches_per_sec\":{:.2}}},\"warm_over_cold_speedup\":{:.2},\"warm\":[\n",
        serving.cold_tenants,
        serving.cold_per_submission_ns,
        serving.cold_searches_per_sec,
        serving.warm_over_cold_speedup
    ));
    out.push_str(
        &serving
            .rows
            .iter()
            .map(|r| {
                format!(
                    "  {{\"sessions\":{},\"submissions\":{},\"total_ns\":{:.1},\
                     \"per_submission_ns\":{:.1},\"submissions_per_sec\":{:.1}}}",
                    r.sessions,
                    r.submissions,
                    r.total_ns,
                    r.per_submission_ns,
                    r.submissions_per_sec
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    out.push_str("\n]},\n");
    out.push_str(&format!(
        "\"soak\":{{\"clients\":{},\"rounds\":{},\"submissions\":{},\"ok\":{},\
         \"errors\":{},\"shed\":{},\"client_retries\":{},\"faults_injected\":{},\
         \"idempotent_replays\":{},\"internal_errors\":{},\
         \"latency_ns\":{{\"mean\":{:.1},\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1}}}}},\n",
        soak.clients,
        soak.rounds,
        soak.submissions,
        soak.ok,
        soak.errors,
        soak.shed,
        soak.client_retries,
        soak.faults_injected,
        soak.idempotent_replays,
        soak.internal_errors,
        soak.mean_ns,
        soak.p50_ns,
        soak.p95_ns,
        soak.p99_ns
    ));
    out.push_str("\"singles\":[\n");
    out.push_str(
        &singles
            .iter()
            .map(|r| format!("  {}", r.to_json()))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    out.push_str("\n],\n\"batch\":[\n");
    out.push_str(
        &batch_rows
            .iter()
            .map(|r| {
                format!(
                    "  {{\"profile\":{},\"workers\":{},\"batch\":{},\"total_ns\":{:.1},\"per_program_ns\":{:.1}}}",
                    json_str(&r.profile),
                    r.workers,
                    r.batch,
                    r.total_ns,
                    r.per_program_ns
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    out.push_str("\n]\n}\n");
    std::fs::write(&cfg.json, out).expect("write BENCH json");
    println!("wrote {}", cfg.json.display());
}
