//! Micro-benchmarks of the optimizer itself: Region DAG construction +
//! rule expansion + cost-based extraction (the paper's "<1 s optimization
//! time" claim), plus ablations of the framework pieces called out in
//! DESIGN.md, and the parallel batch driver against its sequential
//! baseline.
//!
//! Uses the dependency-free runner in `bench_support` (the workspace
//! builds offline, so criterion is unavailable). Run with
//! `cargo bench --bench optimizer`.

use bench_support::{bench_fn, cobra_for};
use cobra_core::CostCatalog;
use netsim::NetworkProfile;
use volcano::relalg::{left_deep_join, JoinAssociativity, JoinCommutativity};
use volcano::Memo;
use workloads::{motivating, wilos};

fn bench_optimize_motivating() {
    let fixture = motivating::build_fixture(10_000, 2_000, 3);
    let cobra = cobra_for(
        &fixture,
        NetworkProfile::slow_remote(),
        CostCatalog::default(),
    );
    let p0 = motivating::p0();
    bench_fn("optimize/p0", 20, || cobra.optimize_program(&p0).unwrap());
    let m0 = motivating::m0();
    bench_fn("optimize/m0", 20, || cobra.optimize_program(&m0).unwrap());
}

fn bench_optimize_patterns() {
    let fixture = wilos::build_fixture(10_000, 3);
    let cobra = cobra_for(
        &fixture,
        NetworkProfile::fast_local(),
        CostCatalog::default(),
    );
    for pattern in wilos::Pattern::all() {
        let program = wilos::representative(pattern);
        bench_fn(&format!("optimize/pattern_{pattern:?}"), 20, || {
            cobra.optimize_program(&program).unwrap()
        });
    }
}

fn bench_optimize_batch() {
    // The batch driver vs. one-at-a-time optimization of the same programs.
    let fixture = motivating::build_fixture(10_000, 2_000, 3);
    let cobra = cobra_for(
        &fixture,
        NetworkProfile::slow_remote(),
        CostCatalog::default(),
    );
    let mut programs = vec![motivating::p0(), motivating::m0()];
    for pattern in wilos::Pattern::all() {
        programs.push(wilos::representative(pattern));
    }
    let sequential = bench_fn("batch/sequential_8_programs", 10, || {
        programs
            .iter()
            .map(|p| cobra.optimize_program(p).unwrap().est_cost_ns)
            .sum::<f64>()
    });
    let parallel = bench_fn("batch/optimize_batch_8_programs", 10, || {
        cobra
            .optimize_batch(&programs)
            .into_iter()
            .map(|r| r.unwrap().est_cost_ns)
            .sum::<f64>()
    });
    println!(
        "batch speedup: {:.2}x over sequential ({} cores)",
        sequential / parallel,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
}

fn bench_memo_expansion() {
    // Ablation: the Volcano framework itself (Figure 4's example, then a
    // 5-relation enumeration).
    bench_fn("volcano/commutativity_3_rel", 20, || {
        let mut memo = Memo::new();
        let root = memo.insert_tree(&left_deep_join(&["A", "B", "C"]), None);
        volcano::expand(&mut memo, &[&JoinCommutativity], 16);
        volcano::count_plans(&memo, root)
    });
    bench_fn("volcano/full_enumeration_5_rel", 20, || {
        let mut memo = Memo::new();
        let root = memo.insert_tree(&left_deep_join(&["A", "B", "C", "D", "E"]), None);
        volcano::expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 64);
        volcano::count_plans(&memo, root)
    });
}

fn bench_fir_rules() {
    // Ablation: F-IR construction + rule closure for P0's loop.
    use imperative::ast::{Expr, Stmt, StmtKind};
    let fixture = motivating::build_fixture(100, 10, 3);
    let body = vec![
        Stmt::new(StmtKind::Let(
            "cust".into(),
            Expr::nav(Expr::var("o"), "customer"),
        )),
        Stmt::new(StmtKind::Add(
            "result".into(),
            Expr::Call(
                "myFunc".into(),
                vec![
                    Expr::field(Expr::var("o"), "o_id"),
                    Expr::field(Expr::var("cust"), "c_birth_year"),
                ],
            ),
        )),
    ];
    let live = vec!["result".to_string()];
    bench_fn("fir/loop_to_fold+rules/p0", 20, || {
        let base = fir::build::loop_to_fold(
            "o",
            &Expr::LoadAll("Order".into()),
            &body,
            &fixture.mapping,
            Some(&live),
        )
        .unwrap();
        fir::rules::expand_alternatives(base, 64).len()
    });
}

fn main() {
    bench_optimize_motivating();
    bench_optimize_patterns();
    bench_optimize_batch();
    bench_memo_expansion();
    bench_fir_rules();
}
