//! Criterion micro-benchmarks of the optimizer itself: Region DAG
//! construction + rule expansion + cost-based extraction (the paper's
//! "<1 s optimization time" claim), plus ablations of the framework
//! pieces called out in DESIGN.md.

use bench_support::cobra_for;
use cobra_core::CostCatalog;
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::NetworkProfile;
use volcano::relalg::{left_deep_join, JoinAssociativity, JoinCommutativity};
use volcano::Memo;
use workloads::{motivating, wilos};

fn bench_optimize_motivating(c: &mut Criterion) {
    let fixture = motivating::build_fixture(10_000, 2_000, 3);
    let cobra = cobra_for(&fixture, NetworkProfile::slow_remote(), CostCatalog::default());
    let p0 = motivating::p0();
    c.bench_function("optimize/p0", |b| {
        b.iter(|| cobra.optimize_program(&p0).unwrap())
    });
    let m0 = motivating::m0();
    c.bench_function("optimize/m0", |b| {
        b.iter(|| cobra.optimize_program(&m0).unwrap())
    });
}

fn bench_optimize_patterns(c: &mut Criterion) {
    let fixture = wilos::build_fixture(10_000, 3);
    let cobra = cobra_for(&fixture, NetworkProfile::fast_local(), CostCatalog::default());
    for pattern in wilos::Pattern::all() {
        let program = wilos::representative(pattern);
        c.bench_function(&format!("optimize/pattern_{pattern:?}"), |b| {
            b.iter(|| cobra.optimize_program(&program).unwrap())
        });
    }
}

fn bench_memo_expansion(c: &mut Criterion) {
    // Ablation: the Volcano framework itself (Figure 4's example, then a
    // 5-relation enumeration).
    c.bench_function("volcano/commutativity_3_rel", |b| {
        b.iter(|| {
            let mut memo = Memo::new();
            let root = memo.insert_tree(&left_deep_join(&["A", "B", "C"]), None);
            volcano::expand(&mut memo, &[&JoinCommutativity], 16);
            volcano::count_plans(&memo, root)
        })
    });
    c.bench_function("volcano/full_enumeration_5_rel", |b| {
        b.iter(|| {
            let mut memo = Memo::new();
            let root = memo.insert_tree(&left_deep_join(&["A", "B", "C", "D", "E"]), None);
            volcano::expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 64);
            volcano::count_plans(&memo, root)
        })
    });
}

fn bench_fir_rules(c: &mut Criterion) {
    // Ablation: F-IR construction + rule closure for P0's loop.
    use imperative::ast::{Expr, Stmt, StmtKind};
    let fixture = motivating::build_fixture(100, 10, 3);
    let body = vec![
        Stmt::new(StmtKind::Let(
            "cust".into(),
            Expr::nav(Expr::var("o"), "customer"),
        )),
        Stmt::new(StmtKind::Add(
            "result".into(),
            Expr::Call(
                "myFunc".into(),
                vec![
                    Expr::field(Expr::var("o"), "o_id"),
                    Expr::field(Expr::var("cust"), "c_birth_year"),
                ],
            ),
        )),
    ];
    let live = vec!["result".to_string()];
    c.bench_function("fir/loop_to_fold+rules/p0", |b| {
        b.iter(|| {
            let base = fir::build::loop_to_fold(
                "o",
                &Expr::LoadAll("Order".into()),
                &body,
                &fixture.mapping,
                Some(&live),
            )
            .unwrap();
            fir::rules::expand_alternatives(base, 64).len()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_optimize_motivating,
        bench_optimize_patterns,
        bench_memo_expansion,
        bench_fir_rules
);
criterion_main!(benches);
