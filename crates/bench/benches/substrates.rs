//! Criterion micro-benchmarks of the substrates: SQL front-end, executor
//! (scan / index / hash join / aggregate) and the interpreter, so
//! regressions in the simulation layers are visible independently of the
//! optimizer.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use minidb::{Executor, FuncRegistry};
use netsim::NetworkProfile;
use std::collections::HashMap;
use workloads::harness::run_on;
use workloads::motivating;

fn bench_sql_front_end(c: &mut Criterion) {
    let sql = "select c.c_birth_year, count(*) as n from orders o \
               join customer c on o.o_customer_sk = c.c_customer_sk \
               where o.o_amount > 10.0 group by c.c_birth_year \
               order by c.c_birth_year limit 100";
    c.bench_function("sql/parse", |b| b.iter(|| minidb::sql::parse(sql).unwrap()));
    let plan = minidb::sql::parse(sql).unwrap();
    c.bench_function("sql/print", |b| b.iter(|| minidb::sql::print(&plan)));
}

fn bench_executor(c: &mut Criterion) {
    let fixture = motivating::build_fixture(50_000, 5_000, 9);
    let db = fixture.db.borrow();
    let funcs = FuncRegistry::with_builtins();
    let exec = Executor::new(&db, &funcs);
    let no_params = HashMap::new();

    let scan = minidb::sql::parse("select * from orders").unwrap();
    c.bench_function("exec/scan_50k", |b| {
        b.iter(|| exec.execute(&scan, &no_params).unwrap().row_count())
    });

    let point = minidb::sql::parse("select * from customer where c_customer_sk = 42").unwrap();
    c.bench_function("exec/index_point_lookup", |b| {
        b.iter(|| exec.execute(&point, &no_params).unwrap().row_count())
    });

    let join = minidb::sql::parse(
        "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk",
    )
    .unwrap();
    c.bench_function("exec/hash_join_50k", |b| {
        b.iter(|| exec.execute(&join, &no_params).unwrap().row_count())
    });

    let agg = minidb::sql::parse(
        "select o_status, count(*), sum(o_amount) from orders group by o_status",
    )
    .unwrap();
    c.bench_function("exec/hash_aggregate_50k", |b| {
        b.iter(|| exec.execute(&agg, &no_params).unwrap().row_count())
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let fixture = motivating::build_fixture(5_000, 500, 9);
    let p2 = motivating::p2();
    c.bench_function("interp/p2_5k_orders", |b| {
        b.iter_batched(
            || fixture.clone(),
            |fx| run_on(&fx, NetworkProfile::fast_local(), &p2).unwrap().secs,
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sql_front_end, bench_executor, bench_interpreter
);
criterion_main!(benches);
