//! Micro-benchmarks of the substrates: SQL front-end, executor (scan /
//! index / hash join / aggregate) and the interpreter, so regressions in
//! the simulation layers are visible independently of the optimizer.
//!
//! Uses the dependency-free runner in `bench_support` (the workspace
//! builds offline, so criterion is unavailable). Run with
//! `cargo bench --bench substrates`.

use bench_support::bench_fn;
use minidb::{Executor, FuncRegistry};
use netsim::NetworkProfile;
use std::collections::HashMap;
use workloads::harness::run_on;
use workloads::motivating;

fn bench_sql_front_end() {
    let sql = "select c.c_birth_year, count(*) as n from orders o \
               join customer c on o.o_customer_sk = c.c_customer_sk \
               where o.o_amount > 10.0 group by c.c_birth_year \
               order by c.c_birth_year limit 100";
    bench_fn("sql/parse", 100, || minidb::sql::parse(sql).unwrap());
    let plan = minidb::sql::parse(sql).unwrap();
    bench_fn("sql/print", 100, || minidb::sql::print(&plan));
}

fn bench_executor() {
    let fixture = motivating::build_fixture(50_000, 5_000, 9);
    let db = fixture.db.read().unwrap();
    let funcs = FuncRegistry::with_builtins();
    let exec = Executor::new(&db, &funcs);
    let no_params = HashMap::new();

    let scan = minidb::sql::parse("select * from orders").unwrap();
    bench_fn("exec/scan_50k", 20, || {
        exec.execute(&scan, &no_params).unwrap().row_count()
    });

    let point = minidb::sql::parse("select * from customer where c_customer_sk = 42").unwrap();
    bench_fn("exec/index_point_lookup", 100, || {
        exec.execute(&point, &no_params).unwrap().row_count()
    });

    let join = minidb::sql::parse(
        "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk",
    )
    .unwrap();
    bench_fn("exec/hash_join_50k", 20, || {
        exec.execute(&join, &no_params).unwrap().row_count()
    });

    let agg = minidb::sql::parse(
        "select o_status, count(*), sum(o_amount) from orders group by o_status",
    )
    .unwrap();
    bench_fn("exec/hash_aggregate_50k", 20, || {
        exec.execute(&agg, &no_params).unwrap().row_count()
    });
}

fn bench_interpreter() {
    let fixture = motivating::build_fixture(5_000, 500, 9);
    let p2 = motivating::p2();
    bench_fn("interp/p2_5k_orders", 20, || {
        run_on(&fixture, NetworkProfile::fast_local(), &p2)
            .unwrap()
            .secs
    });
}

fn main() {
    bench_sql_front_end();
    bench_executor();
    bench_interpreter();
}
