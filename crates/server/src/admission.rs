//! Admission control: a bounded worker pool with a bounded wait queue.
//!
//! Every submission acquires a [`Permit`] before touching the optimizer.
//! At most `max_concurrent` permits are out at once; up to `max_queue`
//! further requests block waiting for one; anything beyond that is shed
//! immediately with [`ServerError::Overloaded`] — the queue can never
//! grow without bound, so a traffic spike degrades latency, not memory.
//!
//! Graceful degradation rides on the same state: a permit granted while
//! the queue is at least `degrade_queue_depth` deep is marked
//! [`Permit::degraded`], and the service optimizes it under the
//! configured downgrade [`cobra_core::SearchBudget`] instead of the full
//! one (trading plan quality for latency exactly when latency is scarce).

use crate::error::ServerError;
use crate::sync;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct AdmState {
    running: usize,
    queued: usize,
}

/// The admission controller. Thread-safe; one per service.
#[derive(Debug)]
pub struct Admission {
    max_concurrent: usize,
    max_queue: usize,
    degrade_queue_depth: usize,
    state: Mutex<AdmState>,
    freed: Condvar,
    admitted: AtomicU64,
    rejected: AtomicU64,
    degraded: AtomicU64,
}

/// An admitted request. Releases its worker slot on drop (including
/// unwinds), waking one queued waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    admission: &'a Admission,
    degraded: bool,
}

impl Permit<'_> {
    /// True when this request was admitted under queue pressure and
    /// should be served with the degraded search budget.
    pub fn degraded(&self) -> bool {
        self.degraded
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut s = sync::lock(&self.admission.state);
        s.running -= 1;
        drop(s);
        // notify_all (not _one): queued admissions and `wait_idle` drains
        // wait on the same condvar with different predicates.
        self.admission.freed.notify_all();
    }
}

impl Admission {
    /// A controller allowing `max_concurrent` in-flight requests, at most
    /// `max_queue` waiters, and degrading once the queue reaches
    /// `degrade_queue_depth` (values are clamped to sane minimums:
    /// at least one worker, and a degrade depth of at least 1 so an
    /// uncontended server never degrades).
    pub fn new(max_concurrent: usize, max_queue: usize, degrade_queue_depth: usize) -> Admission {
        Admission {
            max_concurrent: max_concurrent.max(1),
            max_queue,
            degrade_queue_depth: degrade_queue_depth.max(1),
            state: Mutex::new(AdmState::default()),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// Acquire a worker slot, blocking in the bounded queue if all slots
    /// are busy. Returns [`ServerError::Overloaded`] without blocking
    /// when the queue is already full.
    pub fn admit(&self) -> Result<Permit<'_>, ServerError> {
        self.admit_bounded(self.max_queue)
    }

    /// [`Admission::admit`] with an explicit queue bound (clamped to the
    /// configured maximum). The service passes a halved bound while its
    /// health machine is `Degraded`, shedding load earlier when workers
    /// are already faulting.
    pub fn admit_bounded(&self, max_queue: usize) -> Result<Permit<'_>, ServerError> {
        let max_queue = max_queue.min(self.max_queue);
        let mut s = sync::lock(&self.state);
        let mut waited_at_depth = 0usize;
        if s.running >= self.max_concurrent {
            if s.queued >= max_queue {
                let err = ServerError::Overloaded {
                    running: s.running,
                    queued: s.queued,
                };
                drop(s);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(err);
            }
            s.queued += 1;
            waited_at_depth = s.queued;
            while s.running >= self.max_concurrent {
                s = sync::wait(&self.freed, s);
            }
            s.queued -= 1;
        }
        s.running += 1;
        drop(s);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        // Degrade based on the depth this request *observed*: it queued
        // behind `waited_at_depth - 1` others, so depth ≥ the knob means
        // the server was already backed up when this request arrived.
        let degraded = waited_at_depth >= self.degrade_queue_depth;
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        Ok(Permit {
            admission: self,
            degraded,
        })
    }

    /// Requests admitted (including degraded ones).
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests shed with [`ServerError::Overloaded`].
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests admitted under queue pressure (served with the degraded
    /// budget).
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Block until no request is running (clean drain-on-shutdown) or
    /// `timeout` elapses. Returns true when fully drained. New admissions
    /// are the caller's problem: the service stops admitting before it
    /// drains.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut s = sync::lock(&self.state);
        while s.running > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = sync::wait_timeout(&self.freed, s, deadline - now);
            s = guard;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_capacity_then_sheds() {
        let adm = Admission::new(2, 0, 1);
        let p1 = adm.admit().unwrap();
        let p2 = adm.admit().unwrap();
        let err = adm.admit().unwrap_err();
        assert!(matches!(
            err,
            ServerError::Overloaded {
                running: 2,
                queued: 0
            }
        ));
        assert_eq!(adm.rejected(), 1);
        drop(p1);
        let _p3 = adm.admit().unwrap();
        drop(p2);
        assert_eq!(adm.admitted(), 3);
    }

    #[test]
    fn queued_request_proceeds_when_slot_frees() {
        let adm = Arc::new(Admission::new(1, 4, 8));
        let p = adm.admit().unwrap();
        let adm2 = adm.clone();
        let waiter = std::thread::spawn(move || {
            let permit = adm2.admit().unwrap();
            assert!(!permit.degraded());
        });
        // Give the waiter time to enqueue, then free the slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(p);
        waiter.join().unwrap();
        assert_eq!(adm.admitted(), 2);
        assert_eq!(adm.rejected(), 0);
    }

    #[test]
    fn wait_idle_observes_drain() {
        let adm = Admission::new(2, 4, 8);
        std::thread::scope(|scope| {
            let p1 = adm.admit().unwrap();
            let p2 = adm.admit().unwrap();
            assert!(!adm.wait_idle(Duration::from_millis(10)), "still running");
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                drop(p1);
                drop(p2);
            });
            assert!(adm.wait_idle(Duration::from_secs(2)), "drains");
        });
    }

    #[test]
    fn tighter_bound_sheds_earlier() {
        let adm = Admission::new(1, 8, 8);
        let _p = adm.admit().unwrap();
        // With the full queue bound this would enqueue; with a bound of 0
        // (degraded shedding) it is rejected immediately.
        let err = adm.admit_bounded(0).unwrap_err();
        assert!(matches!(err, ServerError::Overloaded { .. }));
        assert_eq!(adm.rejected(), 1);
    }

    #[test]
    fn deep_queue_marks_degraded() {
        let adm = Arc::new(Admission::new(1, 16, 1));
        let p = adm.admit().unwrap();
        let adm2 = adm.clone();
        let waiter = std::thread::spawn(move || adm2.admit().unwrap().degraded());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(p);
        assert!(waiter.join().unwrap(), "queued at depth 1 => degraded");
        assert_eq!(adm.degraded(), 1);
    }
}
