//! Admission control: a bounded worker pool with a bounded wait queue.
//!
//! Every submission acquires a [`Permit`] before touching the optimizer.
//! At most `max_concurrent` permits are out at once; up to `max_queue`
//! further requests block waiting for one; anything beyond that is shed
//! immediately with [`ServerError::Overloaded`] — the queue can never
//! grow without bound, so a traffic spike degrades latency, not memory.
//!
//! Graceful degradation rides on the same state: a permit granted while
//! the queue is at least `degrade_queue_depth` deep is marked
//! [`Permit::degraded`], and the service optimizes it under the
//! configured downgrade [`cobra_core::SearchBudget`] instead of the full
//! one (trading plan quality for latency exactly when latency is scarce).

use crate::error::ServerError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct AdmState {
    running: usize,
    queued: usize,
}

/// The admission controller. Thread-safe; one per service.
#[derive(Debug)]
pub struct Admission {
    max_concurrent: usize,
    max_queue: usize,
    degrade_queue_depth: usize,
    state: Mutex<AdmState>,
    freed: Condvar,
    admitted: AtomicU64,
    rejected: AtomicU64,
    degraded: AtomicU64,
}

/// An admitted request. Releases its worker slot on drop (including
/// unwinds), waking one queued waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    admission: &'a Admission,
    degraded: bool,
}

impl Permit<'_> {
    /// True when this request was admitted under queue pressure and
    /// should be served with the degraded search budget.
    pub fn degraded(&self) -> bool {
        self.degraded
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut s = self.admission.state.lock().unwrap();
        s.running -= 1;
        drop(s);
        self.admission.freed.notify_one();
    }
}

impl Admission {
    /// A controller allowing `max_concurrent` in-flight requests, at most
    /// `max_queue` waiters, and degrading once the queue reaches
    /// `degrade_queue_depth` (values are clamped to sane minimums:
    /// at least one worker, and a degrade depth of at least 1 so an
    /// uncontended server never degrades).
    pub fn new(max_concurrent: usize, max_queue: usize, degrade_queue_depth: usize) -> Admission {
        Admission {
            max_concurrent: max_concurrent.max(1),
            max_queue,
            degrade_queue_depth: degrade_queue_depth.max(1),
            state: Mutex::new(AdmState::default()),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// Acquire a worker slot, blocking in the bounded queue if all slots
    /// are busy. Returns [`ServerError::Overloaded`] without blocking
    /// when the queue is already full.
    pub fn admit(&self) -> Result<Permit<'_>, ServerError> {
        let mut s = self.state.lock().unwrap();
        let mut waited_at_depth = 0usize;
        if s.running >= self.max_concurrent {
            if s.queued >= self.max_queue {
                let err = ServerError::Overloaded {
                    running: s.running,
                    queued: s.queued,
                };
                drop(s);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(err);
            }
            s.queued += 1;
            waited_at_depth = s.queued;
            while s.running >= self.max_concurrent {
                s = self.freed.wait(s).unwrap();
            }
            s.queued -= 1;
        }
        s.running += 1;
        drop(s);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        // Degrade based on the depth this request *observed*: it queued
        // behind `waited_at_depth - 1` others, so depth ≥ the knob means
        // the server was already backed up when this request arrived.
        let degraded = waited_at_depth >= self.degrade_queue_depth;
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        Ok(Permit {
            admission: self,
            degraded,
        })
    }

    /// Requests admitted (including degraded ones).
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests shed with [`ServerError::Overloaded`].
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests admitted under queue pressure (served with the degraded
    /// budget).
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_capacity_then_sheds() {
        let adm = Admission::new(2, 0, 1);
        let p1 = adm.admit().unwrap();
        let p2 = adm.admit().unwrap();
        let err = adm.admit().unwrap_err();
        assert!(matches!(
            err,
            ServerError::Overloaded {
                running: 2,
                queued: 0
            }
        ));
        assert_eq!(adm.rejected(), 1);
        drop(p1);
        let _p3 = adm.admit().unwrap();
        drop(p2);
        assert_eq!(adm.admitted(), 3);
    }

    #[test]
    fn queued_request_proceeds_when_slot_frees() {
        let adm = Arc::new(Admission::new(1, 4, 8));
        let p = adm.admit().unwrap();
        let adm2 = adm.clone();
        let waiter = std::thread::spawn(move || {
            let permit = adm2.admit().unwrap();
            assert!(!permit.degraded());
        });
        // Give the waiter time to enqueue, then free the slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(p);
        waiter.join().unwrap();
        assert_eq!(adm.admitted(), 2);
        assert_eq!(adm.rejected(), 0);
    }

    #[test]
    fn deep_queue_marks_degraded() {
        let adm = Arc::new(Admission::new(1, 16, 1));
        let p = adm.admit().unwrap();
        let adm2 = adm.clone();
        let waiter = std::thread::spawn(move || adm2.admit().unwrap().degraded());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(p);
        assert!(waiter.join().unwrap(), "queued at depth 1 => degraded");
        assert_eq!(adm.degraded(), 1);
    }
}
