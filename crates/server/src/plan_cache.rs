//! The sharded, single-flight plan cache.
//!
//! Keys are `(PlanFingerprint, CacheStamp)` — the stable structural
//! identity of the submitted program plus the validity coordinate the
//! estimator layer already maintains (database instance, stats epoch,
//! feedback generation, estimation mode). Folding the stamp into the key
//! gives tenant isolation and invalidation for free:
//!
//! * two tenants have different `Database::instance_id`s, so identical
//!   programs land on different keys — cross-tenant pollution is
//!   structurally impossible, not policy;
//! * a stats-epoch bump (drift re-optimization, ANALYZE, writes) moves
//!   every new lookup to a fresh stamp, so stale plans simply stop being
//!   reachable (and are purged by the drift sweeper).
//!
//! **Single flight**: when N sessions miss on the same key concurrently,
//! exactly one runs the optimizer; the rest block on the in-flight slot
//! and receive the shared `Arc<Optimized>` when it completes. The
//! coalesced count is surfaced per request and in the server counters.
//!
//! The map is sharded by fingerprint to keep lock contention off the hot
//! path: a hit takes one shard mutex for a `HashMap` probe.

use crate::error::ServerError;
use crate::sync;
use cobra_core::Optimized;
use imperative::ast::Program;
use minidb::{CacheStamp, PlanFingerprint, StableHasher};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A plan-cache key: program identity × cache validity coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Structural fingerprint of the whole submitted program.
    pub fingerprint: PlanFingerprint,
    /// Validity stamp (tenant instance, stats epoch, feedback
    /// generation, estimation mode).
    pub stamp: CacheStamp,
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.fingerprint, self.stamp)
    }
}

/// Fingerprint a whole imperative program: FNV-1a over its structural
/// hash stream (statement line numbers are ignored by `Stmt::hash`, and
/// embedded query plans hash by their precomputed fingerprints, so this
/// is cheap and stable across processes).
pub fn program_fingerprint(program: &Program) -> PlanFingerprint {
    let mut h = StableHasher::new();
    program.hash(&mut h);
    PlanFingerprint::from_raw(h.finish())
}

/// A cached optimization: the submitted program (kept so the drift
/// sweeper can re-optimize it) and the shared result.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The program as submitted.
    pub program: Arc<Program>,
    /// The optimizer's result, shared by every session that hits.
    pub optimized: Arc<Optimized>,
}

/// How a submission's optimization was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a completed cache entry.
    Hit,
    /// This request ran the optimizer.
    Miss,
    /// Another session was already optimizing the same key; this request
    /// blocked and received the shared result.
    Coalesced,
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        })
    }
}

/// An in-flight optimization other sessions can wait on.
#[derive(Debug, Default)]
struct Flight {
    result: Mutex<Option<Result<CachedPlan, ServerError>>>,
    done: Condvar,
}

#[derive(Debug, Clone)]
enum Slot {
    InFlight(Arc<Flight>),
    Ready(CachedPlan),
}

/// The cache proper. One per service, shared by every tenant and session.
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<HashMap<CacheKey, Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    swapped: AtomicU64,
    evicted: AtomicU64,
    restored: AtomicU64,
}

impl PlanCache {
    /// A cache with `shards` shards (clamped to at least 1; 16 is the
    /// service default).
    pub fn new(shards: usize) -> PlanCache {
        PlanCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            swapped: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            restored: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, Slot>> {
        // The fingerprint is already a good 64-bit mix; fold the stamp in
        // so one hot program across many tenants still spreads out.
        let mut h = StableHasher::new();
        key.hash(&mut h);
        let i = (h.finish() % self.shards.len() as u64) as usize;
        &self.shards[i]
    }

    /// Look up `key`, running `compute` under single-flight semantics on
    /// a miss. `retain` controls whether a computed result is kept in the
    /// cache (degraded-budget results are published to waiters but not
    /// retained, so the next uncontended submission gets a full search).
    ///
    /// Returns the plan plus how it was satisfied.
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        program: &Arc<Program>,
        retain: bool,
        compute: impl FnOnce() -> Result<Arc<Optimized>, ServerError>,
    ) -> (Result<CachedPlan, ServerError>, CacheOutcome) {
        let flight = {
            let mut shard = sync::lock(self.shard(&key));
            match shard.get(&key) {
                Some(Slot::Ready(cached)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (Ok(cached.clone()), CacheOutcome::Hit);
                }
                Some(Slot::InFlight(flight)) => {
                    // Wait outside the shard lock.
                    let flight = flight.clone();
                    drop(shard);
                    let mut slot = sync::lock(&flight.result);
                    while slot.is_none() {
                        slot = sync::wait(&flight.done, slot);
                    }
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    return (slot.clone().unwrap(), CacheOutcome::Coalesced);
                }
                None => {
                    let flight = Arc::new(Flight::default());
                    shard.insert(key, Slot::InFlight(flight.clone()));
                    flight
                }
            }
        };

        // This request leads the flight: optimize, publish, settle the
        // slot. The optimizer runs inside `catch_unwind` so a panicking
        // search settles the flight with a typed error — waiters must
        // never be left blocking on a flight whose leader unwound away.
        let result = match catch_unwind(AssertUnwindSafe(compute)) {
            Ok(computed) => computed.map(|optimized| CachedPlan {
                program: program.clone(),
                optimized,
            }),
            Err(payload) => Err(ServerError::from_panic(payload)),
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = sync::lock(self.shard(&key));
            match &result {
                Ok(cached) if retain => {
                    shard.insert(key, Slot::Ready(cached.clone()));
                }
                // Failed or deliberately unretained: clear the in-flight
                // marker so the next submission retries from scratch.
                _ => {
                    shard.remove(&key);
                }
            }
        }
        let mut slot = sync::lock(&flight.result);
        *slot = Some(result.clone());
        drop(slot);
        flight.done.notify_all();
        (result, CacheOutcome::Miss)
    }

    /// Insert a re-optimized plan (the drift sweeper's hot swap). Counts
    /// toward [`PlanCache::swapped`]; overwrites anything at `key`.
    pub fn swap_in(&self, key: CacheKey, plan: CachedPlan) {
        let mut shard = sync::lock(self.shard(&key));
        shard.insert(key, Slot::Ready(plan));
        drop(shard);
        self.swapped.fetch_add(1, Ordering::Relaxed);
    }

    /// Insert a plan recovered from a snapshot (see [`crate::snapshot`]).
    /// Counts toward [`PlanCache::restored`]; does not overwrite a live
    /// entry (a plan computed since restart is at least as fresh).
    /// Returns whether the plan was inserted.
    pub fn restore(&self, key: CacheKey, plan: CachedPlan) -> bool {
        let mut shard = sync::lock(self.shard(&key));
        if shard.contains_key(&key) {
            return false;
        }
        shard.insert(key, Slot::Ready(plan));
        drop(shard);
        self.restored.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Completed entries cached for database instance `instance_id`
    /// (the drift sweeper's re-optimization work list).
    pub fn entries_for_instance(&self, instance_id: u64) -> Vec<(CacheKey, CachedPlan)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = sync::lock(shard);
            for (key, slot) in shard.iter() {
                if key.stamp.instance_id == instance_id {
                    if let Slot::Ready(cached) = slot {
                        out.push((*key, cached.clone()));
                    }
                }
            }
        }
        out
    }

    /// Drop every completed entry for `instance_id` whose stamp is not
    /// `keep` (post-swap cleanup of now-unreachable epochs). In-flight
    /// slots are left to settle on their own. Returns how many entries
    /// were evicted.
    pub fn purge_instance_except(&self, instance_id: u64, keep: CacheStamp) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut shard = sync::lock(shard);
            shard.retain(|key, slot| {
                let stale = key.stamp.instance_id == instance_id
                    && key.stamp != keep
                    && matches!(slot, Slot::Ready(_));
                if stale {
                    evicted += 1;
                }
                !stale
            });
        }
        self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Completed + in-flight entries currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| sync::lock(s).len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from a completed entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Optimizer runs (including unretained/degraded and failed ones).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Requests that joined another session's in-flight optimization.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Plans hot-swapped in by the drift sweeper.
    pub fn swapped(&self) -> u64 {
        self.swapped.load(Ordering::Relaxed)
    }

    /// Stale entries evicted after swaps.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Plans recovered from a snapshot at restore time.
    pub fn restored(&self) -> u64 {
        self.restored.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imperative::ast::{Function, Stmt, StmtKind};

    fn tiny_program(n: i64) -> Arc<Program> {
        Arc::new(Program::single(Function::new(
            "t",
            vec!["out".into()],
            vec![Stmt::new(StmtKind::Let(
                "out".into(),
                imperative::ast::Expr::lit(n),
            ))],
        )))
    }

    fn dummy_optimized(program: &Program) -> Arc<Optimized> {
        Arc::new(Optimized {
            program: program.entry().clone(),
            est_cost_ns: 1.0,
            original_cost_ns: 1.0,
            alternatives: 1,
            choice_points: 0,
            groups: 1,
            exprs: 1,
            tags: Vec::new(),
            cost_cache_hits: 0,
            cost_cache_misses: 0,
            estimator_cache_hits: 0,
            estimator_cache_misses: 0,
            feedback_overrides: 0,
            budget_exhausted: false,
            validation: None,
            verifier_rejections: Vec::new(),
        })
    }

    fn key(fp: PlanFingerprint, instance: u64, epoch: u64) -> CacheKey {
        CacheKey {
            fingerprint: fp,
            stamp: CacheStamp {
                instance_id: instance,
                stats_epoch: epoch,
                feedback_generation: 0,
                mode: 1,
            },
        }
    }

    #[test]
    fn hit_after_miss_and_tenant_isolation() {
        let cache = PlanCache::new(4);
        let p = tiny_program(1);
        let fp = program_fingerprint(&p);
        let k1 = key(fp, 1, 0);
        let (r, how) = cache.get_or_compute(k1, &p, true, || Ok(dummy_optimized(&p)));
        assert!(r.is_ok());
        assert_eq!(how, CacheOutcome::Miss);
        let (_, how) = cache.get_or_compute(k1, &p, true, || panic!("must hit"));
        assert_eq!(how, CacheOutcome::Hit);

        // Same program, different tenant instance: a separate key.
        let k2 = key(fp, 2, 0);
        let (_, how) = cache.get_or_compute(k2, &p, true, || Ok(dummy_optimized(&p)));
        assert_eq!(how, CacheOutcome::Miss);
        assert_eq!(cache.len(), 2);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn unretained_results_are_not_cached() {
        let cache = PlanCache::new(1);
        let p = tiny_program(2);
        let k = key(program_fingerprint(&p), 1, 0);
        let (_, how) = cache.get_or_compute(k, &p, false, || Ok(dummy_optimized(&p)));
        assert_eq!(how, CacheOutcome::Miss);
        assert!(cache.is_empty(), "degraded results are not retained");
        let (_, how) = cache.get_or_compute(k, &p, true, || Ok(dummy_optimized(&p)));
        assert_eq!(how, CacheOutcome::Miss, "next submission re-optimizes");
    }

    #[test]
    fn failures_clear_the_flight() {
        let cache = PlanCache::new(1);
        let p = tiny_program(3);
        let k = key(program_fingerprint(&p), 1, 0);
        let (r, _) = cache.get_or_compute(k, &p, true, || Err(ServerError::Db("boom".to_string())));
        assert!(r.is_err());
        assert!(cache.is_empty());
        let (r, how) = cache.get_or_compute(k, &p, true, || Ok(dummy_optimized(&p)));
        assert!(r.is_ok());
        assert_eq!(how, CacheOutcome::Miss);
    }

    #[test]
    fn concurrent_same_key_coalesces_to_one_compute() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;

        let cache = Arc::new(PlanCache::new(8));
        let p = tiny_program(4);
        let k = key(program_fingerprint(&p), 1, 0);
        let computes = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = cache.clone();
                let p = p.clone();
                let computes = computes.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    barrier.wait();
                    let (r, _) = cache.get_or_compute(k, &p, true, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough that the other
                        // threads reliably coalesce instead of racing the
                        // ready slot.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok(dummy_optimized(&p))
                    });
                    assert!(r.is_ok());
                });
            }
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one search");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits() + cache.coalesced(), 7);
        assert!(cache.coalesced() >= 1, "waiters joined the flight");
    }

    #[test]
    fn panicking_compute_settles_the_flight_for_waiters() {
        use std::sync::Barrier;

        let cache = Arc::new(PlanCache::new(2));
        let p = tiny_program(6);
        let k = key(program_fingerprint(&p), 1, 0);
        let barrier = Arc::new(Barrier::new(2));

        let leader = {
            let cache = cache.clone();
            let p = p.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let (r, how) = cache.get_or_compute(k, &p, true, || {
                    barrier.wait(); // waiter is about to join the flight
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    panic!("injected worker panic");
                });
                assert_eq!(how, CacheOutcome::Miss);
                r
            })
        };
        barrier.wait();
        // Give the waiter path time to observe the in-flight slot.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let (waited, _) = cache.get_or_compute(k, &p, true, || Ok(dummy_optimized(&p)));

        let led = leader.join().expect("leader thread must not propagate");
        assert!(matches!(led, Err(ServerError::Internal(_))));
        // The waiter either coalesced onto the failed flight (Internal) or
        // arrived after it settled and recomputed successfully; both are
        // fine — what is not fine is a hang or a poisoned shard.
        if let Err(e) = waited {
            assert!(matches!(e, ServerError::Internal(_)));
        }
        let (r, _) = cache.get_or_compute(k, &p, true, || Ok(dummy_optimized(&p)));
        assert!(r.is_ok(), "cache stays usable after a panicked flight");
    }

    #[test]
    fn restore_inserts_but_never_overwrites() {
        let cache = PlanCache::new(2);
        let p = tiny_program(7);
        let k = key(program_fingerprint(&p), 1, 0);
        let plan = CachedPlan {
            program: p.clone(),
            optimized: dummy_optimized(&p),
        };
        assert!(cache.restore(k, plan.clone()));
        assert!(!cache.restore(k, plan), "live entries win over snapshots");
        assert_eq!(cache.restored(), 1);
        let (_, how) = cache.get_or_compute(k, &p, true, || panic!("restored entry must hit"));
        assert_eq!(how, CacheOutcome::Hit);
    }

    #[test]
    fn swap_and_purge_retire_old_epochs() {
        let cache = PlanCache::new(2);
        let p = tiny_program(5);
        let fp = program_fingerprint(&p);
        let old = key(fp, 7, 0);
        let (_, _) = cache.get_or_compute(old, &p, true, || Ok(dummy_optimized(&p)));
        let entries = cache.entries_for_instance(7);
        assert_eq!(entries.len(), 1);

        let new = key(fp, 7, 1);
        cache.swap_in(
            new,
            CachedPlan {
                program: p.clone(),
                optimized: dummy_optimized(&p),
            },
        );
        assert_eq!(cache.purge_instance_except(7, new.stamp), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.swapped(), 1);
        assert_eq!(cache.evicted(), 1);
        let (_, how) = cache.get_or_compute(new, &p, true, || panic!("swapped entry must hit"));
        assert_eq!(how, CacheOutcome::Hit);
    }
}
