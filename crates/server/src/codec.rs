//! The wire codec: a dependency-free binary encoding of requests and
//! responses.
//!
//! The protocol carries whole imperative programs (there is no textual
//! parser for the mini language, so the AST itself is the interchange
//! format). Every enum is encoded as a tag byte plus payload; strings
//! and sequences are u32-length-prefixed; multi-byte integers are
//! big-endian. Embedded query plans travel as SQL text via
//! [`minidb::sql::print`] — the printer is parse-idempotent, so decoding
//! with [`minidb::sql::parse`] reconstructs a structurally identical
//! plan (and therefore the identical [`minidb::PlanFingerprint`], which
//! is what keeps the server's plan cache warm across the wire).

use crate::error::ServerError;
use crate::plan_cache::CacheOutcome;
use crate::service::{ServerCounters, SubmitReply};
use imperative::ast::{Expr, Function, Program, QuerySpec, Stmt, StmtKind};
use interp::{NormalizedOutcome, Snapshot};
use minidb::{BinOp, CacheStamp, PlanFingerprint, Value};

type Result<T> = std::result::Result<T, ServerError>;

fn bad(what: &str) -> ServerError {
    ServerError::Protocol(format!("malformed frame: {what}"))
}

/// Append-only frame builder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The finished frame body.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }
}

/// Cursor over a received frame body.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// True when every byte has been consumed (frames must be exact).
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| bad("overflow"))?;
        if end > self.buf.len() {
            return Err(bad("truncated"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(bad("bool")),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("utf-8"))
    }

    pub(crate) fn len(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        // A length prefix can never exceed the bytes that remain; checking
        // here keeps a corrupt frame from provoking a huge allocation.
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(bad("length prefix"));
        }
        Ok(n)
    }
}

// ---- scalar layer -------------------------------------------------------

fn put_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.u8(0),
        Value::Int(i) => {
            w.u8(1);
            w.i64(*i);
        }
        Value::Float(f) => {
            w.u8(2);
            w.f64(*f);
        }
        Value::Str(s) => {
            w.u8(3);
            w.str(s);
        }
        Value::Bool(b) => {
            w.u8(4);
            w.bool(*b);
        }
    }
}

fn get_value(r: &mut ByteReader) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.i64()?),
        2 => Value::Float(r.f64()?),
        3 => Value::Str(r.str()?),
        4 => Value::Bool(r.bool()?),
        _ => return Err(bad("value tag")),
    })
}

const BIN_OPS: [BinOp; 12] = [
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::And,
    BinOp::Or,
];

fn put_bin_op(w: &mut ByteWriter, op: BinOp) {
    let code = BIN_OPS.iter().position(|o| *o == op).unwrap() as u8;
    w.u8(code);
}

fn get_bin_op(r: &mut ByteReader) -> Result<BinOp> {
    let code = r.u8()? as usize;
    BIN_OPS.get(code).copied().ok_or_else(|| bad("binop tag"))
}

// ---- expression / statement layer ---------------------------------------

fn put_query(w: &mut ByteWriter, q: &QuerySpec) {
    w.str(&minidb::sql::print(q.plan.as_plan()));
    w.len(q.binds.len());
    for (name, e) in &q.binds {
        w.str(name);
        put_expr(w, e);
    }
}

fn get_query(r: &mut ByteReader) -> Result<QuerySpec> {
    let sql = r.str()?;
    let plan = minidb::sql::parse(&sql)
        .map_err(|e| ServerError::Protocol(format!("embedded SQL failed to parse: {e}")))?;
    let n = r.len()?;
    let mut binds = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        binds.push((name, get_expr(r)?));
    }
    Ok(QuerySpec {
        plan: plan.into(),
        binds,
    })
}

fn put_expr(w: &mut ByteWriter, e: &Expr) {
    match e {
        Expr::Var(v) => {
            w.u8(0);
            w.str(v);
        }
        Expr::Lit(v) => {
            w.u8(1);
            put_value(w, v);
        }
        Expr::Bin(op, l, r) => {
            w.u8(2);
            put_bin_op(w, *op);
            put_expr(w, l);
            put_expr(w, r);
        }
        Expr::Not(e) => {
            w.u8(3);
            put_expr(w, e);
        }
        Expr::Field(b, name) => {
            w.u8(4);
            put_expr(w, b);
            w.str(name);
        }
        Expr::Nav(b, assoc) => {
            w.u8(5);
            put_expr(w, b);
            w.str(assoc);
        }
        Expr::Call(name, args) => {
            w.u8(6);
            w.str(name);
            w.len(args.len());
            for a in args {
                put_expr(w, a);
            }
        }
        Expr::LoadAll(entity) => {
            w.u8(7);
            w.str(entity);
        }
        Expr::Query(q) => {
            w.u8(8);
            put_query(w, q);
        }
        Expr::ScalarQuery(q) => {
            w.u8(9);
            put_query(w, q);
        }
        Expr::LookupCache(cache, key) => {
            w.u8(10);
            w.str(cache);
            put_expr(w, key);
        }
        Expr::MapGet(m, k) => {
            w.u8(11);
            put_expr(w, m);
            put_expr(w, k);
        }
        Expr::Len(e) => {
            w.u8(12);
            put_expr(w, e);
        }
    }
}

fn get_expr(r: &mut ByteReader) -> Result<Expr> {
    Ok(match r.u8()? {
        0 => Expr::Var(r.str()?),
        1 => Expr::Lit(get_value(r)?),
        2 => {
            let op = get_bin_op(r)?;
            Expr::Bin(op, Box::new(get_expr(r)?), Box::new(get_expr(r)?))
        }
        3 => Expr::Not(Box::new(get_expr(r)?)),
        4 => {
            let b = get_expr(r)?;
            Expr::Field(Box::new(b), r.str()?)
        }
        5 => {
            let b = get_expr(r)?;
            Expr::Nav(Box::new(b), r.str()?)
        }
        6 => {
            let name = r.str()?;
            let n = r.len()?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(get_expr(r)?);
            }
            Expr::Call(name, args)
        }
        7 => Expr::LoadAll(r.str()?),
        8 => Expr::Query(get_query(r)?),
        9 => Expr::ScalarQuery(get_query(r)?),
        10 => {
            let cache = r.str()?;
            Expr::LookupCache(cache, Box::new(get_expr(r)?))
        }
        11 => {
            let m = get_expr(r)?;
            Expr::MapGet(Box::new(m), Box::new(get_expr(r)?))
        }
        12 => Expr::Len(Box::new(get_expr(r)?)),
        _ => return Err(bad("expr tag")),
    })
}

fn put_stmts(w: &mut ByteWriter, stmts: &[Stmt]) {
    w.len(stmts.len());
    for s in stmts {
        put_stmt(w, s);
    }
}

fn get_stmts(r: &mut ByteReader) -> Result<Vec<Stmt>> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_stmt(r)?);
    }
    Ok(out)
}

fn put_stmt(w: &mut ByteWriter, s: &Stmt) {
    w.u32(s.line);
    match &s.kind {
        StmtKind::Let(v, e) => {
            w.u8(0);
            w.str(v);
            put_expr(w, e);
        }
        StmtKind::NewCollection(v) => {
            w.u8(1);
            w.str(v);
        }
        StmtKind::NewMap(v) => {
            w.u8(2);
            w.str(v);
        }
        StmtKind::Add(v, e) => {
            w.u8(3);
            w.str(v);
            put_expr(w, e);
        }
        StmtKind::Put(v, k, val) => {
            w.u8(4);
            w.str(v);
            put_expr(w, k);
            put_expr(w, val);
        }
        StmtKind::ForEach { var, iter, body } => {
            w.u8(5);
            w.str(var);
            put_expr(w, iter);
            put_stmts(w, body);
        }
        StmtKind::While { cond, body } => {
            w.u8(6);
            put_expr(w, cond);
            put_stmts(w, body);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            w.u8(7);
            put_expr(w, cond);
            put_stmts(w, then_branch);
            put_stmts(w, else_branch);
        }
        StmtKind::Print(e) => {
            w.u8(8);
            put_expr(w, e);
        }
        StmtKind::Return(e) => {
            w.u8(9);
            match e {
                Some(e) => {
                    w.bool(true);
                    put_expr(w, e);
                }
                None => w.bool(false),
            }
        }
        StmtKind::Break => w.u8(10),
        StmtKind::CacheByColumn {
            cache,
            source,
            key_col,
        } => {
            w.u8(11);
            w.str(cache);
            put_expr(w, source);
            w.str(key_col);
        }
        StmtKind::UpdateQuery {
            table,
            set_col,
            value,
            key_col,
            key,
        } => {
            w.u8(12);
            w.str(table);
            w.str(set_col);
            put_expr(w, value);
            w.str(key_col);
            put_expr(w, key);
        }
        StmtKind::LetCall(v, f, args) => {
            w.u8(13);
            w.str(v);
            w.str(f);
            w.len(args.len());
            for a in args {
                put_expr(w, a);
            }
        }
        StmtKind::TryCatch { body, handler } => {
            w.u8(14);
            put_stmts(w, body);
            put_stmts(w, handler);
        }
    }
}

fn get_stmt(r: &mut ByteReader) -> Result<Stmt> {
    let line = r.u32()?;
    let kind = match r.u8()? {
        0 => {
            let v = r.str()?;
            StmtKind::Let(v, get_expr(r)?)
        }
        1 => StmtKind::NewCollection(r.str()?),
        2 => StmtKind::NewMap(r.str()?),
        3 => {
            let v = r.str()?;
            StmtKind::Add(v, get_expr(r)?)
        }
        4 => {
            let v = r.str()?;
            let k = get_expr(r)?;
            StmtKind::Put(v, k, get_expr(r)?)
        }
        5 => {
            let var = r.str()?;
            let iter = get_expr(r)?;
            StmtKind::ForEach {
                var,
                iter,
                body: get_stmts(r)?,
            }
        }
        6 => {
            let cond = get_expr(r)?;
            StmtKind::While {
                cond,
                body: get_stmts(r)?,
            }
        }
        7 => {
            let cond = get_expr(r)?;
            let then_branch = get_stmts(r)?;
            StmtKind::If {
                cond,
                then_branch,
                else_branch: get_stmts(r)?,
            }
        }
        8 => StmtKind::Print(get_expr(r)?),
        9 => {
            let some = r.bool()?;
            StmtKind::Return(if some { Some(get_expr(r)?) } else { None })
        }
        10 => StmtKind::Break,
        11 => {
            let cache = r.str()?;
            let source = get_expr(r)?;
            StmtKind::CacheByColumn {
                cache,
                source,
                key_col: r.str()?,
            }
        }
        12 => {
            let table = r.str()?;
            let set_col = r.str()?;
            let value = get_expr(r)?;
            let key_col = r.str()?;
            StmtKind::UpdateQuery {
                table,
                set_col,
                value,
                key_col,
                key: get_expr(r)?,
            }
        }
        13 => {
            let v = r.str()?;
            let f = r.str()?;
            let n = r.len()?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(get_expr(r)?);
            }
            StmtKind::LetCall(v, f, args)
        }
        14 => {
            let body = get_stmts(r)?;
            StmtKind::TryCatch {
                body,
                handler: get_stmts(r)?,
            }
        }
        _ => return Err(bad("stmt tag")),
    };
    Ok(Stmt { kind, line })
}

pub(crate) fn put_function(w: &mut ByteWriter, f: &Function) {
    w.str(&f.name);
    w.len(f.params.len());
    for p in &f.params {
        w.str(p);
    }
    put_stmts(w, &f.body);
}

pub(crate) fn get_function(r: &mut ByteReader) -> Result<Function> {
    let name = r.str()?;
    let n = r.len()?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(r.str()?);
    }
    Ok(Function {
        name,
        params,
        body: get_stmts(r)?,
    })
}

/// Encode a whole program.
pub fn put_program(w: &mut ByteWriter, p: &Program) {
    w.len(p.functions.len());
    for f in &p.functions {
        put_function(w, f);
    }
}

/// Decode a whole program.
pub fn get_program(r: &mut ByteReader) -> Result<Program> {
    let n = r.len()?;
    if n == 0 {
        return Err(bad("empty program"));
    }
    let mut functions = Vec::with_capacity(n);
    for _ in 0..n {
        functions.push(get_function(r)?);
    }
    Ok(Program { functions })
}

// ---- outcome layer ------------------------------------------------------

fn put_snapshot(w: &mut ByteWriter, s: &Snapshot) {
    match s {
        Snapshot::Unit => w.u8(0),
        Snapshot::Scalar(v) => {
            w.u8(1);
            put_value(w, v);
        }
        Snapshot::Row(vals) => {
            w.u8(2);
            w.len(vals.len());
            for v in vals {
                put_value(w, v);
            }
        }
        Snapshot::List(items) => {
            w.u8(3);
            w.len(items.len());
            for i in items {
                put_snapshot(w, i);
            }
        }
        Snapshot::Map(entries) => {
            w.u8(4);
            w.len(entries.len());
            for (k, v) in entries {
                put_value(w, k);
                put_snapshot(w, v);
            }
        }
    }
}

fn get_snapshot(r: &mut ByteReader) -> Result<Snapshot> {
    Ok(match r.u8()? {
        0 => Snapshot::Unit,
        1 => Snapshot::Scalar(get_value(r)?),
        2 => {
            let n = r.len()?;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(get_value(r)?);
            }
            Snapshot::Row(vals)
        }
        3 => {
            let n = r.len()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(get_snapshot(r)?);
            }
            Snapshot::List(items)
        }
        4 => {
            let n = r.len()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let k = get_value(r)?;
                entries.push((k, get_snapshot(r)?));
            }
            Snapshot::Map(entries)
        }
        _ => return Err(bad("snapshot tag")),
    })
}

fn put_outcome(w: &mut ByteWriter, o: &NormalizedOutcome) {
    w.len(o.vars.len());
    for (name, snap) in &o.vars {
        w.str(name);
        put_snapshot(w, snap);
    }
    put_snapshot(w, &o.ret);
    w.len(o.prints.len());
    for p in &o.prints {
        put_snapshot(w, p);
    }
}

fn get_outcome(r: &mut ByteReader) -> Result<NormalizedOutcome> {
    let n = r.len()?;
    let mut vars = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        vars.push((name, get_snapshot(r)?));
    }
    let ret = get_snapshot(r)?;
    let n = r.len()?;
    let mut prints = Vec::with_capacity(n);
    for _ in 0..n {
        prints.push(get_snapshot(r)?);
    }
    Ok(NormalizedOutcome { vars, ret, prints })
}

pub(crate) fn put_stamp(w: &mut ByteWriter, s: &CacheStamp) {
    w.u64(s.instance_id);
    w.u64(s.stats_epoch);
    w.u64(s.feedback_generation);
    w.u8(s.mode);
}

pub(crate) fn get_stamp(r: &mut ByteReader) -> Result<CacheStamp> {
    Ok(CacheStamp {
        instance_id: r.u64()?,
        stats_epoch: r.u64()?,
        feedback_generation: r.u64()?,
        mode: r.u8()?,
    })
}

fn put_reply(w: &mut ByteWriter, reply: &SubmitReply) {
    w.u64(reply.fingerprint.as_u64());
    put_stamp(w, &reply.stamp);
    w.u8(match reply.cache {
        CacheOutcome::Hit => 0,
        CacheOutcome::Miss => 1,
        CacheOutcome::Coalesced => 2,
    });
    w.bool(reply.degraded);
    w.f64(reply.est_cost_ns);
    w.f64(reply.original_cost_ns);
    w.len(reply.tags.len());
    for t in &reply.tags {
        w.str(t);
    }
    w.u64(reply.simulated_ns);
    w.u64(reply.round_trips);
    put_outcome(w, &reply.results);
    w.u64(reply.wall_ns);
}

fn get_reply(r: &mut ByteReader) -> Result<SubmitReply> {
    let fingerprint = PlanFingerprint::from_raw(r.u64()?);
    let stamp = get_stamp(r)?;
    let cache = match r.u8()? {
        0 => CacheOutcome::Hit,
        1 => CacheOutcome::Miss,
        2 => CacheOutcome::Coalesced,
        _ => return Err(bad("cache outcome tag")),
    };
    let degraded = r.bool()?;
    let est_cost_ns = r.f64()?;
    let original_cost_ns = r.f64()?;
    let n = r.len()?;
    let mut tags = Vec::with_capacity(n);
    for _ in 0..n {
        tags.push(r.str()?);
    }
    Ok(SubmitReply {
        fingerprint,
        stamp,
        cache,
        degraded,
        est_cost_ns,
        original_cost_ns,
        tags,
        simulated_ns: r.u64()?,
        round_trips: r.u64()?,
        results: get_outcome(r)?,
        wall_ns: r.u64()?,
    })
}

fn put_counters(w: &mut ByteWriter, c: &ServerCounters) {
    for v in [
        c.cache_hits,
        c.cache_misses,
        c.coalesced,
        c.plans_swapped,
        c.evicted,
        c.admitted,
        c.rejected,
        c.degraded,
        c.sessions_opened,
        c.tenants,
        c.executions,
        c.drift_swaps,
        c.validated_promotions,
        c.internal_errors,
        c.idempotent_replays,
        c.restored_plans,
    ] {
        w.u64(v);
    }
}

fn get_counters(r: &mut ByteReader) -> Result<ServerCounters> {
    Ok(ServerCounters {
        cache_hits: r.u64()?,
        cache_misses: r.u64()?,
        coalesced: r.u64()?,
        plans_swapped: r.u64()?,
        evicted: r.u64()?,
        admitted: r.u64()?,
        rejected: r.u64()?,
        degraded: r.u64()?,
        sessions_opened: r.u64()?,
        tenants: r.u64()?,
        executions: r.u64()?,
        drift_swaps: r.u64()?,
        validated_promotions: r.u64()?,
        internal_errors: r.u64()?,
        idempotent_replays: r.u64()?,
        restored_plans: r.u64()?,
    })
}

// ---- frame layer --------------------------------------------------------

/// A client→server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session against the named tenant.
    OpenSession {
        /// Tenant name (as registered).
        tenant: String,
    },
    /// Submit a program on a session.
    Submit {
        /// The session id.
        session: u64,
        /// Idempotency key (0 = none). A retried submission reusing the
        /// key replays the original reply if the first attempt actually
        /// completed server-side — the work is never done twice.
        idempotency: u64,
        /// The program to optimize and execute.
        program: Program,
    },
    /// Fetch the optimization report for the session's last program.
    Report {
        /// The session id.
        session: u64,
    },
    /// Fetch the server-wide counters.
    Counters,
    /// Close a session.
    CloseSession {
        /// The session id.
        session: u64,
    },
    /// Ask the server to shut down.
    Shutdown,
}

impl Request {
    /// Encode into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::OpenSession { tenant } => {
                w.u8(1);
                w.str(tenant);
            }
            Request::Submit {
                session,
                idempotency,
                program,
            } => {
                w.u8(2);
                w.u64(*session);
                w.u64(*idempotency);
                put_program(&mut w, program);
            }
            Request::Report { session } => {
                w.u8(3);
                w.u64(*session);
            }
            Request::Counters => w.u8(4),
            Request::CloseSession { session } => {
                w.u8(5);
                w.u64(*session);
            }
            Request::Shutdown => w.u8(6),
        }
        w.finish()
    }

    /// Decode a frame body (must consume every byte).
    pub fn decode(buf: &[u8]) -> Result<Request> {
        let mut r = ByteReader::new(buf);
        let req = match r.u8()? {
            1 => Request::OpenSession { tenant: r.str()? },
            2 => {
                let session = r.u64()?;
                let idempotency = r.u64()?;
                Request::Submit {
                    session,
                    idempotency,
                    program: get_program(&mut r)?,
                }
            }
            3 => Request::Report { session: r.u64()? },
            4 => Request::Counters,
            5 => Request::CloseSession { session: r.u64()? },
            6 => Request::Shutdown,
            _ => return Err(bad("request tag")),
        };
        if !r.at_end() {
            return Err(bad("trailing bytes"));
        }
        Ok(req)
    }
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed; `code`/`message` round-trip a
    /// [`ServerError`] (see [`ServerError::code`]).
    Error {
        /// Stable error code.
        code: u8,
        /// Human-readable message.
        message: String,
    },
    /// Session opened.
    SessionOpened {
        /// The new session id.
        session: u64,
    },
    /// Submission succeeded.
    SubmitOk(Box<SubmitReply>),
    /// The optimization report, rendered (reports are for humans; the
    /// structured numbers a client acts on are in [`SubmitReply`]).
    ReportText(String),
    /// Counter snapshot.
    Counters(ServerCounters),
    /// Session closed.
    Closed,
    /// Shutdown acknowledged.
    ShuttingDown,
}

impl Response {
    /// Encode into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Error { code, message } => {
                w.u8(0);
                w.u8(*code);
                w.str(message);
            }
            Response::SessionOpened { session } => {
                w.u8(1);
                w.u64(*session);
            }
            Response::SubmitOk(reply) => {
                w.u8(2);
                put_reply(&mut w, reply);
            }
            Response::ReportText(text) => {
                w.u8(3);
                w.str(text);
            }
            Response::Counters(c) => {
                w.u8(4);
                put_counters(&mut w, c);
            }
            Response::Closed => w.u8(5),
            Response::ShuttingDown => w.u8(6),
        }
        w.finish()
    }

    /// Decode a frame body (must consume every byte).
    pub fn decode(buf: &[u8]) -> Result<Response> {
        let mut r = ByteReader::new(buf);
        let resp = match r.u8()? {
            0 => {
                let code = r.u8()?;
                Response::Error {
                    code,
                    message: r.str()?,
                }
            }
            1 => Response::SessionOpened { session: r.u64()? },
            2 => Response::SubmitOk(Box::new(get_reply(&mut r)?)),
            3 => Response::ReportText(r.str()?),
            4 => Response::Counters(get_counters(&mut r)?),
            5 => Response::Closed,
            6 => Response::ShuttingDown,
            _ => return Err(bad("response tag")),
        };
        if !r.at_end() {
            return Err(bad("trailing bytes"));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::genprog::{GenCase, GenConfig};

    #[test]
    fn programs_roundtrip_over_the_generated_corpus() {
        for seed in 0..40u64 {
            let case = GenCase::from_seed(seed, &GenConfig::default());
            let mut w = ByteWriter::new();
            put_program(&mut w, &case.program);
            let bytes = w.finish();
            let mut r = ByteReader::new(&bytes);
            let back = get_program(&mut r).expect("decode");
            assert!(r.at_end(), "seed {seed}: trailing bytes");
            assert_eq!(back, case.program, "seed {seed}: program roundtrip");
        }
    }

    #[test]
    fn roundtrip_preserves_plan_fingerprints() {
        // Cache warmth across the wire depends on this: the decoded
        // program must fingerprint identically to the submitted one.
        use crate::plan_cache::program_fingerprint;
        for seed in [3u64, 17, 29] {
            let case = GenCase::from_seed(seed, &GenConfig::default());
            let mut w = ByteWriter::new();
            put_program(&mut w, &case.program);
            let bytes = w.finish();
            let back = get_program(&mut ByteReader::new(&bytes)).unwrap();
            assert_eq!(
                program_fingerprint(&back),
                program_fingerprint(&case.program)
            );
        }
    }

    #[test]
    fn requests_and_responses_roundtrip() {
        let case = GenCase::from_seed(5, &GenConfig::default());
        let reqs = [
            Request::OpenSession {
                tenant: "acme".into(),
            },
            Request::Submit {
                session: 42,
                idempotency: 0xFEED,
                program: case.program.clone(),
            },
            Request::Report { session: 42 },
            Request::Counters,
            Request::CloseSession { session: 42 },
            Request::Shutdown,
        ];
        for req in &reqs {
            assert_eq!(&Request::decode(&req.encode()).unwrap(), req);
        }

        let counters = ServerCounters {
            cache_hits: 10,
            cache_misses: 2,
            coalesced: 3,
            ..ServerCounters::default()
        };
        let resps = [
            Response::Error {
                code: 1,
                message: "overloaded".into(),
            },
            Response::SessionOpened { session: 7 },
            Response::ReportText("== report ==".into()),
            Response::Counters(counters),
            Response::Closed,
            Response::ShuttingDown,
        ];
        for resp in &resps {
            assert_eq!(&Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_frames_error_cleanly() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err());
        assert!(Response::decode(&[2, 0, 0]).is_err(), "truncated reply");
        // A length prefix larger than the frame must not allocate.
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u32(u32::MAX);
        assert!(Request::decode(&w.finish()).is_err());
        // Trailing garbage is rejected.
        let mut ok = Request::Counters.encode();
        ok.push(0);
        assert!(Request::decode(&ok).is_err());
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoder() {
        // Regression fuzz: deterministic pseudo-random byte soup must
        // produce `Err(Protocol)` or a valid frame — never a panic or a
        // runaway allocation. (Catching a decoder panic would abort the
        // whole server's reader thread; this is the codec-hardening
        // contract the chaos harness leans on.)
        let mut rng = netsim::StdRng::seed_from_u64(0xBAD_F00D);
        for _ in 0..2000 {
            let len = rng.gen_range(0..96usize);
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                *b = rng.gen_range(0..256u64) as u8;
            }
            let _ = Request::decode(&buf);
            let _ = Response::decode(&buf);
        }
        // Truncations of a real frame are equally harmless.
        let case = GenCase::from_seed(11, &GenConfig::default());
        let full = Request::Submit {
            session: 1,
            idempotency: 7,
            program: case.program,
        }
        .encode();
        for cut in 0..full.len() {
            assert!(Request::decode(&full[..cut]).is_err(), "cut at {cut}");
        }
    }
}
