//! Seeded fault injection for the serving stack.
//!
//! A [`FaultPlan`] is threaded through the wire server and the service's
//! worker paths and decides, at each injection site, whether to misbehave:
//! drop the connection before replying, write a short frame, stall or slow
//! a response, corrupt a frame on the way out, or panic inside a worker.
//! Every decision draws from the workspace PRNG ([`netsim::StdRng`]) keyed
//! by `(seed, site, per-site sequence number)`, so a given `u64` seed
//! replays the same fault schedule for the same request order — chaos runs
//! are reproducible, and a failing seed is a repro, not an anecdote.
//!
//! The default plan ([`FaultPlan::off`]) is inert: `decide` short-circuits
//! to `None` without touching an atomic, so a server with faults disabled
//! behaves exactly like one built before this module existed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use netsim::StdRng;

/// The kinds of fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Close the connection without sending a response.
    ConnReset,
    /// Write the length prefix and part of the body, then close.
    PartialWrite,
    /// Sleep longer than any reasonable client deadline before replying
    /// (the client sees a read timeout).
    StallRead,
    /// Sleep briefly before replying (latency, but the request succeeds).
    SlowRead,
    /// Flip the response frame's tag byte to garbage so it fails to decode.
    CorruptFrame,
    /// Panic inside the worker serving the request.
    WorkerPanic,
}

impl FaultKind {
    /// All kinds, in counter order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::ConnReset,
        FaultKind::PartialWrite,
        FaultKind::StallRead,
        FaultKind::SlowRead,
        FaultKind::CorruptFrame,
        FaultKind::WorkerPanic,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::ConnReset => 0,
            FaultKind::PartialWrite => 1,
            FaultKind::StallRead => 2,
            FaultKind::SlowRead => 3,
            FaultKind::CorruptFrame => 4,
            FaultKind::WorkerPanic => 5,
        }
    }

    /// Short stable name (used in reports and bench output).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ConnReset => "conn-reset",
            FaultKind::PartialWrite => "partial-write",
            FaultKind::StallRead => "stall-read",
            FaultKind::SlowRead => "slow-read",
            FaultKind::CorruptFrame => "corrupt-frame",
            FaultKind::WorkerPanic => "worker-panic",
        }
    }
}

/// Where a fault decision is being made. Each site has its own decision
/// sequence so schedules at one site don't perturb another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The wire server is about to write a response frame.
    Response,
    /// A worker is about to run the optimizer search for a cache miss.
    Search,
    /// A worker is about to execute an optimized program.
    Execute,
}

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::Response => 0,
            FaultSite::Search => 1,
            FaultSite::Execute => 2,
        }
    }
}

/// Fault probabilities (per mille, i.e. ‰ per decision) and timing knobs.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// ‰ chance per response of closing the connection without replying.
    pub reset_permille: u32,
    /// ‰ chance per response of a short write (prefix + partial body).
    pub partial_write_permille: u32,
    /// ‰ chance per response of stalling past the client deadline.
    pub stall_permille: u32,
    /// ‰ chance per response of a slow (but successful) reply.
    pub slow_permille: u32,
    /// ‰ chance per response of corrupting the frame tag byte.
    pub corrupt_permille: u32,
    /// ‰ chance per search/execute job of a worker panic.
    pub panic_permille: u32,
    /// How long a stalled response sleeps (should exceed client deadlines).
    pub stall: Duration,
    /// How long a slow response sleeps (should stay under client deadlines).
    pub slow: Duration,
}

impl FaultConfig {
    /// All fault rates zero: injection fully disabled.
    pub fn off() -> FaultConfig {
        FaultConfig {
            seed: 0,
            reset_permille: 0,
            partial_write_permille: 0,
            stall_permille: 0,
            slow_permille: 0,
            corrupt_permille: 0,
            panic_permille: 0,
            stall: Duration::from_millis(0),
            slow: Duration::from_millis(0),
        }
    }

    /// A moderately hostile mix: every fault kind enabled at rates where a
    /// handful of faults land per hundred requests.
    pub fn chaos(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            reset_permille: 60,
            partial_write_permille: 50,
            stall_permille: 40,
            slow_permille: 60,
            corrupt_permille: 50,
            panic_permille: 60,
            stall: Duration::from_millis(150),
            slow: Duration::from_millis(5),
        }
    }

    fn enabled(&self) -> bool {
        self.reset_permille
            + self.partial_write_permille
            + self.stall_permille
            + self.slow_permille
            + self.corrupt_permille
            + self.panic_permille
            > 0
    }
}

/// A seeded, shareable fault schedule with per-kind injection counters.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    enabled: bool,
    seq: [AtomicU64; 3],
    injected: [AtomicU64; 6],
}

impl FaultPlan {
    /// An inert plan: never injects, adds no overhead on the serving path.
    pub fn off() -> Arc<FaultPlan> {
        FaultPlan::from_config(FaultConfig::off())
    }

    /// The default hostile mix for `seed` (see [`FaultConfig::chaos`]).
    pub fn chaos(seed: u64) -> Arc<FaultPlan> {
        FaultPlan::from_config(FaultConfig::chaos(seed))
    }

    /// Build a plan from explicit rates.
    pub fn from_config(cfg: FaultConfig) -> Arc<FaultPlan> {
        let enabled = cfg.enabled();
        Arc::new(FaultPlan {
            cfg,
            enabled,
            seq: Default::default(),
            injected: Default::default(),
        })
    }

    /// Whether any fault rate is non-zero.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Timing for [`FaultKind::StallRead`].
    pub fn stall_duration(&self) -> Duration {
        self.cfg.stall
    }

    /// Timing for [`FaultKind::SlowRead`].
    pub fn slow_duration(&self) -> Duration {
        self.cfg.slow
    }

    /// Decide whether to inject a fault at `site`. Deterministic per
    /// `(seed, site, decision index)`; decision indexes advance one per
    /// call, independently per site.
    pub fn decide(&self, site: FaultSite) -> Option<FaultKind> {
        if !self.enabled {
            return None;
        }
        let n = self.seq[site.index()].fetch_add(1, Ordering::Relaxed);
        // Mix site and sequence into the seed; StdRng's splitmix64 seeding
        // then decorrelates neighbouring (site, n) pairs.
        let mixed = self
            .cfg
            .seed
            .wrapping_add((site.index() as u64 + 1).wrapping_mul(0xA24BAED4963EE407))
            .wrapping_add(n.wrapping_mul(0x9E3779B97F4A7C15));
        let mut rng = StdRng::seed_from_u64(mixed);
        let roll = rng.gen_range(0..1000u32);
        let kind = match site {
            FaultSite::Response => {
                let c = &self.cfg;
                let mut bound = c.reset_permille;
                if roll < bound {
                    Some(FaultKind::ConnReset)
                } else if roll < {
                    bound += c.partial_write_permille;
                    bound
                } {
                    Some(FaultKind::PartialWrite)
                } else if roll < {
                    bound += c.stall_permille;
                    bound
                } {
                    Some(FaultKind::StallRead)
                } else if roll < {
                    bound += c.slow_permille;
                    bound
                } {
                    Some(FaultKind::SlowRead)
                } else if roll < {
                    bound += c.corrupt_permille;
                    bound
                } {
                    Some(FaultKind::CorruptFrame)
                } else {
                    None
                }
            }
            FaultSite::Search | FaultSite::Execute => {
                if roll < self.cfg.panic_permille {
                    Some(FaultKind::WorkerPanic)
                } else {
                    None
                }
            }
        };
        if let Some(k) = kind {
            self.injected[k.index()].fetch_add(1, Ordering::Relaxed);
        }
        kind
    }

    /// How many faults of `kind` have been injected so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()].load(Ordering::Relaxed)
    }

    /// Total faults injected across all kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-kind injection counts, in [`FaultKind::ALL`] order.
    pub fn counts(&self) -> [(FaultKind, u64); 6] {
        FaultKind::ALL.map(|k| (k, self.injected(k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_never_injects() {
        let plan = FaultPlan::off();
        assert!(!plan.enabled());
        for _ in 0..1000 {
            assert_eq!(plan.decide(FaultSite::Response), None);
            assert_eq!(plan.decide(FaultSite::Search), None);
        }
        assert_eq!(plan.total_injected(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::chaos(1234);
        let b = FaultPlan::chaos(1234);
        for _ in 0..500 {
            assert_eq!(a.decide(FaultSite::Response), b.decide(FaultSite::Response));
            assert_eq!(a.decide(FaultSite::Search), b.decide(FaultSite::Search));
            assert_eq!(a.decide(FaultSite::Execute), b.decide(FaultSite::Execute));
        }
        assert_eq!(a.total_injected(), b.total_injected());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::chaos(1);
        let b = FaultPlan::chaos(2);
        let sa: Vec<_> = (0..500).map(|_| a.decide(FaultSite::Response)).collect();
        let sb: Vec<_> = (0..500).map(|_| b.decide(FaultSite::Response)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn chaos_hits_every_kind_eventually() {
        let plan = FaultPlan::chaos(42);
        for _ in 0..4000 {
            plan.decide(FaultSite::Response);
            plan.decide(FaultSite::Search);
            plan.decide(FaultSite::Execute);
        }
        for (kind, count) in plan.counts() {
            assert!(
                count > 0,
                "{} never injected in 4000 decisions",
                kind.name()
            );
        }
        // Rates are per-mille; sanity-check we're in the right order of
        // magnitude rather than injecting on every call.
        assert!(plan.total_injected() < 4000);
    }

    #[test]
    fn sites_have_independent_sequences() {
        // Consuming decisions at one site must not shift another site's
        // schedule (request ordering on the wire shouldn't perturb worker
        // fault timing).
        let a = FaultPlan::chaos(7);
        let b = FaultPlan::chaos(7);
        for _ in 0..100 {
            a.decide(FaultSite::Response);
        }
        let sa: Vec<_> = (0..100).map(|_| a.decide(FaultSite::Search)).collect();
        let sb: Vec<_> = (0..100).map(|_| b.decide(FaultSite::Search)).collect();
        assert_eq!(sa, sb);
    }
}
