//! Poison-recovering lock access.
//!
//! `std` mutexes and rwlocks poison themselves when a holder panics. In a
//! server that isolates worker panics (see [`crate::fault`] and the
//! `catch_unwind` boundaries in the service and plan cache), poisoning is
//! exactly wrong: one injected or real panic would turn every later
//! `lock().unwrap()` into a cascading panic, wedging sessions that never
//! touched the faulty job. All shared state in this crate is kept
//! consistent *before* fallible work runs (guards are held only for short
//! read/insert sections, never across optimizer or executor calls), so
//! recovering the guard from a `PoisonError` is always safe here.
//!
//! These helpers are the only sanctioned way to take a lock in
//! `cobra-server`; plain `.lock().unwrap()` is a bug.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Lock a mutex, recovering the guard if a previous holder panicked.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Take a read lock, recovering the guard if a previous holder panicked.
pub fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Take a write lock, recovering the guard if a previous holder panicked.
pub fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// `Condvar::wait` that recovers the guard instead of propagating poison.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// `Condvar::wait_timeout` that recovers the guard instead of propagating
/// poison. Returns the guard and whether the wait timed out.
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, dur) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(e) => {
            let (g, t) = e.into_inner();
            (g, t.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Mutex, RwLock};

    #[test]
    fn lock_recovers_from_poison() {
        let m = Mutex::new(7u32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 8);
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let l = RwLock::new(vec![1, 2, 3]);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = l.write().unwrap();
            panic!("poison it");
        }));
        assert!(l.is_poisoned());
        assert_eq!(read(&l).len(), 3);
        write(&l).push(4);
        assert_eq!(read(&l).len(), 4);
    }
}
