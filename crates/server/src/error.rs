//! Typed server errors.
//!
//! Every failure a client can observe is a [`ServerError`] variant with a
//! stable wire code, so load shedding ([`ServerError::Overloaded`]) is
//! distinguishable from optimizer failures, protocol garbage, and
//! shutdown — a client under `Overloaded` should back off and retry, not
//! report a bug.

use minidb::DbError;

/// Everything the serving layer can report to a caller.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// Admission control shed this request: the worker pool was saturated
    /// and the wait queue full. Carries the queue state at rejection time
    /// so clients (and tests) can see how loaded the server was.
    Overloaded {
        /// Requests currently being served.
        running: usize,
        /// Requests queued waiting for a worker.
        queued: usize,
    },
    /// No tenant registered under that id/name.
    UnknownTenant(String),
    /// No open session with that id.
    UnknownSession(u64),
    /// The optimizer or executor failed (wraps the `DbError` text).
    Db(String),
    /// A wire frame failed to decode.
    Protocol(String),
    /// Connection/transport failure (wire clients only).
    Io(String),
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// A worker panicked while serving this request. The panic was caught
    /// at the job boundary — locks stay usable, the admission slot is
    /// released, and only this request fails. Carries the panic message.
    Internal(String),
    /// A plan-cache snapshot failed to load: bad magic, unsupported
    /// version, checksum mismatch, or truncated/garbled payload. The
    /// server starts cold instead of wedging on bad persisted state.
    Snapshot(String),
}

impl ServerError {
    /// Stable wire code for this variant (frame-level error tag).
    pub fn code(&self) -> u8 {
        match self {
            ServerError::Overloaded { .. } => 1,
            ServerError::UnknownTenant(_) => 2,
            ServerError::UnknownSession(_) => 3,
            ServerError::Db(_) => 4,
            ServerError::Protocol(_) => 5,
            ServerError::Io(_) => 6,
            ServerError::ShuttingDown => 7,
            ServerError::Internal(_) => 8,
            ServerError::Snapshot(_) => 9,
        }
    }

    /// Build an [`ServerError::Internal`] from a caught panic payload
    /// (the `Box<dyn Any>` `std::panic::catch_unwind` hands back).
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> ServerError {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic of unknown type".to_string()
        };
        ServerError::Internal(msg)
    }

    /// Rebuild a variant from its wire code and message (the lossy
    /// inverse of [`ServerError::code`] + [`std::fmt::Display`]:
    /// `Overloaded` queue numbers survive only in the message text).
    pub fn from_code(code: u8, message: String) -> ServerError {
        match code {
            1 => ServerError::Overloaded {
                running: 0,
                queued: 0,
            },
            2 => ServerError::UnknownTenant(message),
            3 => ServerError::UnknownSession(0),
            4 => ServerError::Db(message),
            6 => ServerError::Io(message),
            7 => ServerError::ShuttingDown,
            8 => ServerError::Internal(message),
            9 => ServerError::Snapshot(message),
            _ => ServerError::Protocol(message),
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Overloaded { running, queued } => write!(
                f,
                "overloaded: {running} running, {queued} queued; retry later"
            ),
            ServerError::UnknownTenant(name) => write!(f, "unknown tenant: {name}"),
            ServerError::UnknownSession(id) => write!(f, "unknown session: {id}"),
            ServerError::Db(msg) => write!(f, "database error: {msg}"),
            ServerError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServerError::Io(msg) => write!(f, "i/o error: {msg}"),
            ServerError::ShuttingDown => write!(f, "server shutting down"),
            ServerError::Internal(msg) => write!(f, "internal error: worker panicked: {msg}"),
            ServerError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<DbError> for ServerError {
    fn from(e: DbError) -> ServerError {
        ServerError::Db(e.to_string())
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> ServerError {
        ServerError::Io(e.to_string())
    }
}
