//! Cobra-as-a-service: a concurrent optimizer/execution server.
//!
//! Everything up to now has been a library: an application embeds
//! [`cobra_core::Cobra`], optimizes its programs, and runs them. This
//! crate turns that into a *service* — a long-running process that any
//! number of clients submit imperative programs to, with the economics
//! that make serving worthwhile:
//!
//! * **Sharded single-flight plan cache** ([`PlanCache`]): optimization
//!   is the expensive step (region search over the memo), so results are
//!   cached by `(program fingerprint, CacheStamp)`. N sessions
//!   submitting the same program concurrently pay for *one* search; the
//!   rest block briefly and share the `Arc<Optimized>`.
//! * **Sessions and tenants** ([`CobraService`]): tenants register a
//!   database, ORM mappings, and functions; sessions open against a
//!   tenant. The cache stamp's `instance_id` keys every entry to its
//!   tenant, so isolation is structural, not policy.
//! * **Admission control** ([`crate::admission::Admission`]): a bounded
//!   worker pool with a bounded queue. Beyond the queue, requests are
//!   shed with [`ServerError::Overloaded`]; under queue pressure,
//!   requests are served with a degraded search budget instead of the
//!   full one.
//! * **Drift-driven hot swap**: executions feed observed cardinalities
//!   into each tenant's feedback store; a background sweeper checks
//!   [`cobra_core::Cobra::estimation_drift`] and atomically re-optimizes
//!   and swaps cached plans when the model has diverged.
//! * **Wire protocol** ([`WireServer`]/[`WireClient`]): a dependency-free
//!   length-prefixed binary protocol over `std::net::TcpStream`, so the
//!   service also runs out of process.
//! * **Fault injection and resilience** ([`FaultPlan`], [`RetryPolicy`],
//!   [`Health`]): a seeded chaos harness injects connection resets,
//!   partial writes, stalls, corrupt frames, and worker panics at the
//!   server's seams; the client retries with bounded exponential backoff
//!   and idempotency keys; the service isolates panics, degrades under
//!   sustained faults, and drains cleanly on shutdown.
//! * **Crash-safe persistence** ([`Snapshot`]): the plan cache and
//!   feedback stores snapshot to a versioned, checksummed file (written
//!   atomically) and restore on restart, so a rebooted server serves
//!   cache hits instead of re-searching.
//!
//! ```
//! use cobra_server::{CobraService, ServerConfig, TenantSpec};
//! use workloads::harness::Fixture;
//! use workloads::genprog::{GenCase, GenConfig};
//!
//! let service = CobraService::new(ServerConfig::default());
//! // Seed 3 generates a read-only program: a database *write* advances
//! // the stats epoch and (correctly) invalidates cached plans.
//! let case = GenCase::from_seed(3, &GenConfig::default());
//! let fx = case.fixture();
//! let tenant = service.register_tenant(TenantSpec::new(
//!     "acme", fx.db.clone(), fx.mapping.clone(), fx.funcs.clone(),
//! ));
//! let session = service.open_session(tenant).unwrap();
//! let first = service.submit(session, &case.program).unwrap();
//! let second = service.submit(session, &case.program).unwrap();
//! assert_eq!(first.results, second.results);
//! assert_eq!(second.cache.to_string(), "hit"); // warm after one miss
//! service.shutdown();
//! ```

pub mod admission;
pub mod codec;
pub mod error;
pub mod fault;
pub mod net;
pub mod plan_cache;
pub mod service;
pub mod snapshot;
pub mod sync;

pub use codec::{Request, Response};
pub use error::ServerError;
pub use fault::{FaultConfig, FaultKind, FaultPlan, FaultSite};
pub use net::{RetryPolicy, WireClient, WireServer};
pub use plan_cache::{program_fingerprint, CacheKey, CacheOutcome, CachedPlan, PlanCache};
pub use service::{
    CobraService, Health, ServerConfig, ServerCounters, SessionId, SubmitReply, TenantId,
    TenantSpec,
};
pub use snapshot::{RestoreReport, Snapshot};
