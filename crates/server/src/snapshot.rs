//! Crash-safe persistence of the server's warm state: the plan cache and
//! per-tenant feedback stores.
//!
//! A [`Snapshot`] is a versioned, checksummed binary image of every
//! tenant's completed plan-cache entries (program + optimized result)
//! and runtime-feedback observations, written atomically (temp file +
//! rename) so a crash mid-write leaves either the old snapshot or the
//! new one — never a torn file. On restart,
//! [`CobraService::restore`](crate::CobraService::restore) re-seeds the
//! cache so the first submission of a previously-optimized program is a
//! [`CacheOutcome::Hit`](crate::CacheOutcome::Hit) instead of a fresh
//! search.
//!
//! Safety properties, in order of importance:
//!
//! 1. **Corruption is detected, not trusted.** Bad magic, an unsupported
//!    version, a checksum mismatch, or a truncated/garbled payload all
//!    surface as [`ServerError::Snapshot`]; the server starts cold and
//!    keeps serving. A snapshot can make a restart faster — it can never
//!    make it wrong or wedge it.
//! 2. **Stale state is skipped, not resurrected.** Every tenant section
//!    carries the [`CacheStamp`] it was captured under; entries whose
//!    stamp no longer matches the live tenant (different database
//!    instance, newer stats epoch) are counted in
//!    [`RestoreReport::plans_skipped_stale`] and dropped.
//! 3. **Live state wins.** Restore never overwrites an entry the running
//!    server already produced — anything computed since restart is at
//!    least as fresh as the snapshot.
//!
//! The payload reuses the wire codec's byte layer, so programs and
//! functions round-trip with the same fingerprint-preserving encoding
//! the protocol itself relies on.

use crate::codec::{self, ByteReader, ByteWriter};
use crate::error::ServerError;
use imperative::ast::{Function, Program};
use minidb::{CacheStamp, Observation};
use std::path::Path;

/// File magic: "CBSN" (Cobra snapshot).
const MAGIC: [u8; 4] = *b"CBSN";
/// Current format version; older/newer files are rejected, never guessed.
const VERSION: u32 = 1;

/// Tags the optimizer can emit, interned back to `&'static str` on
/// restore (see [`cobra_core::Optimized::tags`]); a tag this build does
/// not know is dropped rather than invented.
const KNOWN_TAGS: [&str; 9] = [
    "prefetch",
    "sql-join",
    "sql-agg",
    "orm-navigation",
    "iterative-query",
    "plain",
    "budget-exhausted",
    "validated-promotion",
    "verifier-rejected",
];

fn intern_tag(tag: &str) -> Option<&'static str> {
    KNOWN_TAGS.iter().copied().find(|t| *t == tag)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn corrupt(what: &str) -> ServerError {
    ServerError::Snapshot(format!("corrupt snapshot: {what}"))
}

/// A serializable image of one cached optimization result — the subset
/// of [`cobra_core::Optimized`] worth persisting. Search-internal
/// counters (memo cache hits, feedback overrides) and the validation
/// record describe the *search that ran*, not the plan, so they reset to
/// zero/`None` on restore.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizedSnapshot {
    /// The optimized entry function.
    pub function: Function,
    /// Estimated cost of the chosen program, ns.
    pub est_cost_ns: f64,
    /// Estimated cost of the original program, ns.
    pub original_cost_ns: f64,
    /// Complete programs representable in the search DAG.
    pub alternatives: u64,
    /// Cost-based choice points in the DAG.
    pub choice_points: u64,
    /// Live groups in the DAG.
    pub groups: u64,
    /// M-exprs in the DAG.
    pub exprs: u64,
    /// Feature tags of the chosen program.
    pub tags: Vec<String>,
    /// Whether a search-budget bound clipped the original search.
    pub budget_exhausted: bool,
}

impl OptimizedSnapshot {
    /// Capture the persistable subset of an optimization result.
    pub fn capture(opt: &cobra_core::Optimized) -> OptimizedSnapshot {
        OptimizedSnapshot {
            function: opt.program.clone(),
            est_cost_ns: opt.est_cost_ns,
            original_cost_ns: opt.original_cost_ns,
            alternatives: opt.alternatives,
            choice_points: opt.choice_points as u64,
            groups: opt.groups as u64,
            exprs: opt.exprs as u64,
            tags: opt.tags.iter().map(|t| t.to_string()).collect(),
            budget_exhausted: opt.budget_exhausted,
        }
    }

    /// Rebuild an [`cobra_core::Optimized`] (search-internal counters
    /// zeroed, unknown tags dropped, validation cleared).
    pub fn to_optimized(&self) -> cobra_core::Optimized {
        cobra_core::Optimized {
            program: self.function.clone(),
            est_cost_ns: self.est_cost_ns,
            original_cost_ns: self.original_cost_ns,
            alternatives: self.alternatives,
            choice_points: self.choice_points as usize,
            groups: self.groups as usize,
            exprs: self.exprs as usize,
            tags: self.tags.iter().filter_map(|t| intern_tag(t)).collect(),
            cost_cache_hits: 0,
            cost_cache_misses: 0,
            estimator_cache_hits: 0,
            estimator_cache_misses: 0,
            feedback_overrides: 0,
            budget_exhausted: self.budget_exhausted,
            validation: None,
            verifier_rejections: Vec::new(),
        }
    }
}

/// One persisted plan-cache entry: the submitted program plus its
/// optimization result.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSnapshot {
    /// The program as originally submitted (the cache key is its
    /// structural fingerprint, recomputed on restore).
    pub program: Program,
    /// The cached optimization result.
    pub optimized: OptimizedSnapshot,
}

/// One persisted runtime-feedback observation, keyed by the plan's SQL
/// text (the printer is parse-idempotent, so the fingerprint survives).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackSnapshot {
    /// The observed plan, printed as SQL.
    pub sql: String,
    /// The running-mean observation.
    pub observation: Observation,
    /// Table-stats stamp the observation was recorded under, if any.
    pub data_stamp: Option<u64>,
}

/// Everything persisted for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Tenant name (restore matches by name, not id — ids are assigned
    /// per-process).
    pub name: String,
    /// The plan-cache stamp the entries were captured under; restore
    /// skips the whole section when the live tenant's stamp differs.
    pub stamp: CacheStamp,
    /// Completed plan-cache entries.
    pub plans: Vec<PlanSnapshot>,
    /// Feedback-store observations.
    pub feedback: Vec<FeedbackSnapshot>,
}

/// A complete, self-describing server snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// One section per tenant captured.
    pub tenants: Vec<TenantSnapshot>,
}

/// What a restore actually did — every entry is accounted for, nothing
/// fails silently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Plan-cache entries re-seeded.
    pub plans_restored: u64,
    /// Entries skipped because the tenant's stamp moved on (different
    /// database instance or newer stats epoch).
    pub plans_skipped_stale: u64,
    /// Entries skipped because the running server already holds that key
    /// (live state wins).
    pub plans_skipped_live: u64,
    /// Feedback observations re-seeded.
    pub feedback_restored: u64,
    /// Feedback observations skipped (fresher live entry, unparsable
    /// SQL, or the tenant has feedback disabled).
    pub feedback_skipped: u64,
    /// Snapshot tenants matched to a registered tenant by name.
    pub tenants_matched: u64,
    /// Snapshot tenants with no registered counterpart.
    pub tenants_skipped: u64,
}

impl std::fmt::Display for RestoreReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "restored {} plans ({} stale, {} live-skipped) and {} observations \
             ({} skipped) across {} tenants ({} unmatched)",
            self.plans_restored,
            self.plans_skipped_stale,
            self.plans_skipped_live,
            self.feedback_restored,
            self.feedback_skipped,
            self.tenants_matched,
            self.tenants_skipped
        )
    }
}

impl Snapshot {
    /// Serialize: magic, version, checksum, payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.len(self.tenants.len());
        for t in &self.tenants {
            w.str(&t.name);
            codec::put_stamp(&mut w, &t.stamp);
            w.len(t.plans.len());
            for p in &t.plans {
                codec::put_program(&mut w, &p.program);
                codec::put_function(&mut w, &p.optimized.function);
                w.f64(p.optimized.est_cost_ns);
                w.f64(p.optimized.original_cost_ns);
                w.u64(p.optimized.alternatives);
                w.u64(p.optimized.choice_points);
                w.u64(p.optimized.groups);
                w.u64(p.optimized.exprs);
                w.len(p.optimized.tags.len());
                for tag in &p.optimized.tags {
                    w.str(tag);
                }
                w.bool(p.optimized.budget_exhausted);
            }
            w.len(t.feedback.len());
            for fb in &t.feedback {
                w.str(&fb.sql);
                w.f64(fb.observation.rows);
                w.f64(fb.observation.startup_work);
                w.f64(fb.observation.total_work);
                w.u64(fb.observation.runs);
                match fb.data_stamp {
                    Some(s) => {
                        w.bool(true);
                        w.u64(s);
                    }
                    None => w.bool(false),
                }
            }
        }
        let payload = w.finish();
        let mut out = Vec::with_capacity(payload.len() + 16);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_be_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_be_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserialize, rejecting anything that is not a well-formed
    /// current-version snapshot with a matching checksum.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, ServerError> {
        if bytes.len() < 16 {
            return Err(corrupt("file shorter than the header"));
        }
        if bytes[0..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_be_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(ServerError::Snapshot(format!(
                "unsupported snapshot version {version} (this build reads {VERSION})"
            )));
        }
        let checksum = u64::from_be_bytes(bytes[8..16].try_into().unwrap());
        let payload = &bytes[16..];
        if fnv1a(payload) != checksum {
            return Err(corrupt("checksum mismatch"));
        }
        // The payload layer reuses the wire codec, whose errors are
        // `Protocol`; remap so callers see one error kind for bad files.
        Snapshot::decode_payload(payload).map_err(|e| match e {
            ServerError::Snapshot(_) => e,
            other => corrupt(&other.to_string()),
        })
    }

    fn decode_payload(payload: &[u8]) -> Result<Snapshot, ServerError> {
        let mut r = ByteReader::new(payload);
        let n_tenants = r.len()?;
        let mut tenants = Vec::with_capacity(n_tenants);
        for _ in 0..n_tenants {
            let name = r.str()?;
            let stamp = codec::get_stamp(&mut r)?;
            let n_plans = r.len()?;
            let mut plans = Vec::with_capacity(n_plans);
            for _ in 0..n_plans {
                let program = codec::get_program(&mut r)?;
                let function = codec::get_function(&mut r)?;
                let est_cost_ns = r.f64()?;
                let original_cost_ns = r.f64()?;
                let alternatives = r.u64()?;
                let choice_points = r.u64()?;
                let groups = r.u64()?;
                let exprs = r.u64()?;
                let n_tags = r.len()?;
                let mut tags = Vec::with_capacity(n_tags);
                for _ in 0..n_tags {
                    tags.push(r.str()?);
                }
                let budget_exhausted = r.bool()?;
                plans.push(PlanSnapshot {
                    program,
                    optimized: OptimizedSnapshot {
                        function,
                        est_cost_ns,
                        original_cost_ns,
                        alternatives,
                        choice_points,
                        groups,
                        exprs,
                        tags,
                        budget_exhausted,
                    },
                });
            }
            let n_fb = r.len()?;
            let mut feedback = Vec::with_capacity(n_fb);
            for _ in 0..n_fb {
                let sql = r.str()?;
                let observation = Observation {
                    rows: r.f64()?,
                    startup_work: r.f64()?,
                    total_work: r.f64()?,
                    runs: r.u64()?,
                };
                let data_stamp = if r.bool()? { Some(r.u64()?) } else { None };
                feedback.push(FeedbackSnapshot {
                    sql,
                    observation,
                    data_stamp,
                });
            }
            tenants.push(TenantSnapshot {
                name,
                stamp,
                plans,
                feedback,
            });
        }
        if !r.at_end() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(Snapshot { tenants })
    }

    /// Write atomically: encode to `<path>.tmp`, then rename over `path`.
    /// A crash at any point leaves the previous snapshot (or nothing)
    /// intact — never a torn file.
    pub fn write_to(&self, path: &Path) -> Result<(), ServerError> {
        let tmp = match path.file_name() {
            Some(name) => {
                let mut n = name.to_os_string();
                n.push(".tmp");
                path.with_file_name(n)
            }
            None => {
                return Err(ServerError::Snapshot(format!(
                    "snapshot path has no file name: {}",
                    path.display()
                )))
            }
        };
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and decode a snapshot file.
    pub fn read_from(path: &Path) -> Result<Snapshot, ServerError> {
        let bytes = std::fs::read(path)?;
        Snapshot::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::genprog::{GenCase, GenConfig};

    fn sample_snapshot() -> Snapshot {
        let case = GenCase::from_seed(13, &GenConfig::default());
        let function = case.program.functions[0].clone();
        Snapshot {
            tenants: vec![TenantSnapshot {
                name: "acme".into(),
                stamp: CacheStamp {
                    instance_id: 7,
                    stats_epoch: 3,
                    feedback_generation: 0,
                    mode: 1,
                },
                plans: vec![PlanSnapshot {
                    program: case.program.clone(),
                    optimized: OptimizedSnapshot {
                        function,
                        est_cost_ns: 1234.5,
                        original_cost_ns: 9876.5,
                        alternatives: 12,
                        choice_points: 3,
                        groups: 9,
                        exprs: 21,
                        tags: vec!["prefetch".into(), "not-a-real-tag".into()],
                        budget_exhausted: false,
                    },
                }],
                feedback: vec![FeedbackSnapshot {
                    sql: "SELECT * FROM orders".into(),
                    observation: Observation {
                        rows: 42.0,
                        startup_work: 1.0,
                        total_work: 84.0,
                        runs: 3,
                    },
                    data_stamp: Some(11),
                }],
            }],
        }
    }

    #[test]
    fn roundtrips_through_bytes() {
        let snap = sample_snapshot();
        let back = Snapshot::decode(&snap.encode()).expect("decode");
        assert_eq!(back, snap);
    }

    #[test]
    fn detects_every_kind_of_corruption() {
        let snap = sample_snapshot();
        let good = snap.encode();

        // Too short.
        assert!(matches!(
            Snapshot::decode(&good[..8]),
            Err(ServerError::Snapshot(_))
        ));
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Snapshot::decode(&bad),
            Err(ServerError::Snapshot(_))
        ));
        // Unsupported version.
        let mut bad = good.clone();
        bad[7] = 99;
        assert!(matches!(
            Snapshot::decode(&bad),
            Err(ServerError::Snapshot(_))
        ));
        // A single flipped payload byte fails the checksum.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(matches!(
            Snapshot::decode(&bad),
            Err(ServerError::Snapshot(_))
        ));
        // Truncated payload (checksum recomputed so the payload layer
        // itself must catch it).
        let mut bad = good[..good.len() - 4].to_vec();
        let sum = fnv1a(&bad[16..]);
        bad[8..16].copy_from_slice(&sum.to_be_bytes());
        assert!(matches!(
            Snapshot::decode(&bad),
            Err(ServerError::Snapshot(_))
        ));
    }

    #[test]
    fn unknown_tags_are_dropped_on_restore() {
        let snap = sample_snapshot();
        let opt = snap.tenants[0].plans[0].optimized.to_optimized();
        assert_eq!(opt.tags, vec!["prefetch"]);
        assert!(opt.validation.is_none());
        assert_eq!(opt.cost_cache_hits, 0);
    }

    #[test]
    fn atomic_write_replaces_never_tears() {
        let dir = std::env::temp_dir().join(format!(
            "cobra-snap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.cbsn");
        let snap = sample_snapshot();
        snap.write_to(&path).expect("first write");
        snap.write_to(&path).expect("overwrite");
        let back = Snapshot::read_from(&path).expect("read");
        assert_eq!(back, snap);
        assert!(
            !path.with_file_name("state.cbsn.tmp").exists(),
            "temp file renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
