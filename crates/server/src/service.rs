//! The in-process service: tenants, sessions, submission, drift sweeping.
//!
//! [`CobraService`] is the long-running heart of Cobra-as-a-service.
//! Tenants register a database + ORM mappings + function registry;
//! sessions open against a tenant; submissions optimize through the
//! shared single-flight [`PlanCache`] under [`Admission`] control and
//! then execute the optimized program, feeding observed cardinalities
//! back into the tenant's [`minidb::FeedbackStore`].
//!
//! **Cache validity.** The plan cache keys on
//! `(program fingerprint, CacheStamp)` with the stamp's
//! `feedback_generation` pinned to 0: unlike the *estimate* cache (which
//! invalidates on every new observation — recomputing an estimate is
//! cheap), a cached *plan* stays valid until the drift policy decides the
//! model has diverged enough to re-search. The sweeper then bumps the
//! tenant's stats epoch, re-optimizes every cached program under the new
//! stamp (now preferring observed cardinalities) and atomically swaps the
//! results in — sessions never see a half-updated cache, because stale
//! epochs simply stop being addressable.

use crate::admission::Admission;
use crate::error::ServerError;
use crate::fault::{FaultKind, FaultPlan, FaultSite};
use crate::plan_cache::{program_fingerprint, CacheKey, CacheOutcome, CachedPlan, PlanCache};
use crate::snapshot::{
    FeedbackSnapshot, OptimizedSnapshot, PlanSnapshot, RestoreReport, Snapshot, TenantSnapshot,
};
use crate::sync;
use cobra_core::{
    Cobra, CobraBuilder, OptimizationReport, Optimized, SearchBudget, ValidationConfig,
};
use imperative::ast::Program;
use interp::{Interp, InterpConfig, NormalizedOutcome};
use minidb::{CacheStamp, ExecEngine, FeedbackStore, FuncRegistry, PlanFingerprint, SharedDb};
use netsim::{Clock, NetworkProfile};
use orm::{MappingRegistry, RemoteDb, Session};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Service-wide tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker-pool size: submissions optimized/executed concurrently.
    /// Default: available hardware parallelism.
    pub max_concurrent: usize,
    /// Bounded wait queue beyond the pool; deeper arrivals are shed with
    /// [`ServerError::Overloaded`]. Default 64.
    pub max_queue: usize,
    /// Queue depth at which admitted requests switch to the degraded
    /// search budget. Default 8.
    pub degrade_queue_depth: usize,
    /// The downgraded [`SearchBudget`] used under pressure (fewer
    /// alternatives, capped cost sweeps). Degraded results are *not*
    /// retained in the plan cache.
    pub degraded_budget: SearchBudget,
    /// Multiplicative estimate-vs-observation divergence at which the
    /// sweeper re-optimizes a tenant's cached plans. Default 4.0.
    pub drift_threshold: f64,
    /// Check drift every N executions per tenant. Default 32.
    pub drift_check_every: u64,
    /// Plan-cache shard count. Default 16.
    pub cache_shards: usize,
    /// Execution engine sessions run plans on. Default columnar.
    pub engine: ExecEngine,
    /// Runtime-validate plan selection on the full-budget path: the
    /// optimizer's top-k candidates are micro-executed (or judged by
    /// fresh feedback) and the *measured* winner is promoted — so both
    /// cache misses and the drift sweeper's hot swaps install measured
    /// plans, not just re-costed ones. Degraded (load-shed) requests
    /// skip validation. `None` (default) keeps selection cost-only and
    /// bit-identical to previous behavior.
    pub validate: Option<ValidationConfig>,
    /// The fault-injection schedule threaded through the wire server's
    /// response path and the service's worker paths. Default: inert
    /// ([`FaultPlan::off`]) — zero overhead, behavior identical to a
    /// build without fault injection. Chaos tests pass
    /// [`FaultPlan::chaos`] with a seed.
    pub faults: Arc<FaultPlan>,
    /// Consecutive worker panics ([`ServerError::Internal`]) after which
    /// the health machine drops from `Healthy` to `Degraded`. Default 3.
    pub degrade_after_faults: u64,
    /// Consecutive clean submissions after which a `Degraded` server
    /// recovers to `Healthy`. Default 8.
    pub recover_after_ok: u64,
    /// Completed submissions remembered per session for idempotent
    /// replay (a retried `Submit` with the same idempotency key returns
    /// the stored reply instead of re-executing). Default 64.
    pub idempotency_window: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_concurrent: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_queue: 64,
            degrade_queue_depth: 8,
            degraded_budget: SearchBudget::default()
                .with_max_alternatives_per_region(8)
                .with_max_memo_exprs(512),
            drift_threshold: 4.0,
            drift_check_every: 32,
            cache_shards: 16,
            engine: ExecEngine::default(),
            validate: None,
            faults: FaultPlan::off(),
            degrade_after_faults: 3,
            recover_after_ok: 8,
            idempotency_window: 64,
        }
    }
}

/// The server's health state machine. Worker panics push it toward
/// `Degraded`; sustained clean service recovers it; shutdown drains it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Normal operation.
    Healthy = 0,
    /// Sustained worker faults: the queue bound is halved (shed earlier),
    /// every submission runs under the degraded budget with validation
    /// and plan retention off, and the drift sweeper holds still — the
    /// server trades plan quality for staying responsive while whatever
    /// is panicking the workers is hot.
    Degraded = 1,
    /// Shutdown has begun: no new work; in-flight requests complete.
    Draining = 2,
}

impl Health {
    fn from_u8(v: u8) -> Health {
        match v {
            1 => Health::Degraded,
            2 => Health::Draining,
            _ => Health::Healthy,
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Draining => "draining",
        })
    }
}

/// Identifies a registered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

/// Identifies an open session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// What a tenant registers: its database, ORM mappings, functions, the
/// network profile its sessions simulate, and whether executions record
/// runtime feedback.
#[derive(Clone)]
pub struct TenantSpec {
    /// Tenant name (wire clients attach by name).
    pub name: String,
    /// The tenant's shared database handle — adopted as is, so the
    /// embedding application and all sessions see one database.
    pub db: SharedDb,
    /// ORM entity mappings for the tenant's schema.
    pub mappings: MappingRegistry,
    /// Scalar functions the tenant's programs call.
    pub funcs: Arc<FuncRegistry>,
    /// Network profile sessions execute under (and the optimizer costs
    /// against). Default: slow remote — the regime where rewrites matter.
    pub network: NetworkProfile,
    /// Record observed cardinalities into a per-tenant feedback store
    /// (enables drift-driven re-optimization). Default true.
    pub feedback: bool,
}

impl TenantSpec {
    /// A spec with the default network (slow remote) and feedback on.
    pub fn new(
        name: impl Into<String>,
        db: SharedDb,
        mappings: MappingRegistry,
        funcs: Arc<FuncRegistry>,
    ) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            db,
            mappings,
            funcs,
            network: NetworkProfile::slow_remote(),
            feedback: true,
        }
    }

    /// Override the network profile.
    pub fn network(mut self, network: NetworkProfile) -> TenantSpec {
        self.network = network;
        self
    }

    /// Enable or disable runtime-feedback recording (off makes every
    /// submission fully deterministic — no adaptive state).
    pub fn feedback(mut self, on: bool) -> TenantSpec {
        self.feedback = on;
        self
    }
}

/// One registered tenant: shared database, optimizers (full + degraded
/// budget), feedback store, execution counter.
struct Tenant {
    name: String,
    db: SharedDb,
    mappings: Arc<MappingRegistry>,
    funcs: Arc<FuncRegistry>,
    network: NetworkProfile,
    feedback: Option<Arc<FeedbackStore>>,
    /// Full-budget optimizer (the plan cache's compute path).
    cobra: Cobra,
    /// Degraded-budget optimizer used under admission pressure.
    cobra_degraded: Cobra,
    instance_id: u64,
    executions: AtomicU64,
    /// Feedback generation at the last drift sweep that acted (or 0);
    /// the sweeper only re-checks drift once new observations arrived.
    swept_generation: AtomicU64,
}

impl Tenant {
    /// The tenant's current plan-cache stamp. `feedback_generation` is
    /// pinned (see the module docs): plans invalidate on stats-epoch
    /// bumps, not on every observation.
    fn plan_stamp(&self) -> CacheStamp {
        let db = self.db.read().unwrap_or_else(|e| e.into_inner());
        CacheStamp {
            instance_id: db.instance_id(),
            stats_epoch: db.stats_epoch(),
            feedback_generation: 0,
            mode: 1,
        }
    }
}

/// One open session: which tenant it belongs to and its running totals.
struct SessionState {
    tenant: TenantId,
    /// The last submitted program (report retrieval re-explains it).
    last_program: Mutex<Option<Arc<Program>>>,
    submissions: AtomicU64,
    simulated_ns: AtomicU64,
    /// Completed replies keyed by idempotency key (bounded FIFO window):
    /// a retried submission whose original actually completed — the
    /// client just never saw the response — replays the stored reply
    /// instead of executing (and recording feedback) twice.
    replies: Mutex<VecDeque<(u64, SubmitReply)>>,
}

/// A snapshot of every server-wide counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Plan-cache lookups served from a completed entry.
    pub cache_hits: u64,
    /// Optimizer runs (cache misses, including degraded ones).
    pub cache_misses: u64,
    /// Submissions that joined another session's in-flight search.
    pub coalesced: u64,
    /// Plans hot-swapped by the drift sweeper.
    pub plans_swapped: u64,
    /// Stale cache entries evicted after swaps.
    pub evicted: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed with `Overloaded`.
    pub rejected: u64,
    /// Requests served under the degraded budget.
    pub degraded: u64,
    /// Sessions opened over the server's lifetime.
    pub sessions_opened: u64,
    /// Registered tenants.
    pub tenants: u64,
    /// Programs executed.
    pub executions: u64,
    /// Drift sweeps that re-optimized at least one plan.
    pub drift_swaps: u64,
    /// Optimizations (cache fills and sweeper hot swaps) where runtime
    /// validation promoted a *measured* winner over the cost model's
    /// argmin. Always 0 unless [`ServerConfig::validate`] is set.
    pub validated_promotions: u64,
    /// Worker panics caught and returned as [`ServerError::Internal`].
    pub internal_errors: u64,
    /// Retried submissions answered from the per-session reply window
    /// instead of re-executing.
    pub idempotent_replays: u64,
    /// Plans recovered from a snapshot at restore time.
    pub restored_plans: u64,
}

impl std::fmt::Display for ServerCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cache: {} hits / {} misses / {} coalesced / {} swapped / {} evicted",
            self.cache_hits, self.cache_misses, self.coalesced, self.plans_swapped, self.evicted
        )?;
        writeln!(
            f,
            "admission: {} admitted / {} rejected / {} degraded",
            self.admitted, self.rejected, self.degraded
        )?;
        writeln!(
            f,
            "sessions: {} opened across {} tenants; {} executions; {} drift sweeps acted; \
             {} validated promotions",
            self.sessions_opened,
            self.tenants,
            self.executions,
            self.drift_swaps,
            self.validated_promotions
        )?;
        write!(
            f,
            "resilience: {} internal errors / {} idempotent replays / {} restored plans",
            self.internal_errors, self.idempotent_replays, self.restored_plans
        )
    }
}

/// The reply to one submission: plan identity, how the cache satisfied
/// it, cost estimates, and the execution's observables.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitReply {
    /// Structural fingerprint of the submitted program.
    pub fingerprint: PlanFingerprint,
    /// The cache stamp the plan was served under.
    pub stamp: CacheStamp,
    /// Hit / miss / coalesced.
    pub cache: CacheOutcome,
    /// True when served under the degraded budget (admission pressure).
    pub degraded: bool,
    /// Estimated cost of the chosen program, ns.
    pub est_cost_ns: f64,
    /// Estimated cost of the program as submitted, ns.
    pub original_cost_ns: f64,
    /// Feature tags of the chosen program.
    pub tags: Vec<String>,
    /// Simulated wall-clock consumed by the execution, ns.
    pub simulated_ns: u64,
    /// Network round trips the execution performed.
    pub round_trips: u64,
    /// The execution's observables (out-params, return, prints),
    /// normalized.
    pub results: NormalizedOutcome,
    /// Real wall-clock the whole submission took, ns (admission to
    /// results; what the serving benchmark aggregates).
    pub wall_ns: u64,
}

struct Inner {
    config: ServerConfig,
    admission: Admission,
    cache: PlanCache,
    tenants: RwLock<HashMap<u64, Arc<Tenant>>>,
    sessions: RwLock<HashMap<u64, Arc<SessionState>>>,
    next_tenant: AtomicU64,
    next_session: AtomicU64,
    sessions_opened: AtomicU64,
    executions: AtomicU64,
    drift_swaps: AtomicU64,
    validated_promotions: AtomicU64,
    internal_errors: AtomicU64,
    idempotent_replays: AtomicU64,
    restored_feedback: AtomicU64,
    /// [`Health`] as a `u8` (see `Health::from_u8`).
    health: AtomicU8,
    /// Consecutive worker panics; resets on any clean submission.
    fault_streak: AtomicU64,
    /// Consecutive clean submissions; resets on any worker panic.
    ok_streak: AtomicU64,
    shutdown: AtomicBool,
    /// Sweeper wake-up: (pending-signal flag, condvar).
    sweep_signal: Mutex<bool>,
    sweep_cv: Condvar,
    sweeper: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// The concurrent optimizer/execution service. Cheap to clone (all state
/// behind one `Arc`); `Send + Sync`, so one instance serves any number of
/// threads or wire connections.
#[derive(Clone)]
pub struct CobraService {
    inner: Arc<Inner>,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CobraService>();
};

impl CobraService {
    /// Start a service (spawns the background drift sweeper).
    pub fn new(config: ServerConfig) -> CobraService {
        let inner = Arc::new(Inner {
            admission: Admission::new(
                config.max_concurrent,
                config.max_queue,
                config.degrade_queue_depth,
            ),
            cache: PlanCache::new(config.cache_shards),
            config,
            tenants: RwLock::new(HashMap::new()),
            sessions: RwLock::new(HashMap::new()),
            next_tenant: AtomicU64::new(1),
            next_session: AtomicU64::new(1),
            sessions_opened: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            drift_swaps: AtomicU64::new(0),
            validated_promotions: AtomicU64::new(0),
            internal_errors: AtomicU64::new(0),
            idempotent_replays: AtomicU64::new(0),
            restored_feedback: AtomicU64::new(0),
            health: AtomicU8::new(Health::Healthy as u8),
            fault_streak: AtomicU64::new(0),
            ok_streak: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            sweep_signal: Mutex::new(false),
            sweep_cv: Condvar::new(),
            sweeper: Mutex::new(None),
        });
        let weak = Arc::downgrade(&inner);
        let handle = std::thread::Builder::new()
            .name("cobra-drift-sweeper".into())
            .spawn(move || sweeper_loop(weak))
            .expect("spawn drift sweeper");
        *sync::lock(&inner.sweeper) = Some(handle);
        CobraService { inner }
    }

    /// The server's current health state.
    pub fn health(&self) -> Health {
        Health::from_u8(self.inner.health.load(Ordering::Acquire))
    }

    /// Record a caught worker panic against the health machine.
    fn note_fault(&self) {
        self.inner.internal_errors.fetch_add(1, Ordering::Relaxed);
        self.inner.ok_streak.store(0, Ordering::Relaxed);
        let streak = self.inner.fault_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.inner.config.degrade_after_faults {
            // Only Healthy → Degraded; never resurrect a Draining server.
            let _ = self.inner.health.compare_exchange(
                Health::Healthy as u8,
                Health::Degraded as u8,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
    }

    /// Record a clean submission against the health machine.
    fn note_ok(&self) {
        self.inner.fault_streak.store(0, Ordering::Relaxed);
        let streak = self.inner.ok_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.inner.config.recover_after_ok {
            let _ = self.inner.health.compare_exchange(
                Health::Degraded as u8,
                Health::Healthy as u8,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.config
    }

    /// Register a tenant. Each tenant's plans and estimates are isolated
    /// by its database's `instance_id` through the `CacheStamp` key — two
    /// tenants with byte-identical schemas and data still never share
    /// cache entries.
    pub fn register_tenant(&self, spec: TenantSpec) -> TenantId {
        let feedback = spec.feedback.then(|| Arc::new(FeedbackStore::new()));
        let instance_id = spec
            .db
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .instance_id();
        let builder = || -> CobraBuilder {
            // Debug builds run the static rewrite verifier at Panic so any
            // unsound rule surfaces immediately in development and tests;
            // release builds keep the zero-overhead Off default.
            let verify = if cfg!(debug_assertions) {
                cobra_core::VerifyLevel::Panic
            } else {
                cobra_core::VerifyLevel::Off
            };
            let mut b = Cobra::builder(spec.db.clone())
                .mappings(spec.mappings.clone())
                .funcs(spec.funcs.clone())
                .network(spec.network.clone())
                .engine(self.inner.config.engine)
                .verify_rewrites(verify);
            if let Some(fb) = &feedback {
                b = b.feedback(fb.clone());
            }
            b
        };
        // Validation applies to the full-budget optimizer only: the plan
        // cache's compute path and the drift sweeper both go through it,
        // so cache fills and hot swaps get measured winners. Degraded
        // requests are already shedding load — no micro-executions there.
        let mut full = builder();
        if let Some(v) = &self.inner.config.validate {
            full = full.validate_selection(v.clone());
        }
        let cobra = full.build();
        let cobra_degraded = builder()
            .budget(self.inner.config.degraded_budget.clone())
            .build();
        let tenant = Arc::new(Tenant {
            name: spec.name,
            db: spec.db,
            mappings: Arc::new(spec.mappings),
            funcs: spec.funcs,
            network: spec.network,
            feedback,
            cobra,
            cobra_degraded,
            instance_id,
            executions: AtomicU64::new(0),
            swept_generation: AtomicU64::new(0),
        });
        let id = self.inner.next_tenant.fetch_add(1, Ordering::Relaxed);
        sync::write(&self.inner.tenants).insert(id, tenant);
        TenantId(id)
    }

    /// Look a tenant up by name (wire clients attach by name).
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        sync::read(&self.inner.tenants)
            .iter()
            .find(|(_, t)| t.name == name)
            .map(|(&id, _)| TenantId(id))
    }

    /// The tenant's per-tenant feedback store, if feedback is enabled.
    pub fn tenant_feedback(&self, tenant: TenantId) -> Option<Arc<FeedbackStore>> {
        let tenants = sync::read(&self.inner.tenants);
        tenants.get(&tenant.0).and_then(|t| t.feedback.clone())
    }

    /// Open a session against `tenant`.
    pub fn open_session(&self, tenant: TenantId) -> Result<SessionId, ServerError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServerError::ShuttingDown);
        }
        if !sync::read(&self.inner.tenants).contains_key(&tenant.0) {
            return Err(ServerError::UnknownTenant(format!("id {}", tenant.0)));
        }
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(SessionState {
            tenant,
            last_program: Mutex::new(None),
            submissions: AtomicU64::new(0),
            simulated_ns: AtomicU64::new(0),
            replies: Mutex::new(VecDeque::new()),
        });
        sync::write(&self.inner.sessions).insert(id, state);
        self.inner.sessions_opened.fetch_add(1, Ordering::Relaxed);
        Ok(SessionId(id))
    }

    /// Close a session (idempotent; unknown ids error).
    pub fn close_session(&self, session: SessionId) -> Result<(), ServerError> {
        sync::write(&self.inner.sessions)
            .remove(&session.0)
            .map(|_| ())
            .ok_or(ServerError::UnknownSession(session.0))
    }

    fn session(&self, id: SessionId) -> Result<Arc<SessionState>, ServerError> {
        sync::read(&self.inner.sessions)
            .get(&id.0)
            .cloned()
            .ok_or(ServerError::UnknownSession(id.0))
    }

    fn tenant(&self, id: TenantId) -> Result<Arc<Tenant>, ServerError> {
        sync::read(&self.inner.tenants)
            .get(&id.0)
            .cloned()
            .ok_or_else(|| ServerError::UnknownTenant(format!("id {}", id.0)))
    }

    /// Submit a program on a session: admission → single-flight
    /// plan-cache optimization → execution of the optimized program, with
    /// observed cardinalities recorded into the tenant's feedback store.
    pub fn submit(
        &self,
        session: SessionId,
        program: &Program,
    ) -> Result<SubmitReply, ServerError> {
        self.submit_idempotent(session, program, 0)
    }

    /// [`CobraService::submit`] with an idempotency key (0 = none). A
    /// retried submission whose original completed — only the response
    /// was lost — replays the stored reply instead of executing twice;
    /// a retry that arrives while the original is still optimizing
    /// coalesces with it through the single-flight plan cache.
    pub fn submit_idempotent(
        &self,
        session: SessionId,
        program: &Program,
        idempotency: u64,
    ) -> Result<SubmitReply, ServerError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServerError::ShuttingDown);
        }
        let start = Instant::now();
        let state = self.session(session)?;
        let tenant = self.tenant(state.tenant)?;

        // Replay before admission: a replay costs a window scan, not a
        // worker slot.
        if idempotency != 0 {
            let replies = sync::lock(&state.replies);
            if let Some((_, reply)) = replies.iter().find(|(k, _)| *k == idempotency) {
                let reply = reply.clone();
                drop(replies);
                self.inner
                    .idempotent_replays
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(reply);
            }
        }

        // Admission: bounded pool + bounded queue, shed beyond that. A
        // Degraded server halves the queue bound — shed earlier while
        // workers are faulting.
        let health_degraded = self.health() == Health::Degraded;
        let permit = if health_degraded {
            self.inner
                .admission
                .admit_bounded(self.inner.config.max_queue / 2)?
        } else {
            self.inner.admission.admit()?
        };
        let degraded = permit.degraded() || health_degraded;

        let program = Arc::new(program.clone());
        let fingerprint = program_fingerprint(&program);
        let key = CacheKey {
            fingerprint,
            stamp: tenant.plan_stamp(),
        };
        let optimizer = if degraded {
            &tenant.cobra_degraded
        } else {
            &tenant.cobra
        };
        let faults = &self.inner.config.faults;
        let (cached, cache_outcome) =
            self.inner
                .cache
                .get_or_compute(key, &program, !degraded, || {
                    if let Some(FaultKind::WorkerPanic) = faults.decide(FaultSite::Search) {
                        panic!("injected worker panic (search)");
                    }
                    optimizer
                        .optimize_program(&program)
                        .map(Arc::new)
                        .map_err(ServerError::from)
                });
        let cached = match cached {
            Ok(cached) => cached,
            Err(e) => {
                // Only the flight leader charges the health machine:
                // coalesced waiters observed the same single panic.
                if matches!(e, ServerError::Internal(_)) && cache_outcome == CacheOutcome::Miss {
                    self.note_fault();
                }
                return Err(e);
            }
        };
        let optimized: Arc<Optimized> = cached.optimized;
        // A fresh optimization whose validated selection overrode the
        // cost model's argmin (hits/coalesced replays would double-count).
        if cache_outcome == CacheOutcome::Miss
            && optimized
                .validation
                .as_ref()
                .is_some_and(|v| v.promoted_rank > 0)
        {
            self.inner
                .validated_promotions
                .fetch_add(1, Ordering::Relaxed);
        }

        // Execute the optimized program on a fresh ORM session/clock (one
        // submission = one transaction, as in the paper's measurements).
        // Execution runs inside `catch_unwind` for the same reason the
        // search does: a panicking worker fails this request with a typed
        // error instead of tearing the serving thread down.
        let runnable = program.with_entry(optimized.program.clone());
        let outcome = match catch_unwind(AssertUnwindSafe(|| {
            if let Some(FaultKind::WorkerPanic) = faults.decide(FaultSite::Execute) {
                panic!("injected worker panic (execute)");
            }
            self.execute(&tenant, &runnable)
        })) {
            Ok(Ok(outcome)) => outcome,
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                self.note_fault();
                return Err(ServerError::from_panic(payload));
            }
        };
        drop(permit);
        self.note_ok();

        let observed: Vec<&str> = runnable.entry().params.iter().map(|s| s.as_str()).collect();
        let results = outcome.normalized_with_vars(&observed);

        state.submissions.fetch_add(1, Ordering::Relaxed);
        state
            .simulated_ns
            .fetch_add(outcome.elapsed_ns, Ordering::Relaxed);
        *sync::lock(&state.last_program) = Some(program.clone());
        self.inner.executions.fetch_add(1, Ordering::Relaxed);

        // Drift check every N executions per tenant: wake the sweeper.
        let execs = tenant.executions.fetch_add(1, Ordering::Relaxed) + 1;
        if tenant.feedback.is_some() && execs % self.inner.config.drift_check_every == 0 {
            self.signal_sweeper();
        }

        let reply = SubmitReply {
            fingerprint,
            stamp: key.stamp,
            cache: cache_outcome,
            degraded,
            est_cost_ns: optimized.est_cost_ns,
            original_cost_ns: optimized.original_cost_ns,
            tags: optimized.tags.iter().map(|t| t.to_string()).collect(),
            simulated_ns: outcome.elapsed_ns,
            round_trips: outcome.round_trips,
            results,
            wall_ns: start.elapsed().as_nanos() as u64,
        };
        if idempotency != 0 {
            let mut replies = sync::lock(&state.replies);
            replies.push_back((idempotency, reply.clone()));
            let window = self.inner.config.idempotency_window.max(1);
            while replies.len() > window {
                replies.pop_front();
            }
        }
        Ok(reply)
    }

    fn execute(&self, tenant: &Tenant, program: &Program) -> Result<interp::Outcome, ServerError> {
        let clock = Arc::new(Clock::new());
        let mut remote = RemoteDb::new(
            tenant.db.clone(),
            tenant.funcs.clone(),
            tenant.network.clone(),
            clock,
        )
        .with_engine(self.inner.config.engine);
        if let Some(fb) = &tenant.feedback {
            remote = remote.with_feedback(fb.clone());
        }
        let session = Session::new(Arc::new(remote), tenant.mappings.clone());
        Interp::new(&session, program)
            .with_config(InterpConfig::default())
            .run(vec![])
            .map_err(ServerError::from)
    }

    /// The full [`OptimizationReport`] for the session's last submitted
    /// program (re-explained on demand so the submit hot path never pays
    /// for report assembly).
    pub fn session_report(&self, session: SessionId) -> Result<OptimizationReport, ServerError> {
        let state = self.session(session)?;
        let tenant = self.tenant(state.tenant)?;
        let program = sync::lock(&state.last_program)
            .clone()
            .ok_or_else(|| ServerError::Db("no program submitted on this session".into()))?;
        tenant.cobra.explain(&program).map_err(ServerError::from)
    }

    /// Run one synchronous drift sweep over every tenant (what the
    /// background sweeper does on its own schedule). Returns the number
    /// of plans hot-swapped. Deterministic hook for tests and demos.
    pub fn sweep_now(&self) -> usize {
        // A Degraded server holds the sweeper still: re-optimizing under
        // the same conditions that are panicking submission workers just
        // multiplies the blast radius, and the swap would install plans
        // no healthier than the ones already cached.
        if self.health() != Health::Healthy {
            return 0;
        }
        let tenants: Vec<Arc<Tenant>> = sync::read(&self.inner.tenants).values().cloned().collect();
        let mut swapped = 0;
        for tenant in tenants {
            swapped += self.sweep_tenant(&tenant);
        }
        swapped
    }

    /// Check one tenant's drift and hot-swap its cached plans if the
    /// model has diverged past the threshold.
    fn sweep_tenant(&self, tenant: &Tenant) -> usize {
        let Some(fb) = &tenant.feedback else {
            return 0;
        };
        // Only re-examine once new observations arrived since the last
        // sweep that acted — drift is defined model-vs-observation, so
        // without new evidence the verdict cannot change.
        let generation = fb.generation();
        if generation == 0 || generation == tenant.swept_generation.load(Ordering::Acquire) {
            return 0;
        }
        if tenant.cobra.estimation_drift() < self.inner.config.drift_threshold {
            return 0;
        }
        tenant.swept_generation.store(generation, Ordering::Release);

        // The hot swap: bump the stats epoch (moving the tenant to a
        // fresh stamp and invalidating every estimate cache stamped
        // against this database), re-optimize each cached program — the
        // estimator now prefers the observed cardinalities — and publish
        // under the new stamp. Old-stamp entries become unreachable and
        // are purged.
        // One cached program can appear under several stale epochs (each
        // pre-swap write moved the stamp); the re-optimization is per
        // *program*, so dedupe by fingerprint before paying for searches.
        let mut work = self.inner.cache.entries_for_instance(tenant.instance_id);
        let mut seen = std::collections::HashSet::new();
        work.retain(|(key, _)| seen.insert(key.fingerprint));
        tenant
            .db
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .bump_stats_epoch();
        let new_stamp = tenant.plan_stamp();
        let mut swapped = 0;
        for (key, cached) in work {
            // A program that no longer optimizes (e.g. schema edits
            // under it) is simply dropped from the cache — and so is one
            // whose re-optimization *panics*: the sweeper thread must
            // outlive any single bad plan.
            let re = catch_unwind(AssertUnwindSafe(|| {
                tenant.cobra.optimize_program(&cached.program)
            }));
            if let Ok(Ok(re)) = re {
                // Hot swaps are *measured*, not just re-costed: when the
                // tenant's optimizer validates, record how often the
                // measurement overrode the refreshed cost model.
                if re.validation.as_ref().is_some_and(|v| v.promoted_rank > 0) {
                    self.inner
                        .validated_promotions
                        .fetch_add(1, Ordering::Relaxed);
                }
                self.inner.cache.swap_in(
                    CacheKey {
                        fingerprint: key.fingerprint,
                        stamp: new_stamp,
                    },
                    CachedPlan {
                        program: cached.program.clone(),
                        optimized: Arc::new(re),
                    },
                );
                swapped += 1;
            }
        }
        self.inner
            .cache
            .purge_instance_except(tenant.instance_id, new_stamp);
        if swapped > 0 {
            self.inner.drift_swaps.fetch_add(1, Ordering::Relaxed);
        }
        swapped
    }

    fn signal_sweeper(&self) {
        *sync::lock(&self.inner.sweep_signal) = true;
        self.inner.sweep_cv.notify_one();
    }

    /// Snapshot every server-wide counter.
    pub fn counters(&self) -> ServerCounters {
        let inner = &self.inner;
        ServerCounters {
            cache_hits: inner.cache.hits(),
            cache_misses: inner.cache.misses(),
            coalesced: inner.cache.coalesced(),
            plans_swapped: inner.cache.swapped(),
            evicted: inner.cache.evicted(),
            admitted: inner.admission.admitted(),
            rejected: inner.admission.rejected(),
            degraded: inner.admission.degraded(),
            sessions_opened: inner.sessions_opened.load(Ordering::Relaxed),
            tenants: sync::read(&inner.tenants).len() as u64,
            executions: inner.executions.load(Ordering::Relaxed),
            drift_swaps: inner.drift_swaps.load(Ordering::Relaxed),
            validated_promotions: inner.validated_promotions.load(Ordering::Relaxed),
            internal_errors: inner.internal_errors.load(Ordering::Relaxed),
            idempotent_replays: inner.idempotent_replays.load(Ordering::Relaxed),
            restored_plans: inner.cache.restored()
                + inner.restored_feedback.load(Ordering::Relaxed),
        }
    }

    /// Plan-cache entries currently held (completed + in-flight).
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Capture the server's warm state — every tenant's current-stamp
    /// plan-cache entries and feedback observations — as a [`Snapshot`].
    /// Entries whose stamp already lags the tenant (mid-sweep strays)
    /// are excluded at capture time rather than rejected on restore.
    pub fn snapshot(&self) -> Snapshot {
        let tenants = sync::read(&self.inner.tenants);
        let mut sections = Vec::with_capacity(tenants.len());
        for tenant in tenants.values() {
            let stamp = tenant.plan_stamp();
            let plans = self
                .inner
                .cache
                .entries_for_instance(tenant.instance_id)
                .into_iter()
                .filter(|(key, _)| key.stamp == stamp)
                .map(|(_, cached)| PlanSnapshot {
                    program: (*cached.program).clone(),
                    optimized: OptimizedSnapshot::capture(&cached.optimized),
                })
                .collect();
            let feedback = tenant
                .feedback
                .as_ref()
                .map(|fb| {
                    fb.snapshot_stamped()
                        .into_iter()
                        .map(|(plan, observation, data_stamp)| FeedbackSnapshot {
                            sql: minidb::sql::print(plan.as_plan()),
                            observation,
                            data_stamp,
                        })
                        .collect()
                })
                .unwrap_or_default();
            sections.push(TenantSnapshot {
                name: tenant.name.clone(),
                stamp,
                plans,
                feedback,
            });
        }
        Snapshot { tenants: sections }
    }

    /// [`CobraService::snapshot`] written atomically to `path` (temp file
    /// + rename; see [`Snapshot::write_to`]).
    pub fn snapshot_to(&self, path: &std::path::Path) -> Result<(), ServerError> {
        self.snapshot().write_to(path)
    }

    /// Re-seed the plan cache and feedback stores from a snapshot.
    /// Tenants match by name; sections whose stamp no longer matches the
    /// live tenant are skipped as stale; entries the running server
    /// already holds are never overwritten (live state wins). Returns a
    /// full accounting — restore can only warm the server, never corrupt
    /// or wedge it.
    pub fn restore(&self, snap: &Snapshot) -> RestoreReport {
        let tenants = sync::read(&self.inner.tenants);
        let mut report = RestoreReport::default();
        for section in &snap.tenants {
            let Some(tenant) = tenants.values().find(|t| t.name == section.name) else {
                report.tenants_skipped += 1;
                continue;
            };
            report.tenants_matched += 1;
            let live_stamp = tenant.plan_stamp();
            if section.stamp != live_stamp {
                report.plans_skipped_stale += section.plans.len() as u64;
                report.feedback_skipped += section.feedback.len() as u64;
                continue;
            }
            for plan in &section.plans {
                let key = CacheKey {
                    fingerprint: program_fingerprint(&plan.program),
                    stamp: live_stamp,
                };
                let cached = CachedPlan {
                    program: Arc::new(plan.program.clone()),
                    optimized: Arc::new(plan.optimized.to_optimized()),
                };
                if self.inner.cache.restore(key, cached) {
                    report.plans_restored += 1;
                } else {
                    report.plans_skipped_live += 1;
                }
            }
            let Some(fb) = &tenant.feedback else {
                report.feedback_skipped += section.feedback.len() as u64;
                continue;
            };
            for obs in &section.feedback {
                let restored = minidb::sql::parse(&obs.sql)
                    .ok()
                    .is_some_and(|plan| fb.restore(&plan, obs.observation, obs.data_stamp));
                if restored {
                    report.feedback_restored += 1;
                } else {
                    report.feedback_skipped += 1;
                }
            }
        }
        self.inner
            .restored_feedback
            .fetch_add(report.feedback_restored, Ordering::Relaxed);
        report
    }

    /// Read a snapshot file and [`CobraService::restore`] it. A missing,
    /// corrupt, or stale-version file returns the typed error and leaves
    /// the server cold but fully functional.
    pub fn restore_from(&self, path: &std::path::Path) -> Result<RestoreReport, ServerError> {
        let snap = Snapshot::read_from(path)?;
        Ok(self.restore(&snap))
    }

    /// Stop accepting work, drain in-flight requests, and join the
    /// background sweeper. Idempotent; open sessions are dropped.
    ///
    /// The health machine moves to [`Health::Draining`] first so new
    /// submissions are refused with [`ServerError::ShuttingDown`], then
    /// the admission controller is given a bounded window to let
    /// already-admitted work finish — a clean drain, not an abandonment.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner
            .health
            .store(Health::Draining as u8, Ordering::Release);
        self.signal_sweeper();
        if let Some(handle) = sync::lock(&self.inner.sweeper).take() {
            let _ = handle.join();
        }
        // Bounded drain: in-flight permits are short-lived (one optimize +
        // execute), so two seconds is generous; a wedged worker must not
        // wedge shutdown too.
        let _ = self.inner.admission.wait_idle(Duration::from_secs(2));
        sync::write(&self.inner.sessions).clear();
    }

    /// True once [`CobraService::shutdown`] has run.
    pub fn is_shut_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }
}

/// The background sweeper: waits for execution-count signals (with a
/// periodic fallback poll) and sweeps every tenant for drift. Holds only
/// a weak reference, so dropping the last service handle ends the thread.
fn sweeper_loop(weak: std::sync::Weak<Inner>) {
    loop {
        let Some(inner) = weak.upgrade() else {
            return;
        };
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Wait for a signal (or the fallback poll interval). Drop the
        // strong reference while parked so shutdown-by-drop still works.
        {
            let mut guard = sync::lock(&inner.sweep_signal);
            if !*guard {
                let (g, _) = sync::wait_timeout(&inner.sweep_cv, guard, Duration::from_millis(200));
                guard = g;
            }
            *guard = false;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let service = CobraService {
            inner: inner.clone(),
        };
        drop(inner);
        service.sweep_now();
        // `service` was constructed from an upgraded Arc, not a real
        // clone of the caller's handle — dropping it here must not join
        // ourselves, so shutdown() is only ever called by user handles.
        drop(service);
    }
}
