//! The in-process service: tenants, sessions, submission, drift sweeping.
//!
//! [`CobraService`] is the long-running heart of Cobra-as-a-service.
//! Tenants register a database + ORM mappings + function registry;
//! sessions open against a tenant; submissions optimize through the
//! shared single-flight [`PlanCache`] under [`Admission`] control and
//! then execute the optimized program, feeding observed cardinalities
//! back into the tenant's [`minidb::FeedbackStore`].
//!
//! **Cache validity.** The plan cache keys on
//! `(program fingerprint, CacheStamp)` with the stamp's
//! `feedback_generation` pinned to 0: unlike the *estimate* cache (which
//! invalidates on every new observation — recomputing an estimate is
//! cheap), a cached *plan* stays valid until the drift policy decides the
//! model has diverged enough to re-search. The sweeper then bumps the
//! tenant's stats epoch, re-optimizes every cached program under the new
//! stamp (now preferring observed cardinalities) and atomically swaps the
//! results in — sessions never see a half-updated cache, because stale
//! epochs simply stop being addressable.

use crate::admission::Admission;
use crate::error::ServerError;
use crate::plan_cache::{program_fingerprint, CacheKey, CacheOutcome, CachedPlan, PlanCache};
use cobra_core::{
    Cobra, CobraBuilder, OptimizationReport, Optimized, SearchBudget, ValidationConfig,
};
use imperative::ast::Program;
use interp::{Interp, InterpConfig, NormalizedOutcome};
use minidb::{CacheStamp, ExecEngine, FeedbackStore, FuncRegistry, PlanFingerprint, SharedDb};
use netsim::{Clock, NetworkProfile};
use orm::{MappingRegistry, RemoteDb, Session};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Service-wide tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker-pool size: submissions optimized/executed concurrently.
    /// Default: available hardware parallelism.
    pub max_concurrent: usize,
    /// Bounded wait queue beyond the pool; deeper arrivals are shed with
    /// [`ServerError::Overloaded`]. Default 64.
    pub max_queue: usize,
    /// Queue depth at which admitted requests switch to the degraded
    /// search budget. Default 8.
    pub degrade_queue_depth: usize,
    /// The downgraded [`SearchBudget`] used under pressure (fewer
    /// alternatives, capped cost sweeps). Degraded results are *not*
    /// retained in the plan cache.
    pub degraded_budget: SearchBudget,
    /// Multiplicative estimate-vs-observation divergence at which the
    /// sweeper re-optimizes a tenant's cached plans. Default 4.0.
    pub drift_threshold: f64,
    /// Check drift every N executions per tenant. Default 32.
    pub drift_check_every: u64,
    /// Plan-cache shard count. Default 16.
    pub cache_shards: usize,
    /// Execution engine sessions run plans on. Default columnar.
    pub engine: ExecEngine,
    /// Runtime-validate plan selection on the full-budget path: the
    /// optimizer's top-k candidates are micro-executed (or judged by
    /// fresh feedback) and the *measured* winner is promoted — so both
    /// cache misses and the drift sweeper's hot swaps install measured
    /// plans, not just re-costed ones. Degraded (load-shed) requests
    /// skip validation. `None` (default) keeps selection cost-only and
    /// bit-identical to previous behavior.
    pub validate: Option<ValidationConfig>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_concurrent: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_queue: 64,
            degrade_queue_depth: 8,
            degraded_budget: SearchBudget::default()
                .with_max_alternatives_per_region(8)
                .with_max_memo_exprs(512),
            drift_threshold: 4.0,
            drift_check_every: 32,
            cache_shards: 16,
            engine: ExecEngine::default(),
            validate: None,
        }
    }
}

/// Identifies a registered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

/// Identifies an open session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// What a tenant registers: its database, ORM mappings, functions, the
/// network profile its sessions simulate, and whether executions record
/// runtime feedback.
#[derive(Clone)]
pub struct TenantSpec {
    /// Tenant name (wire clients attach by name).
    pub name: String,
    /// The tenant's shared database handle — adopted as is, so the
    /// embedding application and all sessions see one database.
    pub db: SharedDb,
    /// ORM entity mappings for the tenant's schema.
    pub mappings: MappingRegistry,
    /// Scalar functions the tenant's programs call.
    pub funcs: Arc<FuncRegistry>,
    /// Network profile sessions execute under (and the optimizer costs
    /// against). Default: slow remote — the regime where rewrites matter.
    pub network: NetworkProfile,
    /// Record observed cardinalities into a per-tenant feedback store
    /// (enables drift-driven re-optimization). Default true.
    pub feedback: bool,
}

impl TenantSpec {
    /// A spec with the default network (slow remote) and feedback on.
    pub fn new(
        name: impl Into<String>,
        db: SharedDb,
        mappings: MappingRegistry,
        funcs: Arc<FuncRegistry>,
    ) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            db,
            mappings,
            funcs,
            network: NetworkProfile::slow_remote(),
            feedback: true,
        }
    }

    /// Override the network profile.
    pub fn network(mut self, network: NetworkProfile) -> TenantSpec {
        self.network = network;
        self
    }

    /// Enable or disable runtime-feedback recording (off makes every
    /// submission fully deterministic — no adaptive state).
    pub fn feedback(mut self, on: bool) -> TenantSpec {
        self.feedback = on;
        self
    }
}

/// One registered tenant: shared database, optimizers (full + degraded
/// budget), feedback store, execution counter.
struct Tenant {
    name: String,
    db: SharedDb,
    mappings: Arc<MappingRegistry>,
    funcs: Arc<FuncRegistry>,
    network: NetworkProfile,
    feedback: Option<Arc<FeedbackStore>>,
    /// Full-budget optimizer (the plan cache's compute path).
    cobra: Cobra,
    /// Degraded-budget optimizer used under admission pressure.
    cobra_degraded: Cobra,
    instance_id: u64,
    executions: AtomicU64,
    /// Feedback generation at the last drift sweep that acted (or 0);
    /// the sweeper only re-checks drift once new observations arrived.
    swept_generation: AtomicU64,
}

impl Tenant {
    /// The tenant's current plan-cache stamp. `feedback_generation` is
    /// pinned (see the module docs): plans invalidate on stats-epoch
    /// bumps, not on every observation.
    fn plan_stamp(&self) -> CacheStamp {
        let db = self.db.read().unwrap();
        CacheStamp {
            instance_id: db.instance_id(),
            stats_epoch: db.stats_epoch(),
            feedback_generation: 0,
            mode: 1,
        }
    }
}

/// One open session: which tenant it belongs to and its running totals.
struct SessionState {
    tenant: TenantId,
    /// The last submitted program (report retrieval re-explains it).
    last_program: Mutex<Option<Arc<Program>>>,
    submissions: AtomicU64,
    simulated_ns: AtomicU64,
}

/// A snapshot of every server-wide counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Plan-cache lookups served from a completed entry.
    pub cache_hits: u64,
    /// Optimizer runs (cache misses, including degraded ones).
    pub cache_misses: u64,
    /// Submissions that joined another session's in-flight search.
    pub coalesced: u64,
    /// Plans hot-swapped by the drift sweeper.
    pub plans_swapped: u64,
    /// Stale cache entries evicted after swaps.
    pub evicted: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed with `Overloaded`.
    pub rejected: u64,
    /// Requests served under the degraded budget.
    pub degraded: u64,
    /// Sessions opened over the server's lifetime.
    pub sessions_opened: u64,
    /// Registered tenants.
    pub tenants: u64,
    /// Programs executed.
    pub executions: u64,
    /// Drift sweeps that re-optimized at least one plan.
    pub drift_swaps: u64,
    /// Optimizations (cache fills and sweeper hot swaps) where runtime
    /// validation promoted a *measured* winner over the cost model's
    /// argmin. Always 0 unless [`ServerConfig::validate`] is set.
    pub validated_promotions: u64,
}

impl std::fmt::Display for ServerCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cache: {} hits / {} misses / {} coalesced / {} swapped / {} evicted",
            self.cache_hits, self.cache_misses, self.coalesced, self.plans_swapped, self.evicted
        )?;
        writeln!(
            f,
            "admission: {} admitted / {} rejected / {} degraded",
            self.admitted, self.rejected, self.degraded
        )?;
        write!(
            f,
            "sessions: {} opened across {} tenants; {} executions; {} drift sweeps acted; \
             {} validated promotions",
            self.sessions_opened,
            self.tenants,
            self.executions,
            self.drift_swaps,
            self.validated_promotions
        )
    }
}

/// The reply to one submission: plan identity, how the cache satisfied
/// it, cost estimates, and the execution's observables.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitReply {
    /// Structural fingerprint of the submitted program.
    pub fingerprint: PlanFingerprint,
    /// The cache stamp the plan was served under.
    pub stamp: CacheStamp,
    /// Hit / miss / coalesced.
    pub cache: CacheOutcome,
    /// True when served under the degraded budget (admission pressure).
    pub degraded: bool,
    /// Estimated cost of the chosen program, ns.
    pub est_cost_ns: f64,
    /// Estimated cost of the program as submitted, ns.
    pub original_cost_ns: f64,
    /// Feature tags of the chosen program.
    pub tags: Vec<String>,
    /// Simulated wall-clock consumed by the execution, ns.
    pub simulated_ns: u64,
    /// Network round trips the execution performed.
    pub round_trips: u64,
    /// The execution's observables (out-params, return, prints),
    /// normalized.
    pub results: NormalizedOutcome,
    /// Real wall-clock the whole submission took, ns (admission to
    /// results; what the serving benchmark aggregates).
    pub wall_ns: u64,
}

struct Inner {
    config: ServerConfig,
    admission: Admission,
    cache: PlanCache,
    tenants: RwLock<HashMap<u64, Arc<Tenant>>>,
    sessions: RwLock<HashMap<u64, Arc<SessionState>>>,
    next_tenant: AtomicU64,
    next_session: AtomicU64,
    sessions_opened: AtomicU64,
    executions: AtomicU64,
    drift_swaps: AtomicU64,
    validated_promotions: AtomicU64,
    shutdown: AtomicBool,
    /// Sweeper wake-up: (pending-signal flag, condvar).
    sweep_signal: Mutex<bool>,
    sweep_cv: Condvar,
    sweeper: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// The concurrent optimizer/execution service. Cheap to clone (all state
/// behind one `Arc`); `Send + Sync`, so one instance serves any number of
/// threads or wire connections.
#[derive(Clone)]
pub struct CobraService {
    inner: Arc<Inner>,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CobraService>();
};

impl CobraService {
    /// Start a service (spawns the background drift sweeper).
    pub fn new(config: ServerConfig) -> CobraService {
        let inner = Arc::new(Inner {
            admission: Admission::new(
                config.max_concurrent,
                config.max_queue,
                config.degrade_queue_depth,
            ),
            cache: PlanCache::new(config.cache_shards),
            config,
            tenants: RwLock::new(HashMap::new()),
            sessions: RwLock::new(HashMap::new()),
            next_tenant: AtomicU64::new(1),
            next_session: AtomicU64::new(1),
            sessions_opened: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            drift_swaps: AtomicU64::new(0),
            validated_promotions: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            sweep_signal: Mutex::new(false),
            sweep_cv: Condvar::new(),
            sweeper: Mutex::new(None),
        });
        let weak = Arc::downgrade(&inner);
        let handle = std::thread::Builder::new()
            .name("cobra-drift-sweeper".into())
            .spawn(move || sweeper_loop(weak))
            .expect("spawn drift sweeper");
        *inner.sweeper.lock().unwrap() = Some(handle);
        CobraService { inner }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.config
    }

    /// Register a tenant. Each tenant's plans and estimates are isolated
    /// by its database's `instance_id` through the `CacheStamp` key — two
    /// tenants with byte-identical schemas and data still never share
    /// cache entries.
    pub fn register_tenant(&self, spec: TenantSpec) -> TenantId {
        let feedback = spec.feedback.then(|| Arc::new(FeedbackStore::new()));
        let instance_id = spec.db.read().unwrap().instance_id();
        let builder = || -> CobraBuilder {
            let mut b = Cobra::builder(spec.db.clone())
                .mappings(spec.mappings.clone())
                .funcs(spec.funcs.clone())
                .network(spec.network.clone())
                .engine(self.inner.config.engine);
            if let Some(fb) = &feedback {
                b = b.feedback(fb.clone());
            }
            b
        };
        // Validation applies to the full-budget optimizer only: the plan
        // cache's compute path and the drift sweeper both go through it,
        // so cache fills and hot swaps get measured winners. Degraded
        // requests are already shedding load — no micro-executions there.
        let mut full = builder();
        if let Some(v) = &self.inner.config.validate {
            full = full.validate_selection(v.clone());
        }
        let cobra = full.build();
        let cobra_degraded = builder()
            .budget(self.inner.config.degraded_budget.clone())
            .build();
        let tenant = Arc::new(Tenant {
            name: spec.name,
            db: spec.db,
            mappings: Arc::new(spec.mappings),
            funcs: spec.funcs,
            network: spec.network,
            feedback,
            cobra,
            cobra_degraded,
            instance_id,
            executions: AtomicU64::new(0),
            swept_generation: AtomicU64::new(0),
        });
        let id = self.inner.next_tenant.fetch_add(1, Ordering::Relaxed);
        self.inner.tenants.write().unwrap().insert(id, tenant);
        TenantId(id)
    }

    /// Look a tenant up by name (wire clients attach by name).
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.inner
            .tenants
            .read()
            .unwrap()
            .iter()
            .find(|(_, t)| t.name == name)
            .map(|(&id, _)| TenantId(id))
    }

    /// The tenant's per-tenant feedback store, if feedback is enabled.
    pub fn tenant_feedback(&self, tenant: TenantId) -> Option<Arc<FeedbackStore>> {
        let tenants = self.inner.tenants.read().unwrap();
        tenants.get(&tenant.0).and_then(|t| t.feedback.clone())
    }

    /// Open a session against `tenant`.
    pub fn open_session(&self, tenant: TenantId) -> Result<SessionId, ServerError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServerError::ShuttingDown);
        }
        if !self.inner.tenants.read().unwrap().contains_key(&tenant.0) {
            return Err(ServerError::UnknownTenant(format!("id {}", tenant.0)));
        }
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(SessionState {
            tenant,
            last_program: Mutex::new(None),
            submissions: AtomicU64::new(0),
            simulated_ns: AtomicU64::new(0),
        });
        self.inner.sessions.write().unwrap().insert(id, state);
        self.inner.sessions_opened.fetch_add(1, Ordering::Relaxed);
        Ok(SessionId(id))
    }

    /// Close a session (idempotent; unknown ids error).
    pub fn close_session(&self, session: SessionId) -> Result<(), ServerError> {
        self.inner
            .sessions
            .write()
            .unwrap()
            .remove(&session.0)
            .map(|_| ())
            .ok_or(ServerError::UnknownSession(session.0))
    }

    fn session(&self, id: SessionId) -> Result<Arc<SessionState>, ServerError> {
        self.inner
            .sessions
            .read()
            .unwrap()
            .get(&id.0)
            .cloned()
            .ok_or(ServerError::UnknownSession(id.0))
    }

    fn tenant(&self, id: TenantId) -> Result<Arc<Tenant>, ServerError> {
        self.inner
            .tenants
            .read()
            .unwrap()
            .get(&id.0)
            .cloned()
            .ok_or_else(|| ServerError::UnknownTenant(format!("id {}", id.0)))
    }

    /// Submit a program on a session: admission → single-flight
    /// plan-cache optimization → execution of the optimized program, with
    /// observed cardinalities recorded into the tenant's feedback store.
    pub fn submit(
        &self,
        session: SessionId,
        program: &Program,
    ) -> Result<SubmitReply, ServerError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServerError::ShuttingDown);
        }
        let start = Instant::now();
        let state = self.session(session)?;
        let tenant = self.tenant(state.tenant)?;

        // Admission: bounded pool + bounded queue, shed beyond that.
        let permit = self.inner.admission.admit()?;
        let degraded = permit.degraded();

        let program = Arc::new(program.clone());
        let fingerprint = program_fingerprint(&program);
        let key = CacheKey {
            fingerprint,
            stamp: tenant.plan_stamp(),
        };
        let optimizer = if degraded {
            &tenant.cobra_degraded
        } else {
            &tenant.cobra
        };
        let (cached, cache_outcome) =
            self.inner
                .cache
                .get_or_compute(key, &program, !degraded, || {
                    optimizer
                        .optimize_program(&program)
                        .map(Arc::new)
                        .map_err(ServerError::from)
                });
        let cached = cached?;
        let optimized: Arc<Optimized> = cached.optimized;
        // A fresh optimization whose validated selection overrode the
        // cost model's argmin (hits/coalesced replays would double-count).
        if cache_outcome == CacheOutcome::Miss
            && optimized
                .validation
                .as_ref()
                .is_some_and(|v| v.promoted_rank > 0)
        {
            self.inner
                .validated_promotions
                .fetch_add(1, Ordering::Relaxed);
        }

        // Execute the optimized program on a fresh ORM session/clock (one
        // submission = one transaction, as in the paper's measurements).
        let runnable = program.with_entry(optimized.program.clone());
        let outcome = self.execute(&tenant, &runnable)?;
        drop(permit);

        let observed: Vec<&str> = runnable.entry().params.iter().map(|s| s.as_str()).collect();
        let results = outcome.normalized_with_vars(&observed);

        state.submissions.fetch_add(1, Ordering::Relaxed);
        state
            .simulated_ns
            .fetch_add(outcome.elapsed_ns, Ordering::Relaxed);
        *state.last_program.lock().unwrap() = Some(program.clone());
        self.inner.executions.fetch_add(1, Ordering::Relaxed);

        // Drift check every N executions per tenant: wake the sweeper.
        let execs = tenant.executions.fetch_add(1, Ordering::Relaxed) + 1;
        if tenant.feedback.is_some() && execs % self.inner.config.drift_check_every == 0 {
            self.signal_sweeper();
        }

        Ok(SubmitReply {
            fingerprint,
            stamp: key.stamp,
            cache: cache_outcome,
            degraded,
            est_cost_ns: optimized.est_cost_ns,
            original_cost_ns: optimized.original_cost_ns,
            tags: optimized.tags.iter().map(|t| t.to_string()).collect(),
            simulated_ns: outcome.elapsed_ns,
            round_trips: outcome.round_trips,
            results,
            wall_ns: start.elapsed().as_nanos() as u64,
        })
    }

    fn execute(&self, tenant: &Tenant, program: &Program) -> Result<interp::Outcome, ServerError> {
        let clock = Arc::new(Clock::new());
        let mut remote = RemoteDb::new(
            tenant.db.clone(),
            tenant.funcs.clone(),
            tenant.network.clone(),
            clock,
        )
        .with_engine(self.inner.config.engine);
        if let Some(fb) = &tenant.feedback {
            remote = remote.with_feedback(fb.clone());
        }
        let session = Session::new(Arc::new(remote), tenant.mappings.clone());
        Interp::new(&session, program)
            .with_config(InterpConfig::default())
            .run(vec![])
            .map_err(ServerError::from)
    }

    /// The full [`OptimizationReport`] for the session's last submitted
    /// program (re-explained on demand so the submit hot path never pays
    /// for report assembly).
    pub fn session_report(&self, session: SessionId) -> Result<OptimizationReport, ServerError> {
        let state = self.session(session)?;
        let tenant = self.tenant(state.tenant)?;
        let program = state
            .last_program
            .lock()
            .unwrap()
            .clone()
            .ok_or_else(|| ServerError::Db("no program submitted on this session".into()))?;
        tenant.cobra.explain(&program).map_err(ServerError::from)
    }

    /// Run one synchronous drift sweep over every tenant (what the
    /// background sweeper does on its own schedule). Returns the number
    /// of plans hot-swapped. Deterministic hook for tests and demos.
    pub fn sweep_now(&self) -> usize {
        let tenants: Vec<Arc<Tenant>> = self
            .inner
            .tenants
            .read()
            .unwrap()
            .values()
            .cloned()
            .collect();
        let mut swapped = 0;
        for tenant in tenants {
            swapped += self.sweep_tenant(&tenant);
        }
        swapped
    }

    /// Check one tenant's drift and hot-swap its cached plans if the
    /// model has diverged past the threshold.
    fn sweep_tenant(&self, tenant: &Tenant) -> usize {
        let Some(fb) = &tenant.feedback else {
            return 0;
        };
        // Only re-examine once new observations arrived since the last
        // sweep that acted — drift is defined model-vs-observation, so
        // without new evidence the verdict cannot change.
        let generation = fb.generation();
        if generation == 0 || generation == tenant.swept_generation.load(Ordering::Acquire) {
            return 0;
        }
        if tenant.cobra.estimation_drift() < self.inner.config.drift_threshold {
            return 0;
        }
        tenant.swept_generation.store(generation, Ordering::Release);

        // The hot swap: bump the stats epoch (moving the tenant to a
        // fresh stamp and invalidating every estimate cache stamped
        // against this database), re-optimize each cached program — the
        // estimator now prefers the observed cardinalities — and publish
        // under the new stamp. Old-stamp entries become unreachable and
        // are purged.
        // One cached program can appear under several stale epochs (each
        // pre-swap write moved the stamp); the re-optimization is per
        // *program*, so dedupe by fingerprint before paying for searches.
        let mut work = self.inner.cache.entries_for_instance(tenant.instance_id);
        let mut seen = std::collections::HashSet::new();
        work.retain(|(key, _)| seen.insert(key.fingerprint));
        tenant.db.write().unwrap().bump_stats_epoch();
        let new_stamp = tenant.plan_stamp();
        let mut swapped = 0;
        for (key, cached) in work {
            // A program that no longer optimizes (e.g. schema edits
            // under it) is simply dropped from the cache.
            if let Ok(re) = tenant.cobra.optimize_program(&cached.program) {
                // Hot swaps are *measured*, not just re-costed: when the
                // tenant's optimizer validates, record how often the
                // measurement overrode the refreshed cost model.
                if re.validation.as_ref().is_some_and(|v| v.promoted_rank > 0) {
                    self.inner
                        .validated_promotions
                        .fetch_add(1, Ordering::Relaxed);
                }
                self.inner.cache.swap_in(
                    CacheKey {
                        fingerprint: key.fingerprint,
                        stamp: new_stamp,
                    },
                    CachedPlan {
                        program: cached.program.clone(),
                        optimized: Arc::new(re),
                    },
                );
                swapped += 1;
            }
        }
        self.inner
            .cache
            .purge_instance_except(tenant.instance_id, new_stamp);
        if swapped > 0 {
            self.inner.drift_swaps.fetch_add(1, Ordering::Relaxed);
        }
        swapped
    }

    fn signal_sweeper(&self) {
        *self.inner.sweep_signal.lock().unwrap() = true;
        self.inner.sweep_cv.notify_one();
    }

    /// Snapshot every server-wide counter.
    pub fn counters(&self) -> ServerCounters {
        let inner = &self.inner;
        ServerCounters {
            cache_hits: inner.cache.hits(),
            cache_misses: inner.cache.misses(),
            coalesced: inner.cache.coalesced(),
            plans_swapped: inner.cache.swapped(),
            evicted: inner.cache.evicted(),
            admitted: inner.admission.admitted(),
            rejected: inner.admission.rejected(),
            degraded: inner.admission.degraded(),
            sessions_opened: inner.sessions_opened.load(Ordering::Relaxed),
            tenants: inner.tenants.read().unwrap().len() as u64,
            executions: inner.executions.load(Ordering::Relaxed),
            drift_swaps: inner.drift_swaps.load(Ordering::Relaxed),
            validated_promotions: inner.validated_promotions.load(Ordering::Relaxed),
        }
    }

    /// Plan-cache entries currently held (completed + in-flight).
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Stop accepting work and join the background sweeper. Idempotent;
    /// open sessions are dropped.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.signal_sweeper();
        if let Some(handle) = self.inner.sweeper.lock().unwrap().take() {
            let _ = handle.join();
        }
        self.inner.sessions.write().unwrap().clear();
    }

    /// True once [`CobraService::shutdown`] has run.
    pub fn is_shut_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }
}

/// The background sweeper: waits for execution-count signals (with a
/// periodic fallback poll) and sweeps every tenant for drift. Holds only
/// a weak reference, so dropping the last service handle ends the thread.
fn sweeper_loop(weak: std::sync::Weak<Inner>) {
    loop {
        let Some(inner) = weak.upgrade() else {
            return;
        };
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Wait for a signal (or the fallback poll interval). Drop the
        // strong reference while parked so shutdown-by-drop still works.
        {
            let guard = inner.sweep_signal.lock().unwrap();
            let (mut guard, _) = inner
                .sweep_cv
                .wait_timeout_while(guard, Duration::from_millis(200), |signaled| !*signaled)
                .unwrap();
            *guard = false;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let service = CobraService {
            inner: inner.clone(),
        };
        drop(inner);
        service.sweep_now();
        // `service` was constructed from an upgraded Arc, not a real
        // clone of the caller's handle — dropping it here must not join
        // ourselves, so shutdown() is only ever called by user handles.
        drop(service);
    }
}
