//! The TCP transport: length-prefixed frames over `std::net`.
//!
//! Framing is the simplest thing that works: every message is a 4-byte
//! big-endian length followed by that many body bytes (encoded by
//! [`crate::codec`]). One request, one response, in order, per
//! connection — a connection is a client's command stream, and the
//! concurrency story lives in [`CobraService`], not the socket layer.
//!
//! [`WireServer::spawn`] binds a listener and serves each connection on
//! its own thread. Shutdown is cooperative: connection threads use a
//! read timeout to poll the shutdown flag, and [`WireServer::shutdown`]
//! unblocks the accept loop by connecting to itself.

use crate::codec::{Request, Response};
use crate::error::ServerError;
use crate::service::ServerCounters;
use crate::service::{CobraService, SessionId, SubmitReply};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Frames larger than this are rejected as protocol errors (64 MiB —
/// far beyond any real program, small enough to bound a bad frame).
const MAX_FRAME: u32 = 64 << 20;

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u32).to_be_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Read one frame. `Ok(None)` means the peer closed cleanly between
/// frames; timeouts bubble up as `WouldBlock`/`TimedOut` errors for the
/// caller's poll loop.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

/// The wire front end: a TCP listener serving a [`CobraService`].
pub struct WireServer {
    service: CobraService,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl WireServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service`. Returns once the listener is accepting.
    pub fn spawn(service: CobraService, addr: impl ToSocketAddrs) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_service = service.clone();
        let accept_stop = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("cobra-wire-accept".into())
            .spawn(move || accept_loop(listener, accept_service, accept_stop))?;
        Ok(WireServer {
            service,
            addr,
            stop,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &CobraService {
        &self.service
    }

    /// Stop accepting connections, shut the service down, and join the
    /// accept loop. Idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.service.shutdown();
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, service: CobraService, stop: Arc<AtomicBool>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        let conn_service = service.clone();
        let conn_stop = stop.clone();
        // Connection threads are detached; they exit when the peer hangs
        // up or the stop flag trips (checked each read-timeout tick).
        let _ = std::thread::Builder::new()
            .name("cobra-wire-conn".into())
            .spawn(move || serve_connection(stream, conn_service, conn_stop));
    }
}

/// Read one frame under the poll loop: accumulates across read-timeout
/// ticks (so a timeout mid-frame never loses bytes) and re-checks `stop`
/// on every tick. `Ok(None)` means clean close or shutdown.
fn read_frame_polling(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut have: Vec<u8> = Vec::with_capacity(4);
    let mut need = 4usize;
    let mut in_header = true;
    let mut chunk = [0u8; 8192];
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(None);
        }
        let want = (need - have.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                // Clean close only between frames; mid-frame EOF is an error.
                return if in_header && have.is_empty() {
                    Ok(None)
                } else {
                    Err(std::io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => have.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // poll tick
            }
            Err(e) => return Err(e),
        }
        if have.len() == need {
            if in_header {
                let len = u32::from_be_bytes(have[..4].try_into().unwrap());
                if len > MAX_FRAME {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
                    ));
                }
                in_header = false;
                need = len as usize;
                have = Vec::with_capacity(need);
                if need == 0 {
                    return Ok(Some(have));
                }
            } else {
                return Ok(Some(have));
            }
        }
    }
}

fn serve_connection(mut stream: TcpStream, service: CobraService, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    loop {
        let body = match read_frame_polling(&mut stream, &stop) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean close or shutdown
            Err(_) => return,
        };
        let (response, shutdown_after) = handle_request(&service, &body);
        if shutdown_after {
            // Shut down *before* acking, so a client that saw the ack can
            // rely on the service being stopped. Trip the stop flag first
            // so other connections and the accept loop wind down too.
            stop.store(true, Ordering::Release);
            service.shutdown();
        }
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
        if shutdown_after {
            return;
        }
    }
}

/// Execute one decoded request against the service. Returns the response
/// and whether the connection should shut the server down afterwards.
fn handle_request(service: &CobraService, body: &[u8]) -> (Response, bool) {
    let request = match Request::decode(body) {
        Ok(r) => r,
        Err(e) => return (error_response(&e), false),
    };
    match request {
        Request::OpenSession { tenant } => {
            let Some(id) = service.tenant_id(&tenant) else {
                return (error_response(&ServerError::UnknownTenant(tenant)), false);
            };
            match service.open_session(id) {
                Ok(session) => (Response::SessionOpened { session: session.0 }, false),
                Err(e) => (error_response(&e), false),
            }
        }
        Request::Submit { session, program } => {
            match service.submit(SessionId(session), &program) {
                Ok(reply) => (Response::SubmitOk(Box::new(reply)), false),
                Err(e) => (error_response(&e), false),
            }
        }
        Request::Report { session } => match service.session_report(SessionId(session)) {
            Ok(report) => (Response::ReportText(report.to_string()), false),
            Err(e) => (error_response(&e), false),
        },
        Request::Counters => (Response::Counters(service.counters()), false),
        Request::CloseSession { session } => match service.close_session(SessionId(session)) {
            Ok(()) => (Response::Closed, false),
            Err(e) => (error_response(&e), false),
        },
        Request::Shutdown => (Response::ShuttingDown, true),
    }
}

fn error_response(e: &ServerError) -> Response {
    Response::Error {
        code: e.code(),
        message: e.to_string(),
    }
}

/// A blocking client for the wire protocol. One connection, one request
/// in flight at a time (clone-free by design — open more clients for
/// concurrency; the server multiplexes).
pub struct WireClient {
    stream: TcpStream,
}

impl WireClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<WireClient, ServerError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(WireClient { stream })
    }

    fn call(&mut self, request: &Request) -> Result<Response, ServerError> {
        write_frame(&mut self.stream, &request.encode())?;
        let body = read_frame(&mut self.stream)?
            .ok_or_else(|| ServerError::Io("server closed the connection".into()))?;
        let response = Response::decode(&body)?;
        if let Response::Error { code, message } = response {
            return Err(ServerError::from_code(code, message));
        }
        Ok(response)
    }

    /// Open a session against the named tenant.
    pub fn open_session(&mut self, tenant: &str) -> Result<SessionId, ServerError> {
        match self.call(&Request::OpenSession {
            tenant: tenant.to_string(),
        })? {
            Response::SessionOpened { session } => Ok(SessionId(session)),
            other => Err(unexpected(&other)),
        }
    }

    /// Submit a program on a session and wait for its results.
    pub fn submit(
        &mut self,
        session: SessionId,
        program: &imperative::ast::Program,
    ) -> Result<SubmitReply, ServerError> {
        match self.call(&Request::Submit {
            session: session.0,
            program: program.clone(),
        })? {
            Response::SubmitOk(reply) => Ok(*reply),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the rendered optimization report for the session's last
    /// submitted program.
    pub fn report(&mut self, session: SessionId) -> Result<String, ServerError> {
        match self.call(&Request::Report { session: session.0 })? {
            Response::ReportText(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server-wide counters.
    pub fn counters(&mut self) -> Result<ServerCounters, ServerError> {
        match self.call(&Request::Counters)? {
            Response::Counters(c) => Ok(c),
            other => Err(unexpected(&other)),
        }
    }

    /// Close a session.
    pub fn close_session(&mut self, session: SessionId) -> Result<(), ServerError> {
        match self.call(&Request::CloseSession { session: session.0 })? {
            Response::Closed => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to shut down (acknowledged before it stops).
    pub fn shutdown_server(&mut self) -> Result<(), ServerError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ServerError {
    ServerError::Protocol(format!("unexpected response frame: {resp:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan_cache::CacheOutcome;
    use crate::service::{ServerConfig, TenantSpec};
    use workloads::genprog::{GenCase, GenConfig};

    #[test]
    fn wire_roundtrip_matches_in_process() {
        let service = CobraService::new(ServerConfig::default());
        let case = GenCase::from_seed(11, &GenConfig::default());
        let fx = case.fixture();
        let tenant = service.register_tenant(TenantSpec::new(
            "acme",
            fx.db.clone(),
            fx.mapping.clone(),
            fx.funcs.clone(),
        ));

        // In-process baseline on its own session.
        let local_session = service.open_session(tenant).unwrap();
        let local = service.submit(local_session, &case.program).unwrap();

        let server = WireServer::spawn(service, "127.0.0.1:0").unwrap();
        let mut client = WireClient::connect(server.local_addr()).unwrap();
        let session = client.open_session("acme").unwrap();
        let reply = client.submit(session, &case.program).unwrap();
        // Same tenant, same program: the wire submission must hit the
        // plan cache warmed by the in-process one and agree on results.
        assert_eq!(reply.cache, CacheOutcome::Hit);
        assert_eq!(reply.fingerprint, local.fingerprint);
        assert_eq!(reply.results, local.results);

        let report = client.report(session).unwrap();
        assert!(!report.is_empty());
        let counters = client.counters().unwrap();
        assert_eq!(counters.cache_hits, 1);
        client.close_session(session).unwrap();

        client.shutdown_server().unwrap();
        assert!(server.service().is_shut_down());
        server.shutdown(); // idempotent
    }

    #[test]
    fn unknown_tenant_and_session_error_over_the_wire() {
        let service = CobraService::new(ServerConfig::default());
        let server = WireServer::spawn(service, "127.0.0.1:0").unwrap();
        let mut client = WireClient::connect(server.local_addr()).unwrap();
        let err = client.open_session("nobody").unwrap_err();
        assert!(matches!(err, ServerError::UnknownTenant(_)));
        let case = GenCase::from_seed(1, &GenConfig::default());
        let err = client.submit(SessionId(999), &case.program).unwrap_err();
        assert!(matches!(err, ServerError::UnknownSession(_)));
        server.shutdown();
    }
}
