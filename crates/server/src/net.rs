//! The TCP transport: length-prefixed frames over `std::net`.
//!
//! Framing is the simplest thing that works: every message is a 4-byte
//! big-endian length followed by that many body bytes (encoded by
//! [`crate::codec`]). One request, one response, in order, per
//! connection — a connection is a client's command stream, and the
//! concurrency story lives in [`CobraService`], not the socket layer.
//!
//! [`WireServer::spawn`] binds a listener and serves each connection on
//! its own thread. Shutdown is cooperative: connection threads use a
//! read timeout to poll the shutdown flag, and [`WireServer::shutdown`]
//! unblocks the accept loop by connecting to itself.
//!
//! **Fault injection.** When the service's [`crate::FaultPlan`] is enabled, the
//! response write path consults it per reply and injects transport
//! faults — connection resets, partial writes, stalls, slow trickles,
//! corrupted frames — deterministically from the plan's seed. The
//! matching client story is [`RetryPolicy`]: [`WireClient::connect_with`]
//! retries transient failures on a fresh connection with bounded
//! exponential backoff, deterministic jitter, and per-submission
//! idempotency keys so a retried submission whose original completed is
//! replayed, not re-executed.

use crate::codec::{Request, Response};
use crate::error::ServerError;
use crate::fault::{FaultKind, FaultSite};
use crate::service::ServerCounters;
use crate::service::{CobraService, SessionId, SubmitReply};
use crate::sync;
use netsim::StdRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Frames larger than this are rejected as protocol errors (64 MiB —
/// far beyond any real program, small enough to bound a bad frame).
const MAX_FRAME: u32 = 64 << 20;

/// Largest up-front body allocation. A length prefix is attacker/chaos
/// controlled; bodies grow in bounded steps as bytes actually arrive, so
/// a hostile 64 MiB prefix costs bandwidth, never memory.
const ALLOC_CAP: usize = 1 << 20;

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u32).to_be_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Read exactly `len` body bytes without trusting `len` for the
/// allocation (see [`ALLOC_CAP`]).
fn read_body(stream: &mut TcpStream, len: usize) -> std::io::Result<Vec<u8>> {
    let mut body = Vec::with_capacity(len.min(ALLOC_CAP));
    let mut chunk = [0u8; 64 * 1024];
    while body.len() < len {
        let want = (len - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(body)
}

/// Read one frame. `Ok(None)` means the peer closed cleanly between
/// frames; timeouts bubble up as `WouldBlock`/`TimedOut` errors for the
/// caller's poll loop.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    Ok(Some(read_body(stream, len as usize)?))
}

/// The wire front end: a TCP listener serving a [`CobraService`].
pub struct WireServer {
    service: CobraService,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl WireServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service`. Returns once the listener is accepting.
    pub fn spawn(service: CobraService, addr: impl ToSocketAddrs) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_service = service.clone();
        let accept_stop = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("cobra-wire-accept".into())
            .spawn(move || accept_loop(listener, accept_service, accept_stop))?;
        Ok(WireServer {
            service,
            addr,
            stop,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &CobraService {
        &self.service
    }

    /// Stop accepting connections, shut the service down, and join the
    /// accept loop. Idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.service.shutdown();
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = sync::lock(&self.accept_thread).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, service: CobraService, stop: Arc<AtomicBool>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        let conn_service = service.clone();
        let conn_stop = stop.clone();
        // Connection threads are detached; they exit when the peer hangs
        // up or the stop flag trips (checked each read-timeout tick).
        let _ = std::thread::Builder::new()
            .name("cobra-wire-conn".into())
            .spawn(move || serve_connection(stream, conn_service, conn_stop));
    }
}

/// Read one frame under the poll loop: accumulates across read-timeout
/// ticks (so a timeout mid-frame never loses bytes) and re-checks `stop`
/// on every tick. `Ok(None)` means clean close or shutdown.
fn read_frame_polling(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut have: Vec<u8> = Vec::with_capacity(4);
    let mut need = 4usize;
    let mut in_header = true;
    let mut chunk = [0u8; 8192];
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(None);
        }
        let want = (need - have.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                // Clean close only between frames; mid-frame EOF is an error.
                return if in_header && have.is_empty() {
                    Ok(None)
                } else {
                    Err(std::io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => have.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // poll tick
            }
            Err(e) => return Err(e),
        }
        if have.len() == need {
            if in_header {
                let len = u32::from_be_bytes(have[..4].try_into().unwrap());
                if len > MAX_FRAME {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
                    ));
                }
                in_header = false;
                need = len as usize;
                have = Vec::with_capacity(need.min(ALLOC_CAP));
                if need == 0 {
                    return Ok(Some(have));
                }
            } else {
                return Ok(Some(have));
            }
        }
    }
}

fn serve_connection(mut stream: TcpStream, service: CobraService, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let faults = service.config().faults.clone();
    loop {
        let body = match read_frame_polling(&mut stream, &stop) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean close or shutdown
            Err(_) => return,
        };
        let (response, shutdown_after) = handle_request(&service, &body);
        if shutdown_after {
            // Shut down *before* acking, so a client that saw the ack can
            // rely on the service being stopped. Trip the stop flag first
            // so other connections and the accept loop wind down too.
            stop.store(true, Ordering::Release);
            service.shutdown();
        }
        let mut frame = response.encode();
        // Chaos harness: the response write is the transport's seam, so
        // every transport fault is injected here. The shutdown ack is
        // exempt — a clean shutdown must stay observable.
        if !shutdown_after {
            match faults.decide(FaultSite::Response) {
                Some(FaultKind::ConnReset) => return, // reply swallowed, peer sees EOF
                Some(FaultKind::PartialWrite) => {
                    // Length prefix plus half the body, then sever: the
                    // peer is left mid-frame and must reconnect.
                    let _ = stream.write_all(&(frame.len() as u32).to_be_bytes());
                    let _ = stream.write_all(&frame[..frame.len() / 2]);
                    let _ = stream.flush();
                    return;
                }
                Some(FaultKind::StallRead) => std::thread::sleep(faults.stall_duration()),
                Some(FaultKind::SlowRead) => std::thread::sleep(faults.slow_duration()),
                Some(FaultKind::CorruptFrame) => {
                    // Clobber the response tag: corruption the decoder is
                    // guaranteed to detect, never silently-wrong fields.
                    frame[0] = 0xEE;
                }
                Some(FaultKind::WorkerPanic) | None => {} // panics inject in the service
            }
        }
        if write_frame(&mut stream, &frame).is_err() {
            return;
        }
        if shutdown_after {
            return;
        }
    }
}

/// Execute one decoded request against the service. Returns the response
/// and whether the connection should shut the server down afterwards.
fn handle_request(service: &CobraService, body: &[u8]) -> (Response, bool) {
    let request = match Request::decode(body) {
        Ok(r) => r,
        Err(e) => return (error_response(&e), false),
    };
    match request {
        Request::OpenSession { tenant } => {
            let Some(id) = service.tenant_id(&tenant) else {
                return (error_response(&ServerError::UnknownTenant(tenant)), false);
            };
            match service.open_session(id) {
                Ok(session) => (Response::SessionOpened { session: session.0 }, false),
                Err(e) => (error_response(&e), false),
            }
        }
        Request::Submit {
            session,
            idempotency,
            program,
        } => match service.submit_idempotent(SessionId(session), &program, idempotency) {
            Ok(reply) => (Response::SubmitOk(Box::new(reply)), false),
            Err(e) => (error_response(&e), false),
        },
        Request::Report { session } => match service.session_report(SessionId(session)) {
            Ok(report) => (Response::ReportText(report.to_string()), false),
            Err(e) => (error_response(&e), false),
        },
        Request::Counters => (Response::Counters(service.counters()), false),
        Request::CloseSession { session } => match service.close_session(SessionId(session)) {
            Ok(()) => (Response::Closed, false),
            Err(e) => (error_response(&e), false),
        },
        Request::Shutdown => (Response::ShuttingDown, true),
    }
}

fn error_response(e: &ServerError) -> Response {
    Response::Error {
        code: e.code(),
        message: e.to_string(),
    }
}

/// How a [`WireClient`] handles transient failures: per-request
/// deadlines, bounded retry, exponential backoff with deterministic
/// jitter.
///
/// Retries happen on a *fresh connection* (transport state after a
/// partial frame is unknowable) and only for failures that are safe or
/// idempotent to repeat: transport errors, corrupt response frames,
/// [`ServerError::Overloaded`] shedding, and [`ServerError::Internal`]
/// worker panics. Submissions carry an idempotency key, so a retry whose
/// original attempt actually completed replays the recorded reply
/// instead of executing twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (1 = no retry). Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Socket read deadline per attempt (`Duration::ZERO` = wait
    /// forever). A stalled server turns into a timed-out attempt instead
    /// of a hung client.
    pub request_timeout: Duration,
    /// Seed for the deterministic backoff jitter (same seed, same
    /// schedule — chaos runs replay exactly).
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries, no deadline: the pre-resilience client behavior.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            request_timeout: Duration::ZERO,
            seed: 0,
        }
    }

    /// A sensible resilient default: 6 attempts, 5 ms base backoff capped
    /// at 200 ms, 2 s per-attempt deadline.
    pub fn standard(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            request_timeout: Duration::from_secs(2),
            seed,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::standard(0x5EED)
    }
}

/// A blocking client for the wire protocol. One connection, one request
/// in flight at a time (clone-free by design — open more clients for
/// concurrency; the server multiplexes). Reconnects and retries per its
/// [`RetryPolicy`]; [`WireClient::connect`] uses [`RetryPolicy::none`].
pub struct WireClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    policy: RetryPolicy,
    rng: StdRng,
    retries: u64,
}

impl WireClient {
    /// Connect with no retries and no deadline (the original client
    /// behavior); use [`WireClient::connect_with`] for resilience.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<WireClient, ServerError> {
        WireClient::connect_with(addr, RetryPolicy::none())
    }

    /// Connect with an explicit [`RetryPolicy`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> Result<WireClient, ServerError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServerError::Io("address resolved to nothing".into()))?;
        let mut client = WireClient {
            addr,
            stream: None,
            policy,
            rng: StdRng::seed_from_u64(policy.seed),
            retries: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Reconnect-and-retry cycles performed so far (0 on a fault-free
    /// connection).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn ensure_connected(&mut self) -> Result<(), ServerError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            if self.policy.request_timeout > Duration::ZERO {
                stream.set_read_timeout(Some(self.policy.request_timeout))?;
            }
            self.stream = Some(stream);
        }
        Ok(())
    }

    /// One attempt. The boolean is "safe to retry": transport and
    /// corrupt-frame failures always are (state is discarded with the
    /// connection); decoded server errors only when they are transient
    /// by contract (`Overloaded` shedding, `Internal` panic isolation).
    fn call_once(&mut self, request: &Request) -> Result<Response, (ServerError, bool)> {
        if let Err(e) = self.ensure_connected() {
            return Err((e, true));
        }
        let stream = self.stream.as_mut().expect("connected above");
        if let Err(e) = write_frame(stream, &request.encode()) {
            return Err((e.into(), true));
        }
        let body = match read_frame(stream) {
            Ok(Some(body)) => body,
            Ok(None) => return Err((ServerError::Io("server closed the connection".into()), true)),
            Err(e) => return Err((e.into(), true)),
        };
        let response = match Response::decode(&body) {
            Ok(r) => r,
            Err(e) => return Err((e, true)), // corrupt frame: retry on a fresh connection
        };
        if let Response::Error { code, message } = response {
            let err = ServerError::from_code(code, message);
            let transient = matches!(
                err,
                ServerError::Overloaded { .. } | ServerError::Internal(_)
            );
            return Err((err, transient));
        }
        Ok(response)
    }

    fn call(&mut self, request: &Request) -> Result<Response, ServerError> {
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.call_once(request) {
                Ok(response) => return Ok(response),
                Err((err, retryable)) => {
                    if !retryable || attempt >= max_attempts {
                        return Err(err);
                    }
                    // Drop the connection unconditionally: after a partial
                    // or corrupt frame the stream's framing state is
                    // unknowable, and a fresh connect is always safe.
                    self.stream = None;
                    self.retries += 1;
                    std::thread::sleep(self.backoff(attempt));
                }
            }
        }
    }

    /// Exponential backoff with deterministic jitter: `base · 2^(n-1)`
    /// capped at `max_backoff`, plus up to 50% jitter from the seeded
    /// stream (decorrelates retry storms, replays exactly per seed).
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.policy.base_backoff.min(self.policy.max_backoff);
        if base.is_zero() {
            return Duration::ZERO;
        }
        let exp = base.saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.policy.max_backoff);
        let jitter_span = (capped.as_nanos() as u64 / 2).max(1);
        capped + Duration::from_nanos(self.rng.gen_range(0..jitter_span))
    }

    /// Open a session against the named tenant.
    pub fn open_session(&mut self, tenant: &str) -> Result<SessionId, ServerError> {
        match self.call(&Request::OpenSession {
            tenant: tenant.to_string(),
        })? {
            Response::SessionOpened { session } => Ok(SessionId(session)),
            other => Err(unexpected(&other)),
        }
    }

    /// Submit a program on a session and wait for its results.
    ///
    /// Under a retrying policy every submission carries a fresh nonzero
    /// idempotency key; all retry attempts reuse it, so a reply lost in
    /// transit is replayed from the server's per-session window rather
    /// than optimized and executed a second time.
    pub fn submit(
        &mut self,
        session: SessionId,
        program: &imperative::ast::Program,
    ) -> Result<SubmitReply, ServerError> {
        let idempotency = if self.policy.max_attempts > 1 {
            self.rng.gen_range(1..u64::MAX)
        } else {
            0
        };
        match self.call(&Request::Submit {
            session: session.0,
            idempotency,
            program: program.clone(),
        })? {
            Response::SubmitOk(reply) => Ok(*reply),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the rendered optimization report for the session's last
    /// submitted program.
    pub fn report(&mut self, session: SessionId) -> Result<String, ServerError> {
        match self.call(&Request::Report { session: session.0 })? {
            Response::ReportText(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server-wide counters.
    pub fn counters(&mut self) -> Result<ServerCounters, ServerError> {
        match self.call(&Request::Counters)? {
            Response::Counters(c) => Ok(c),
            other => Err(unexpected(&other)),
        }
    }

    /// Close a session. A retry that finds the session already gone
    /// treats that as success — the first attempt's close landed, only
    /// its ack was lost.
    pub fn close_session(&mut self, session: SessionId) -> Result<(), ServerError> {
        let before = self.retries;
        match self.call(&Request::CloseSession { session: session.0 }) {
            Ok(Response::Closed) => Ok(()),
            Ok(other) => Err(unexpected(&other)),
            Err(ServerError::UnknownSession(_)) if self.retries > before => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Ask the server to shut down (acknowledged before it stops). A
    /// retry that cannot reconnect treats that as success — an
    /// unreachable server is what shutdown asked for.
    pub fn shutdown_server(&mut self) -> Result<(), ServerError> {
        let before = self.retries;
        match self.call(&Request::Shutdown) {
            Ok(Response::ShuttingDown) => Ok(()),
            Ok(other) => Err(unexpected(&other)),
            Err(ServerError::Io(_)) if self.retries > before => Ok(()),
            Err(e) => Err(e),
        }
    }
}

fn unexpected(resp: &Response) -> ServerError {
    ServerError::Protocol(format!("unexpected response frame: {resp:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan_cache::CacheOutcome;
    use crate::service::{ServerConfig, TenantSpec};
    use workloads::genprog::{GenCase, GenConfig};

    #[test]
    fn wire_roundtrip_matches_in_process() {
        let service = CobraService::new(ServerConfig::default());
        let case = GenCase::from_seed(11, &GenConfig::default());
        let fx = case.fixture();
        let tenant = service.register_tenant(TenantSpec::new(
            "acme",
            fx.db.clone(),
            fx.mapping.clone(),
            fx.funcs.clone(),
        ));

        // In-process baseline on its own session.
        let local_session = service.open_session(tenant).unwrap();
        let local = service.submit(local_session, &case.program).unwrap();

        let server = WireServer::spawn(service, "127.0.0.1:0").unwrap();
        let mut client = WireClient::connect(server.local_addr()).unwrap();
        let session = client.open_session("acme").unwrap();
        let reply = client.submit(session, &case.program).unwrap();
        // Same tenant, same program: the wire submission must hit the
        // plan cache warmed by the in-process one and agree on results.
        assert_eq!(reply.cache, CacheOutcome::Hit);
        assert_eq!(reply.fingerprint, local.fingerprint);
        assert_eq!(reply.results, local.results);

        let report = client.report(session).unwrap();
        assert!(!report.is_empty());
        let counters = client.counters().unwrap();
        assert_eq!(counters.cache_hits, 1);
        client.close_session(session).unwrap();

        client.shutdown_server().unwrap();
        assert!(server.service().is_shut_down());
        server.shutdown(); // idempotent
    }

    #[test]
    fn unknown_tenant_and_session_error_over_the_wire() {
        let service = CobraService::new(ServerConfig::default());
        let server = WireServer::spawn(service, "127.0.0.1:0").unwrap();
        let mut client = WireClient::connect(server.local_addr()).unwrap();
        let err = client.open_session("nobody").unwrap_err();
        assert!(matches!(err, ServerError::UnknownTenant(_)));
        let case = GenCase::from_seed(1, &GenConfig::default());
        let err = client.submit(SessionId(999), &case.program).unwrap_err();
        assert!(matches!(err, ServerError::UnknownSession(_)));
        server.shutdown();
    }
}
