//! Accounting of network activity during a simulated run.

use std::cell::Cell;

/// Counters for network activity; used by experiments to report the number
/// of round trips (the N+1 select problem manifests here) and bytes moved.
#[derive(Debug, Default)]
pub struct NetStats {
    round_trips: Cell<u64>,
    bytes_transferred: Cell<u64>,
}

impl NetStats {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one request/response round trip.
    pub fn record_round_trip(&self) {
        self.round_trips.set(self.round_trips.get() + 1);
    }

    /// Record a payload of `bytes` moved over the link.
    pub fn record_transfer(&self, bytes: u64) {
        self.bytes_transferred
            .set(self.bytes_transferred.get().saturating_add(bytes));
    }

    /// Number of round trips so far.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.get()
    }

    /// Total bytes transferred so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred.get()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.round_trips.set(0);
        self.bytes_transferred.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::new();
        s.record_round_trip();
        s.record_round_trip();
        s.record_transfer(100);
        s.record_transfer(28);
        assert_eq!(s.round_trips(), 2);
        assert_eq!(s.bytes_transferred(), 128);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = NetStats::new();
        s.record_round_trip();
        s.record_transfer(5);
        s.reset();
        assert_eq!(s.round_trips(), 0);
        assert_eq!(s.bytes_transferred(), 0);
    }
}
