//! Accounting of network activity during a simulated run.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for network activity; used by experiments to report the number
/// of round trips (the N+1 select problem manifests here) and bytes moved.
/// Atomic, so a connection can be shared across threads.
#[derive(Debug, Default)]
pub struct NetStats {
    round_trips: AtomicU64,
    bytes_transferred: AtomicU64,
}

impl NetStats {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one request/response round trip.
    pub fn record_round_trip(&self) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a payload of `bytes` moved over the link.
    pub fn record_transfer(&self, bytes: u64) {
        let _ = self
            .bytes_transferred
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some(b.saturating_add(bytes))
            });
    }

    /// Number of round trips so far.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Total bytes transferred so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.round_trips.store(0, Ordering::Relaxed);
        self.bytes_transferred.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::new();
        s.record_round_trip();
        s.record_round_trip();
        s.record_transfer(100);
        s.record_transfer(28);
        assert_eq!(s.round_trips(), 2);
        assert_eq!(s.bytes_transferred(), 128);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = NetStats::new();
        s.record_round_trip();
        s.record_transfer(5);
        s.reset();
        assert_eq!(s.round_trips(), 0);
        assert_eq!(s.bytes_transferred(), 0);
    }
}
