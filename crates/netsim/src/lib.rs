//! Simulated network and virtual time.
//!
//! The paper's experiments run a client application and a MySQL server on
//! two machines connected through a network emulator (§VIII). This crate is
//! the deterministic substitute: a [`Clock`] counting virtual nanoseconds
//! and a [`NetworkProfile`] describing bandwidth and round-trip latency.
//!
//! Two built-in profiles reproduce the paper's setups:
//!
//! * [`NetworkProfile::slow_remote`] — 500 kbps bandwidth, 250 ms RTT
//!   (latency taken from an AWS inter-region latency map, per the paper).
//! * [`NetworkProfile::fast_local`] — 6 Gbps bandwidth, 0.5 ms RTT.
//!
//! All durations are expressed in whole nanoseconds ([`Ns`]). The clock
//! and counters are atomic so they can be shared across threads; shared
//! ownership goes through `Arc<Clock>`.
//!
//! The crate also hosts the workspace's deterministic PRNG ([`StdRng`],
//! re-exported from [`rng`]) so simulation, workload generation, and fault
//! injection all draw from one seeded generator implementation.

mod clock;
mod profile;
pub mod rng;
mod stats;

pub use clock::{Clock, Ns};
pub use profile::NetworkProfile;
pub use rng::{SampleRange, StdRng};
pub use stats::NetStats;

/// Convert virtual nanoseconds into seconds as an `f64` (for reporting).
pub fn ns_to_secs(ns: Ns) -> f64 {
    ns as f64 / 1e9
}

/// Convert seconds into virtual nanoseconds, saturating on overflow.
pub fn secs_to_ns(secs: f64) -> Ns {
    if !secs.is_finite() || secs <= 0.0 {
        return 0;
    }
    let ns = secs * 1e9;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as Ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_secs_round_trip() {
        assert_eq!(secs_to_ns(1.0), 1_000_000_000);
        assert!((ns_to_secs(2_500_000_000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn secs_to_ns_clamps_bad_input() {
        assert_eq!(secs_to_ns(-1.0), 0);
        assert_eq!(secs_to_ns(f64::NAN), 0);
        assert_eq!(secs_to_ns(f64::INFINITY), 0);
        assert_eq!(secs_to_ns(1e30), u64::MAX);
    }
}
