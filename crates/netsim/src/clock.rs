//! The virtual clock used by every simulated component.

use std::sync::atomic::{AtomicU64, Ordering};

/// Virtual nanoseconds.
pub type Ns = u64;

/// A monotonically advancing virtual clock.
///
/// Every component that "spends time" (network transfers, server-side query
/// execution, per-statement client CPU cost) advances the same shared clock,
/// so the final reading is the simulated wall-clock time of the program.
///
/// The counter is atomic, so a clock can be shared across threads
/// (`Arc<Clock>`); each simulated run still owns its own clock, the atomics
/// simply make the whole pipeline `Send + Sync`.
///
/// ```
/// use netsim::Clock;
/// let clock = Clock::new();
/// clock.advance(1_500);
/// assert_eq!(clock.now(), 1_500);
/// ```
#[derive(Debug, Default)]
pub struct Clock {
    now_ns: AtomicU64,
}

impl Clock {
    /// A clock starting at virtual time zero.
    pub fn new() -> Self {
        Clock {
            now_ns: AtomicU64::new(0),
        }
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> Ns {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Advance the clock by `delta` nanoseconds, saturating at `u64::MAX`.
    pub fn advance(&self, delta: Ns) {
        let _ = self
            .now_ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |now| {
                Some(now.saturating_add(delta))
            });
    }

    /// Reset to time zero (used between benchmark runs).
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::Relaxed);
    }

    /// Run `f` and return the virtual time it consumed.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, Ns) {
        let start = self.now();
        let out = f();
        (out, self.now() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = Clock::new();
        assert_eq!(c.now(), 0);
        c.advance(10);
        c.advance(5);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let c = Clock::new();
        c.advance(u64::MAX - 1);
        c.advance(100);
        assert_eq!(c.now(), u64::MAX);
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = Clock::new();
        c.advance(42);
        c.reset();
        assert_eq!(c.now(), 0);
    }

    #[test]
    fn measure_reports_elapsed_virtual_time() {
        let c = Clock::new();
        c.advance(7);
        let (value, took) = c.measure(|| {
            c.advance(35);
            "done"
        });
        assert_eq!(value, "done");
        assert_eq!(took, 35);
        assert_eq!(c.now(), 42);
    }

    #[test]
    fn clock_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Clock>();
    }
}
