//! Network profiles: bandwidth + round-trip latency.

use crate::clock::Ns;

/// A network between the application client and the database server.
///
/// The paper simulates two conditions (§VIII):
/// slow remote (500 kbps, 250 ms latency) and fast local (6 Gbps, 0.5 ms
/// round trip). The corresponding constructors are provided; arbitrary
/// profiles can be built with [`NetworkProfile::new`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    name: String,
    /// Usable bandwidth in bytes per second.
    bytes_per_sec: f64,
    /// Round-trip time in nanoseconds (client → server → client).
    rtt_ns: Ns,
}

impl NetworkProfile {
    /// Create a profile from a bandwidth in **bits** per second and a
    /// round-trip time in milliseconds.
    ///
    /// # Panics
    /// Panics if `bits_per_sec` is not strictly positive.
    pub fn new(name: impl Into<String>, bits_per_sec: f64, rtt_ms: f64) -> Self {
        assert!(
            bits_per_sec > 0.0 && bits_per_sec.is_finite(),
            "bandwidth must be positive and finite"
        );
        assert!(
            rtt_ms >= 0.0 && rtt_ms.is_finite(),
            "RTT must be non-negative"
        );
        NetworkProfile {
            name: name.into(),
            bytes_per_sec: bits_per_sec / 8.0,
            rtt_ns: (rtt_ms * 1e6) as Ns,
        }
    }

    /// The paper's *slow remote network*: 500 kbps bandwidth, 250 ms RTT.
    pub fn slow_remote() -> Self {
        NetworkProfile::new("slow-remote", 500e3, 250.0)
    }

    /// The paper's *fast local network*: 6 Gbps bandwidth, 0.5 ms RTT.
    pub fn fast_local() -> Self {
        NetworkProfile::new("fast-local", 6e9, 0.5)
    }

    /// Human-readable profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Usable bandwidth in bytes per second (`BW` in the paper's cost model).
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// One network round trip (`C_NRT` in the paper's cost model).
    pub fn round_trip_ns(&self) -> Ns {
        self.rtt_ns
    }

    /// Time to push `bytes` through the link.
    pub fn transfer_ns(&self, bytes: u64) -> Ns {
        let secs = bytes as f64 / self.bytes_per_sec;
        crate::secs_to_ns(secs)
    }

    /// Estimated transfer time for a fractional byte count (cost model use).
    pub fn transfer_ns_f(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        bytes / self.bytes_per_sec * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_remote_matches_paper_parameters() {
        let p = NetworkProfile::slow_remote();
        assert_eq!(p.round_trip_ns(), 250_000_000);
        // 500 kbit/s == 62.5 kB/s
        assert!((p.bytes_per_sec() - 62_500.0).abs() < 1e-9);
    }

    #[test]
    fn fast_local_matches_paper_parameters() {
        let p = NetworkProfile::fast_local();
        assert_eq!(p.round_trip_ns(), 500_000);
        assert!((p.bytes_per_sec() - 750e6).abs() < 1.0);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let p = NetworkProfile::new("test", 8e6, 0.0); // 1 MB/s
        assert_eq!(p.transfer_ns(1_000_000), 1_000_000_000); // 1 s
        assert_eq!(p.transfer_ns(0), 0);
        assert_eq!(p.transfer_ns(500_000), 500_000_000);
    }

    #[test]
    fn fractional_transfer_matches_integral() {
        let p = NetworkProfile::slow_remote();
        let whole = p.transfer_ns(125_000) as f64;
        let frac = p.transfer_ns_f(125_000.0);
        assert!((whole - frac).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        NetworkProfile::new("bad", 0.0, 1.0);
    }

    #[test]
    fn transfer_of_large_payload_on_slow_link() {
        // 232 MB over 62.5 kB/s ≈ 3712 s: the Fig 13a magnitude check.
        let p = NetworkProfile::slow_remote();
        let t = crate::ns_to_secs(p.transfer_ns(232_000_000));
        assert!((t - 3712.0).abs() < 1.0, "got {t}");
    }
}
