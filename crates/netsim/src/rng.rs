//! A minimal deterministic pseudo-random generator (splitmix64 seeded,
//! xorshift64* stream) with a `rand`-compatible surface for the narrow API
//! the simulators and data generators need. The workspace builds without
//! network access, so the real `rand` crate is unavailable; determinism per
//! seed is all the consumers require. It lives in `netsim` — the lowest
//! layer of the workspace — so the workload generators, the fault-injection
//! harness in `cobra-server`, and the property-test suites all share one
//! generator implementation and one behavior. `workloads::rng` re-exports
//! it for existing callers.

use std::ops::Range;

/// Deterministic PRNG, API-compatible with the subset of `rand::rngs::StdRng`
/// used by the fixture generators.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Seed the generator (splitmix64 of the seed, so small seeds diverge).
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        StdRng {
            state: (z ^ (z >> 31)).max(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform sample from a half-open range.
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// A fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `percent`/100 (0 never, 100 always).
    pub fn chance(&mut self, percent: u32) -> bool {
        self.gen_range(0..100u32) < percent
    }

    /// A uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.gen_range(0..items.len())]
    }
}

/// Types `StdRng::gen_range` can sample.
pub trait SampleRange: Sized {
    fn sample(rng: &mut StdRng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut StdRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as Self
            }
        }
    )*};
}

impl_sample_range!(i64, u64, usize, i32, u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<i64> = (0..10).map(|_| a.gen_range(0..1000i64)).collect();
        let ys: Vec<i64> = (0..10).map(|_| b.gen_range(0..1000i64)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<i64> = (0..10).map(|_| a.gen_range(0..1_000_000i64)).collect();
        let ys: Vec<i64> = (0..10).map(|_| b.gen_range(0..1_000_000i64)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
        }
    }
}
