//! Scalar expressions used in predicates and projections.

use crate::error::{DbError, DbResult};
use crate::func::FuncRegistry;
use crate::schema::{DataType, Schema};
use crate::value::{Row, Value};
use std::collections::HashMap;
use std::fmt;

/// A (possibly qualified) column reference, resolved lazily against the
/// input schema at planning/execution time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Optional qualifier (alias or table name).
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl ColRef {
    /// Parse `"q.name"` or `"name"` into a reference.
    pub fn parse(s: &str) -> ColRef {
        match s.split_once('.') {
            Some((q, n)) => ColRef {
                qualifier: Some(q.to_string()),
                name: n.to_string(),
            },
            None => ColRef {
                qualifier: None,
                name: s.to_string(),
            },
        }
    }

    /// The reference as `q.name` or `name`.
    pub fn to_ref_string(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ref_string())
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    And,
    Or,
}

impl BinOp {
    /// True for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// The comparison with its operands swapped (`a ⋈ b` ⇔ `b ⋈' a`):
    /// `<` ↔ `>`, `<=` ↔ `>=`; symmetric operators map to themselves.
    pub fn mirror(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }

    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScalarExpr {
    /// Column reference.
    Col(ColRef),
    /// Literal value.
    Lit(Value),
    /// Named parameter (`:name`), bound at execution time. Iterative
    /// queries inside loops (the N+1 pattern) are parameterized this way.
    Param(String),
    /// Binary operation.
    Bin(BinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Logical negation.
    Not(Box<ScalarExpr>),
    /// Registered scalar function call (shared client/server semantics).
    Func(String, Vec<ScalarExpr>),
}

impl ScalarExpr {
    /// Shorthand: column reference from `"q.name"` / `"name"`.
    pub fn col(s: &str) -> ScalarExpr {
        ScalarExpr::Col(ColRef::parse(s))
    }

    /// Shorthand: literal.
    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Lit(v.into())
    }

    /// Shorthand: named parameter.
    pub fn param(name: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Param(name.into())
    }

    /// Shorthand: binary operation.
    pub fn bin(op: BinOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(op, Box::new(l), Box::new(r))
    }

    /// `l = r`.
    pub fn eq(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::bin(BinOp::Eq, l, r)
    }

    /// `l and r`.
    pub fn and(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::bin(BinOp::And, l, r)
    }

    /// Evaluate against a row of `schema`, with `params` bound.
    pub fn eval(
        &self,
        schema: &Schema,
        row: &Row,
        params: &HashMap<String, Value>,
        funcs: &FuncRegistry,
    ) -> DbResult<Value> {
        match self {
            ScalarExpr::Col(c) => {
                let i = schema.resolve(&c.to_ref_string())?;
                Ok(row[i].clone())
            }
            ScalarExpr::Lit(v) => Ok(v.clone()),
            ScalarExpr::Param(name) => params
                .get(name)
                .cloned()
                .ok_or_else(|| DbError::UnboundParam(name.clone())),
            ScalarExpr::Bin(op, l, r) => {
                let lv = l.eval(schema, row, params, funcs)?;
                let rv = r.eval(schema, row, params, funcs)?;
                apply_bin_op(*op, &lv, &rv)
            }
            ScalarExpr::Not(e) => {
                let v = e.eval(schema, row, params, funcs)?;
                match v {
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    Value::Null => Ok(Value::Null),
                    other => Err(DbError::Type(format!("NOT applied to {other}"))),
                }
            }
            ScalarExpr::Func(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(schema, row, params, funcs)?);
                }
                funcs.call(name, &vals)
            }
        }
    }

    /// True if this expression (transitively) references any column.
    pub fn references_columns(&self) -> bool {
        match self {
            ScalarExpr::Col(_) => true,
            ScalarExpr::Lit(_) | ScalarExpr::Param(_) => false,
            ScalarExpr::Bin(_, l, r) => l.references_columns() || r.references_columns(),
            ScalarExpr::Not(e) => e.references_columns(),
            ScalarExpr::Func(_, args) => args.iter().any(|a| a.references_columns()),
        }
    }

    /// Collect all column references in the expression.
    pub fn collect_columns(&self, out: &mut Vec<ColRef>) {
        match self {
            ScalarExpr::Col(c) => out.push(c.clone()),
            ScalarExpr::Lit(_) | ScalarExpr::Param(_) => {}
            ScalarExpr::Bin(_, l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            ScalarExpr::Not(e) => e.collect_columns(out),
            ScalarExpr::Func(_, args) => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// Collect the names of all parameters in the expression.
    pub fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            ScalarExpr::Param(p) => out.push(p.clone()),
            ScalarExpr::Col(_) | ScalarExpr::Lit(_) => {}
            ScalarExpr::Bin(_, l, r) => {
                l.collect_params(out);
                r.collect_params(out);
            }
            ScalarExpr::Not(e) => e.collect_params(out),
            ScalarExpr::Func(_, args) => {
                for a in args {
                    a.collect_params(out);
                }
            }
        }
    }

    /// Split a conjunction into its conjuncts (flattens nested ANDs).
    pub fn conjuncts(&self) -> Vec<&ScalarExpr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
            if let ScalarExpr::Bin(BinOp::And, l, r) = e {
                walk(l, out);
                walk(r, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Infer the output type against `schema`. Returns a best-effort type;
    /// unknown functions default to `Float`.
    pub fn infer_type(&self, schema: &Schema, funcs: &FuncRegistry) -> DbResult<DataType> {
        match self {
            ScalarExpr::Col(c) => {
                let i = schema.resolve(&c.to_ref_string())?;
                Ok(schema.column(i).dtype)
            }
            ScalarExpr::Lit(v) => Ok(match v {
                Value::Int(_) => DataType::Int,
                Value::Float(_) => DataType::Float,
                Value::Str(_) => DataType::Str,
                Value::Bool(_) => DataType::Bool,
                Value::Null => DataType::Int,
            }),
            ScalarExpr::Param(_) => Ok(DataType::Int),
            ScalarExpr::Bin(op, l, r) => {
                if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                    Ok(DataType::Bool)
                } else {
                    let lt = l.infer_type(schema, funcs)?;
                    let rt = r.infer_type(schema, funcs)?;
                    if lt == DataType::Float || rt == DataType::Float {
                        Ok(DataType::Float)
                    } else {
                        Ok(lt)
                    }
                }
            }
            ScalarExpr::Not(_) => Ok(DataType::Bool),
            ScalarExpr::Func(name, _) => Ok(funcs.return_type(name).unwrap_or(DataType::Float)),
        }
    }
}

/// Evaluate a binary operator with SQL NULL semantics.
///
/// Public because the application-language interpreter shares these
/// semantics: a predicate evaluated client-side (after rule N2 pulls a
/// filter out of a query) must agree with the server's evaluation.
pub fn apply_bin_op(op: BinOp, l: &Value, r: &Value) -> DbResult<Value> {
    use BinOp::*;
    match op {
        And => match (l.as_bool(), r.as_bool()) {
            (Some(a), Some(b)) => Ok(Value::Bool(a && b)),
            _ if l.is_null() || r.is_null() => Ok(Value::Null),
            _ => Err(DbError::Type(format!("AND on {l} and {r}"))),
        },
        Or => match (l.as_bool(), r.as_bool()) {
            (Some(a), Some(b)) => Ok(Value::Bool(a || b)),
            _ if l.is_null() || r.is_null() => Ok(Value::Null),
            _ => Err(DbError::Type(format!("OR on {l} and {r}"))),
        },
        Eq | Ne | Lt | Le | Gt | Ge => {
            let ord = match l.sql_cmp(r) {
                Some(o) => o,
                None => return Ok(Value::Null), // NULL comparison is unknown
            };
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                Ne => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // String concatenation with '+', for convenience.
            if let (Value::Str(a), Value::Str(b), Add) = (l, r, op) {
                return Ok(Value::Str(format!("{a}{b}")));
            }
            match (l, r) {
                (Value::Int(a), Value::Int(b)) => Ok(match op {
                    Add => Value::Int(a.wrapping_add(*b)),
                    Sub => Value::Int(a.wrapping_sub(*b)),
                    Mul => Value::Int(a.wrapping_mul(*b)),
                    Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Int(a.wrapping_div(*b))
                        }
                    }
                    _ => unreachable!(),
                }),
                _ => {
                    let (a, b) = match (l.as_f64(), r.as_f64()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => {
                            return Err(DbError::Type(format!(
                                "arithmetic on non-numeric {l} and {r}"
                            )))
                        }
                    };
                    Ok(Value::Float(match op {
                        Add => a + b,
                        Sub => a - b,
                        Mul => a * b,
                        Div => a / b,
                        _ => unreachable!(),
                    }))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Str),
        ])
    }

    fn eval(e: &ScalarExpr, row: &Row) -> Value {
        e.eval(
            &schema(),
            row,
            &HashMap::new(),
            &FuncRegistry::with_builtins(),
        )
        .unwrap()
    }

    #[test]
    fn column_and_literal_eval() {
        let row = vec![Value::Int(5), Value::str("x")];
        assert_eq!(eval(&ScalarExpr::col("a"), &row), Value::Int(5));
        assert_eq!(eval(&ScalarExpr::lit(9i64), &row), Value::Int(9));
    }

    #[test]
    fn comparison_and_logic() {
        let row = vec![Value::Int(5), Value::str("x")];
        let e = ScalarExpr::and(
            ScalarExpr::bin(BinOp::Gt, ScalarExpr::col("a"), ScalarExpr::lit(3i64)),
            ScalarExpr::eq(ScalarExpr::col("b"), ScalarExpr::lit("x")),
        );
        assert_eq!(eval(&e, &row), Value::Bool(true));
    }

    #[test]
    fn arithmetic_int_and_float_promotion() {
        let row = vec![Value::Int(5), Value::str("x")];
        let e = ScalarExpr::bin(BinOp::Add, ScalarExpr::col("a"), ScalarExpr::lit(2i64));
        assert_eq!(eval(&e, &row), Value::Int(7));
        let e = ScalarExpr::bin(BinOp::Mul, ScalarExpr::col("a"), ScalarExpr::lit(0.5));
        assert_eq!(eval(&e, &row), Value::Float(2.5));
    }

    #[test]
    fn division_by_zero_yields_null() {
        let row = vec![Value::Int(5), Value::str("x")];
        let e = ScalarExpr::bin(BinOp::Div, ScalarExpr::col("a"), ScalarExpr::lit(0i64));
        assert_eq!(eval(&e, &row), Value::Null);
    }

    #[test]
    fn null_propagates_through_comparisons() {
        let row = vec![Value::Null, Value::str("x")];
        let e = ScalarExpr::eq(ScalarExpr::col("a"), ScalarExpr::lit(1i64));
        assert_eq!(eval(&e, &row), Value::Null);
    }

    #[test]
    fn params_bind_or_error() {
        let row = vec![Value::Int(5), Value::str("x")];
        let e = ScalarExpr::eq(ScalarExpr::col("a"), ScalarExpr::param("k"));
        let mut params = HashMap::new();
        params.insert("k".to_string(), Value::Int(5));
        let v = e
            .eval(&schema(), &row, &params, &FuncRegistry::with_builtins())
            .unwrap();
        assert_eq!(v, Value::Bool(true));
        let err = e
            .eval(
                &schema(),
                &row,
                &HashMap::new(),
                &FuncRegistry::with_builtins(),
            )
            .unwrap_err();
        assert!(matches!(err, DbError::UnboundParam(_)));
    }

    #[test]
    fn conjunct_splitting_flattens_nested_ands() {
        let e = ScalarExpr::and(
            ScalarExpr::and(
                ScalarExpr::eq(ScalarExpr::col("a"), ScalarExpr::lit(1i64)),
                ScalarExpr::eq(ScalarExpr::col("b"), ScalarExpr::lit("x")),
            ),
            ScalarExpr::bin(BinOp::Gt, ScalarExpr::col("a"), ScalarExpr::lit(0i64)),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn type_inference() {
        let funcs = FuncRegistry::with_builtins();
        let s = schema();
        assert_eq!(
            ScalarExpr::col("a").infer_type(&s, &funcs).unwrap(),
            DataType::Int
        );
        assert_eq!(
            ScalarExpr::eq(ScalarExpr::col("a"), ScalarExpr::lit(1i64))
                .infer_type(&s, &funcs)
                .unwrap(),
            DataType::Bool
        );
        assert_eq!(
            ScalarExpr::bin(BinOp::Add, ScalarExpr::col("a"), ScalarExpr::lit(0.5))
                .infer_type(&s, &funcs)
                .unwrap(),
            DataType::Float
        );
    }

    #[test]
    fn string_concat_with_plus() {
        let row = vec![Value::Int(5), Value::str("ab")];
        let e = ScalarExpr::bin(BinOp::Add, ScalarExpr::col("b"), ScalarExpr::lit("cd"));
        assert_eq!(eval(&e, &row), Value::str("abcd"));
    }

    #[test]
    fn collect_columns_and_params() {
        let e = ScalarExpr::and(
            ScalarExpr::eq(ScalarExpr::col("t.a"), ScalarExpr::param("p")),
            ScalarExpr::bin(BinOp::Lt, ScalarExpr::col("b"), ScalarExpr::lit(2i64)),
        );
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].qualifier.as_deref(), Some("t"));
        let mut params = Vec::new();
        e.collect_params(&mut params);
        assert_eq!(params, vec!["p".to_string()]);
    }
}
