//! An in-memory relational database engine.
//!
//! This crate is the substitute for the MySQL 5.7 server used in the
//! paper's evaluation. It provides everything COBRA needs from a database:
//!
//! * a catalog of tables with typed columns and declared byte widths
//!   (so result row sizes — `S_row(Q)` in the cost model — are exact),
//! * a SQL dialect (lexer + recursive-descent parser) sufficient for every
//!   query in the paper, and a printer that turns plans back into SQL,
//! * logical plans ([`plan::LogicalPlan`]) with schema derivation,
//! * a physical executor with hash joins, index lookups and hash
//!   aggregation that also accounts the *work* performed, from which the
//!   simulated server-side execution time is derived,
//! * table statistics and a cardinality/row-size/time [`estimate::Estimator`]
//!   — the component the paper "consults the database query optimizer" for
//!   (`C^F_Q`, `C^L_Q`, `N_Q`, `S_row(Q)`).
//!
//! The engine executes queries eagerly and materializes results; pipelining
//! is *modelled* in the time accounting (first-row vs. last-row work)
//! rather than implemented with iterators, which keeps the executor simple
//! while preserving the cost behaviour the experiments depend on.

pub mod catalog;
pub mod column;
pub mod error;
pub mod estimate;
pub mod exec;
pub mod expr;
pub mod feedback;
pub mod fingerprint;
pub mod func;
pub mod plan;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod value;
pub mod vexec;

pub use catalog::{Database, Table};

/// Shared, thread-safe handle to a database. Optimization only reads
/// (`.read()`); the simulated server takes the write lock for updates.
pub type SharedDb = std::sync::Arc<std::sync::RwLock<Database>>;

/// Wrap a database in a [`SharedDb`] handle.
pub fn shared(db: Database) -> SharedDb {
    std::sync::Arc::new(std::sync::RwLock::new(db))
}
pub use column::{ColumnTable, ColumnVec, NullMask};
pub use error::{DbError, DbResult};
pub use estimate::{CacheStamp, Estimate, EstimateCache, Estimator};
pub use exec::{ExecEngine, ExecWork, Executor, QueryResult};
pub use expr::{apply_bin_op, AggFunc, BinOp, ColRef, ScalarExpr};
pub use feedback::{FeedbackStore, Observation};
pub use fingerprint::{PlanFingerprint, SharedPlan, StableHasher};
pub use func::FuncRegistry;
pub use plan::LogicalPlan;
pub use schema::{Column, DataType, Schema};
pub use stats::{ColumnStats, Histogram, TableStats};
pub use value::{Row, Value};
pub use vexec::BATCH_SIZE;
