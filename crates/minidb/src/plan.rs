//! Logical query plans.
//!
//! `LogicalPlan` is the exchange format between the application layer, the
//! SQL front-end, the F-IR transformation rules, the executor and the
//! estimator. Plans are plain values with structural equality/hashing so
//! the Region DAG can deduplicate alternatives that embed identical
//! queries.

use crate::catalog::Database;
use crate::error::{DbError, DbResult};
use crate::expr::{AggFunc, ColRef, ScalarExpr};
use crate::func::FuncRegistry;
use crate::schema::{Column, DataType, Schema};

/// One item of an aggregate: function, optional argument, output name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggItem {
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument; `None` means `count(*)`.
    pub arg: Option<ScalarExpr>,
    /// Output column name.
    pub name: String,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortDir {
    Asc,
    Desc,
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogicalPlan {
    /// Scan a base table, optionally under an alias.
    Scan {
        table: String,
        alias: Option<String>,
    },
    /// Filter rows by a predicate.
    Select {
        input: Box<LogicalPlan>,
        pred: ScalarExpr,
    },
    /// Project (and compute) columns.
    Project {
        input: Box<LogicalPlan>,
        items: Vec<(ScalarExpr, String)>,
    },
    /// Inner join on an arbitrary predicate (equi-joins detected at exec).
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        pred: ScalarExpr,
    },
    /// Grouped or scalar aggregation.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<ColRef>,
        aggs: Vec<AggItem>,
    },
    /// Sort by keys.
    OrderBy {
        input: Box<LogicalPlan>,
        keys: Vec<(ColRef, SortDir)>,
    },
    /// First `n` rows.
    Limit { input: Box<LogicalPlan>, n: u64 },
}

impl LogicalPlan {
    /// Scan shorthand.
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            alias: None,
        }
    }

    /// Aliased scan shorthand.
    pub fn scan_as(table: impl Into<String>, alias: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            alias: Some(alias.into()),
        }
    }

    /// Wrap in a filter.
    pub fn select(self, pred: ScalarExpr) -> LogicalPlan {
        LogicalPlan::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// Wrap in a projection.
    pub fn project(self, items: Vec<(ScalarExpr, String)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            items,
        }
    }

    /// Join with `right` on `pred`.
    pub fn join(self, right: LogicalPlan, pred: ScalarExpr) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    /// Wrap in an aggregation.
    pub fn aggregate(self, group_by: Vec<ColRef>, aggs: Vec<AggItem>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }

    /// Wrap in a sort.
    pub fn order_by(self, keys: Vec<(ColRef, SortDir)>) -> LogicalPlan {
        LogicalPlan::OrderBy {
            input: Box::new(self),
            keys,
        }
    }

    /// Wrap in a limit.
    pub fn limit(self, n: u64) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// The base tables referenced by the plan, in occurrence order.
    pub fn base_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |p| {
            if let LogicalPlan::Scan { table, .. } = p {
                out.push(table.as_str());
            }
        });
        out
    }

    /// Visit every node of the plan tree (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a LogicalPlan)) {
        f(self);
        match self {
            LogicalPlan::Scan { .. } => {}
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::OrderBy { input, .. }
            | LogicalPlan::Limit { input, .. } => input.walk(f),
            LogicalPlan::Join { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
        }
    }

    /// Names of all parameters (`:name`) used anywhere in the plan.
    pub fn params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |p| match p {
            LogicalPlan::Select { pred, .. } | LogicalPlan::Join { pred, .. } => {
                pred.collect_params(&mut out)
            }
            LogicalPlan::Project { items, .. } => {
                for (e, _) in items {
                    e.collect_params(&mut out);
                }
            }
            LogicalPlan::Aggregate { aggs, .. } => {
                for a in aggs {
                    if let Some(e) = &a.arg {
                        e.collect_params(&mut out);
                    }
                }
            }
            _ => {}
        });
        out.sort();
        out.dedup();
        out
    }

    /// True if the plan is a bare full-table fetch (no filter, projection,
    /// or aggregation) — the shape COBRA considers prefetchable by default
    /// (§VI: "an entire relation is fetched without any filters/grouping").
    pub fn is_whole_table_fetch(&self) -> bool {
        match self {
            LogicalPlan::Scan { .. } => true,
            LogicalPlan::OrderBy { input, .. } => input.is_whole_table_fetch(),
            _ => false,
        }
    }

    /// Derive the output schema against `db`.
    pub fn output_schema(&self, db: &Database, funcs: &FuncRegistry) -> DbResult<Schema> {
        match self {
            LogicalPlan::Scan { table, alias } => {
                let t = db.table(table)?;
                let q = alias.clone().unwrap_or_else(|| table.clone());
                Ok(t.schema().with_qualifier(&q))
            }
            LogicalPlan::Select { input, .. } => input.output_schema(db, funcs),
            LogicalPlan::Project { input, items } => {
                let in_schema = input.output_schema(db, funcs)?;
                let mut cols = Vec::with_capacity(items.len());
                for (expr, name) in items {
                    let dtype = expr.infer_type(&in_schema, funcs)?;
                    let width = match expr {
                        ScalarExpr::Col(c) => {
                            let i = in_schema.resolve(&c.to_ref_string())?;
                            in_schema.column(i).byte_width
                        }
                        _ => dtype.default_width(),
                    };
                    cols.push(Column::with_width(name.clone(), dtype, width));
                }
                Ok(Schema::new(cols))
            }
            LogicalPlan::Join { left, right, .. } => {
                let l = left.output_schema(db, funcs)?;
                let r = right.output_schema(db, funcs)?;
                Ok(l.join(&r))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.output_schema(db, funcs)?;
                let mut cols = Vec::new();
                for g in group_by {
                    let i = in_schema.resolve(&g.to_ref_string())?;
                    let c = in_schema.column(i);
                    cols.push(Column::with_width(c.name.clone(), c.dtype, c.byte_width));
                }
                for a in aggs {
                    let dtype = match a.func {
                        AggFunc::Count => DataType::Int,
                        AggFunc::Avg => DataType::Float,
                        AggFunc::Sum | AggFunc::Min | AggFunc::Max => match &a.arg {
                            Some(e) => e.infer_type(&in_schema, funcs)?,
                            None => {
                                return Err(DbError::Invalid(format!(
                                    "{}(*) is only valid for count",
                                    a.func.sql()
                                )))
                            }
                        },
                    };
                    cols.push(Column::with_width(
                        a.name.clone(),
                        dtype,
                        dtype.default_width(),
                    ));
                }
                Ok(Schema::new(cols))
            }
            LogicalPlan::OrderBy { input, .. } | LogicalPlan::Limit { input, .. } => {
                input.output_schema(db, funcs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        let orders = Schema::new(vec![
            Column::new("o_id", DataType::Int),
            Column::new("o_customer_sk", DataType::Int),
            Column::with_width("o_status", DataType::Str, 10),
        ]);
        db.create_table("orders", orders).unwrap();
        let customer = Schema::new(vec![
            Column::new("c_customer_sk", DataType::Int),
            Column::new("c_birth_year", DataType::Int),
        ]);
        db.create_table("customer", customer).unwrap();
        db
    }

    #[test]
    fn scan_schema_is_qualified_by_alias() {
        let db = db();
        let funcs = FuncRegistry::with_builtins();
        let s = LogicalPlan::scan_as("orders", "o")
            .output_schema(&db, &funcs)
            .unwrap();
        assert_eq!(s.column(0).full_name(), "o.o_id");
        assert_eq!(s.row_bytes(), 8 + 8 + 10);
    }

    #[test]
    fn join_schema_concatenates_sides() {
        let db = db();
        let funcs = FuncRegistry::with_builtins();
        let plan = LogicalPlan::scan_as("orders", "o").join(
            LogicalPlan::scan_as("customer", "c"),
            ScalarExpr::eq(
                ScalarExpr::col("o.o_customer_sk"),
                ScalarExpr::col("c.c_customer_sk"),
            ),
        );
        let s = plan.output_schema(&db, &funcs).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.resolve("c.c_birth_year").unwrap(), 4);
    }

    #[test]
    fn aggregate_schema_has_groups_then_aggs() {
        let db = db();
        let funcs = FuncRegistry::with_builtins();
        let plan = LogicalPlan::scan("orders").aggregate(
            vec![ColRef::parse("o_status")],
            vec![AggItem {
                func: AggFunc::Count,
                arg: None,
                name: "cnt".to_string(),
            }],
        );
        let s = plan.output_schema(&db, &funcs).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(0).name, "o_status");
        assert_eq!(s.column(1).name, "cnt");
        assert_eq!(s.column(1).dtype, DataType::Int);
    }

    #[test]
    fn project_schema_uses_output_names_and_widths() {
        let db = db();
        let funcs = FuncRegistry::with_builtins();
        let plan = LogicalPlan::scan("orders").project(vec![
            (ScalarExpr::col("o_status"), "status".to_string()),
            (
                ScalarExpr::bin(
                    crate::expr::BinOp::Add,
                    ScalarExpr::col("o_id"),
                    ScalarExpr::lit(1i64),
                ),
                "next".to_string(),
            ),
        ]);
        let s = plan.output_schema(&db, &funcs).unwrap();
        assert_eq!(s.column(0).byte_width, 10, "width propagated from source");
        assert_eq!(s.column(1).name, "next");
    }

    #[test]
    fn base_tables_and_params() {
        let plan = LogicalPlan::scan("customer")
            .select(ScalarExpr::eq(
                ScalarExpr::col("c_customer_sk"),
                ScalarExpr::param("cust"),
            ))
            .join(LogicalPlan::scan("orders"), ScalarExpr::lit(true));
        assert_eq!(plan.base_tables(), vec!["customer", "orders"]);
        assert_eq!(plan.params(), vec!["cust".to_string()]);
    }

    #[test]
    fn whole_table_fetch_detection() {
        assert!(LogicalPlan::scan("orders").is_whole_table_fetch());
        assert!(LogicalPlan::scan("orders")
            .order_by(vec![(ColRef::parse("o_id"), SortDir::Asc)])
            .is_whole_table_fetch());
        assert!(!LogicalPlan::scan("orders")
            .select(ScalarExpr::eq(
                ScalarExpr::col("o_id"),
                ScalarExpr::lit(1i64)
            ))
            .is_whole_table_fetch());
    }

    #[test]
    fn unknown_table_in_schema_derivation_errors() {
        let db = db();
        let funcs = FuncRegistry::with_builtins();
        assert!(LogicalPlan::scan("nope")
            .output_schema(&db, &funcs)
            .is_err());
    }

    #[test]
    fn plans_hash_and_compare_structurally() {
        use std::collections::HashSet;
        let a = LogicalPlan::scan("orders").select(ScalarExpr::eq(
            ScalarExpr::col("o_id"),
            ScalarExpr::lit(Value::Int(1)),
        ));
        let b = LogicalPlan::scan("orders").select(ScalarExpr::eq(
            ScalarExpr::col("o_id"),
            ScalarExpr::lit(Value::Int(1)),
        ));
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
