//! Column and schema definitions.

use crate::error::{DbError, DbResult};
use std::fmt;

/// Data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Str,
    Bool,
}

impl DataType {
    /// Default storage width for the type when no explicit width is given.
    /// Strings get a nominal VARCHAR-ish width.
    pub fn default_width(self) -> u32 {
        match self {
            DataType::Int => 8,
            DataType::Float => 8,
            DataType::Bool => 1,
            DataType::Str => 16,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "VARCHAR",
            DataType::Bool => "BOOL",
        };
        write!(f, "{s}")
    }
}

/// One column of a schema.
///
/// `byte_width` is the *declared* on-wire width of the column. The paper
/// sizes its Order/Customer rows per the TPC-DS specification; declaring
/// widths makes `S_row(Q)` (result row size) exact and deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Column {
    /// Unqualified column name, e.g. `c_birth_year`.
    pub name: String,
    /// Optional qualifier (table name or alias), e.g. `c`.
    pub qualifier: Option<String>,
    /// Data type.
    pub dtype: DataType,
    /// Declared on-wire width in bytes.
    pub byte_width: u32,
}

impl Column {
    /// Build a column with the type's default width.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            qualifier: None,
            dtype,
            byte_width: dtype.default_width(),
        }
    }

    /// Build a column with an explicit byte width.
    pub fn with_width(name: impl Into<String>, dtype: DataType, width: u32) -> Column {
        Column {
            name: name.into(),
            qualifier: None,
            dtype,
            byte_width: width,
        }
    }

    /// Return a copy of this column tagged with a qualifier.
    pub fn qualified(mut self, q: impl Into<String>) -> Column {
        self.qualifier = Some(q.into());
        self
    }

    /// `qualifier.name` if qualified, else just the name.
    pub fn full_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Total declared row width in bytes (`S_row` for a full-row result).
    pub fn row_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.byte_width as u64).sum()
    }

    /// Resolve a possibly-qualified column reference to its index.
    ///
    /// `"c.c_birth_year"` matches qualifier and name; `"c_birth_year"`
    /// matches by name alone and errors if the name is ambiguous.
    pub fn resolve(&self, reference: &str) -> DbResult<usize> {
        if let Some((q, name)) = reference.split_once('.') {
            let mut found = None;
            for (i, c) in self.columns.iter().enumerate() {
                if c.name == name && c.qualifier.as_deref() == Some(q) {
                    if found.is_some() {
                        return Err(DbError::AmbiguousColumn(reference.to_string()));
                    }
                    found = Some(i);
                }
            }
            // Fall back to name-only matching: a projection may have
            // stripped qualifiers while the reference kept one.
            if found.is_none() {
                return self.resolve(name);
            }
            found.ok_or_else(|| DbError::UnknownColumn(reference.to_string()))
        } else {
            let mut found = None;
            for (i, c) in self.columns.iter().enumerate() {
                if c.name == reference {
                    if found.is_some() {
                        return Err(DbError::AmbiguousColumn(reference.to_string()));
                    }
                    found = Some(i);
                }
            }
            found.ok_or_else(|| DbError::UnknownColumn(reference.to_string()))
        }
    }

    /// Concatenate two schemas (used for join outputs).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Return a copy where every column carries `qualifier`.
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| c.clone().qualified(qualifier))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("o_id", DataType::Int).qualified("o"),
            Column::new("o_customer_sk", DataType::Int).qualified("o"),
            Column::with_width("c_name", DataType::Str, 30).qualified("c"),
        ])
    }

    #[test]
    fn resolve_unqualified_unique_name() {
        let s = sample();
        assert_eq!(s.resolve("o_id").unwrap(), 0);
        assert_eq!(s.resolve("c_name").unwrap(), 2);
    }

    #[test]
    fn resolve_qualified_name() {
        let s = sample();
        assert_eq!(s.resolve("o.o_customer_sk").unwrap(), 1);
        assert_eq!(s.resolve("c.c_name").unwrap(), 2);
    }

    #[test]
    fn resolve_falls_back_to_name_when_qualifier_missing() {
        // After projection the qualifier may be gone; a qualified lookup
        // should still find the uniquely-named column.
        let s = Schema::new(vec![Column::new("c_name", DataType::Str)]);
        assert_eq!(s.resolve("c.c_name").unwrap(), 0);
    }

    #[test]
    fn resolve_detects_ambiguity() {
        let s = Schema::new(vec![
            Column::new("id", DataType::Int).qualified("a"),
            Column::new("id", DataType::Int).qualified("b"),
        ]);
        assert!(matches!(s.resolve("id"), Err(DbError::AmbiguousColumn(_))));
        assert_eq!(s.resolve("a.id").unwrap(), 0);
        assert_eq!(s.resolve("b.id").unwrap(), 1);
    }

    #[test]
    fn resolve_unknown_column_errors() {
        let s = sample();
        assert!(matches!(s.resolve("nope"), Err(DbError::UnknownColumn(_))));
    }

    #[test]
    fn row_bytes_sums_declared_widths() {
        let s = sample();
        assert_eq!(s.row_bytes(), 8 + 8 + 30);
    }

    #[test]
    fn join_concatenates_preserving_order() {
        let a = Schema::new(vec![Column::new("x", DataType::Int)]);
        let b = Schema::new(vec![Column::new("y", DataType::Str)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert_eq!(j.column(0).name, "x");
        assert_eq!(j.column(1).name, "y");
    }

    #[test]
    fn with_qualifier_tags_all_columns() {
        let s = Schema::new(vec![Column::new("x", DataType::Int)]).with_qualifier("t");
        assert_eq!(s.column(0).qualifier.as_deref(), Some("t"));
        assert_eq!(s.column(0).full_name(), "t.x");
    }
}
