//! Tables and the database catalog.

use crate::column::ColumnTable;
use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::stats::TableStats;
use crate::value::{Row, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// A stored table: schema, rows, optional hash indexes, statistics.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    /// Hash indexes by column position: value → row positions.
    indexes: HashMap<usize, HashMap<Value, Vec<usize>>>,
    /// Column position of the primary key, if declared.
    primary_key: Option<usize>,
    stats: TableStats,
    /// Bumped by every operation that can change what an estimator would
    /// conclude about this table (row writes, index changes, re-analysis).
    /// [`Database::stats_epoch`] sums these, so estimate caches are
    /// invalidated by actual writes — not by merely *borrowing* a table
    /// mutably.
    version: u64,
    /// Lazily built columnar projection of `rows` — the vectorized
    /// engine's zero-copy scan source. Invalidated by row writes
    /// (insert/update), *not* by index creation or re-analysis.
    columns: Mutex<Option<Arc<ColumnTable>>>,
}

/// Cloning shares the (immutable) columnar snapshot: row writes on either
/// copy replace their own cache, never mutate it in place.
impl Clone for Table {
    fn clone(&self) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            indexes: self.indexes.clone(),
            primary_key: self.primary_key,
            stats: self.stats.clone(),
            version: self.version,
            columns: Mutex::new(self.columns.lock().unwrap().clone()),
        }
    }
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            indexes: HashMap::new(),
            primary_key: None,
            stats: TableStats::default(),
            version: 0,
            columns: Mutex::new(None),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema (columns unqualified).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The columnar projection of this table, built lazily from the row
    /// store and `Arc`-shared thereafter: scans (and `ANALYZE`) read it
    /// zero-copy; row writes invalidate it.
    pub fn columnar(&self) -> Arc<ColumnTable> {
        let mut guard = self.columns.lock().unwrap();
        if let Some(ct) = guard.as_ref() {
            return ct.clone();
        }
        let ct = Arc::new(ColumnTable::from_rows(&self.schema, &self.rows));
        *guard = Some(ct.clone());
        ct
    }

    /// Drop the cached columnar projection (called after row writes).
    fn invalidate_columns(&mut self) {
        *self.columns.get_mut().unwrap() = None;
    }

    /// Declare `column` as primary key and index it.
    pub fn set_primary_key(&mut self, column: &str) -> DbResult<()> {
        let idx = self.schema.resolve(column)?;
        self.primary_key = Some(idx);
        self.version += 1;
        self.create_index_at(idx);
        Ok(())
    }

    /// Primary-key column position, if declared.
    pub fn primary_key(&self) -> Option<usize> {
        self.primary_key
    }

    /// Insert a row; maintains indexes. The row must match the schema arity.
    pub fn insert(&mut self, row: Row) -> DbResult<()> {
        if row.len() != self.schema.len() {
            return Err(DbError::Invalid(format!(
                "row arity {} does not match schema arity {} for table {}",
                row.len(),
                self.schema.len(),
                self.name
            )));
        }
        let pos = self.rows.len();
        for (&col, index) in self.indexes.iter_mut() {
            index.entry(row[col].clone()).or_default().push(pos);
        }
        self.rows.push(row);
        self.version += 1;
        self.invalidate_columns();
        Ok(())
    }

    /// Bulk insert; clears and rebuilds indexes once at the end.
    pub fn insert_many(&mut self, rows: impl IntoIterator<Item = Row>) -> DbResult<()> {
        let cols: Vec<usize> = self.indexes.keys().copied().collect();
        for c in &cols {
            self.indexes.get_mut(c).unwrap().clear();
        }
        for row in rows {
            if row.len() != self.schema.len() {
                return Err(DbError::Invalid(format!(
                    "row arity {} does not match schema arity {} for table {}",
                    row.len(),
                    self.schema.len(),
                    self.name
                )));
            }
            self.rows.push(row);
        }
        for c in cols {
            self.rebuild_index(c);
        }
        self.version += 1;
        self.invalidate_columns();
        Ok(())
    }

    /// Create a hash index on `column`.
    pub fn create_index(&mut self, column: &str) -> DbResult<()> {
        let idx = self.schema.resolve(column)?;
        self.version += 1;
        self.create_index_at(idx);
        Ok(())
    }

    fn create_index_at(&mut self, col: usize) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.indexes.entry(col) {
            e.insert(HashMap::new());
            self.rebuild_index(col);
        }
    }

    fn rebuild_index(&mut self, col: usize) {
        let mut index: HashMap<Value, Vec<usize>> = HashMap::with_capacity(self.rows.len());
        for (pos, row) in self.rows.iter().enumerate() {
            index.entry(row[col].clone()).or_default().push(pos);
        }
        self.indexes.insert(col, index);
    }

    /// Probe the index on `col` for `key`, if one exists.
    pub fn index_lookup(&self, col: usize, key: &Value) -> Option<&[usize]> {
        self.indexes
            .get(&col)
            .map(|ix| ix.get(key).map(|v| v.as_slice()).unwrap_or(&[]))
    }

    /// True if `col` is indexed.
    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Recompute statistics from current rows, in one typed pass per
    /// column over the columnar projection (building it if needed — the
    /// usual load-then-analyze sequence warms the scan cache for free).
    pub fn analyze(&mut self) {
        let cols = self.columnar();
        self.stats = TableStats::analyze_columns(&cols);
        self.version += 1;
    }

    /// Most recent statistics (empty until [`Table::analyze`] runs).
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Update `set_col` to `value` on all rows where `key_col == key`.
    /// Returns the number of rows changed. Maintains indexes.
    pub fn update_where_eq(
        &mut self,
        key_col: usize,
        key: &Value,
        set_col: usize,
        value: Value,
    ) -> usize {
        let positions: Vec<usize> = if let Some(hits) = self.index_lookup(key_col, key) {
            hits.to_vec()
        } else {
            self.rows
                .iter()
                .enumerate()
                .filter(|(_, r)| &r[key_col] == key)
                .map(|(i, _)| i)
                .collect()
        };
        for &pos in &positions {
            self.rows[pos][set_col] = value.clone();
        }
        if !positions.is_empty() {
            self.version += 1;
            if self.indexes.contains_key(&set_col) {
                self.rebuild_index(set_col);
            }
            self.invalidate_columns();
        }
        positions.len()
    }
}

/// The catalog: a named collection of tables.
#[derive(Debug)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// Epoch contribution of catalog-level changes (table creation,
    /// explicit invalidation). [`Database::stats_epoch`] adds the
    /// per-table write versions on top, so only *actual writes* move the
    /// epoch — not read-only mutable borrows.
    epoch_base: u64,
    /// Process-unique identity of this `Database` *value* (clones get
    /// fresh ids): estimate caches stamp entries with `(instance_id,
    /// stats_epoch)` so a cache shared across databases can never serve
    /// one database's numbers for another.
    instance_id: u64,
}

/// Process-unique database instance ids, starting at 1 so the estimate
/// cache's zeroed initial stamp matches no real database.
fn next_instance_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Default for Database {
    fn default() -> Database {
        Database {
            tables: BTreeMap::new(),
            epoch_base: 0,
            instance_id: next_instance_id(),
        }
    }
}

/// Cloning copies the data but mints a fresh [`Database::instance_id`]:
/// the clone's statistics evolve independently, so cached estimates for
/// the original must never be served for it.
impl Clone for Database {
    fn clone(&self) -> Database {
        Database {
            tables: self.tables.clone(),
            epoch_base: self.epoch_base,
            instance_id: next_instance_id(),
        }
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// A counter that advances whenever catalog contents actually change:
    /// table creation, row inserts/updates, index creation, re-analysis,
    /// or an explicit [`Database::bump_stats_epoch`]. Cached estimates are
    /// valid only for the epoch they were computed in. Merely *borrowing*
    /// a table mutably ([`Database::table_mut`]) does **not** advance it,
    /// so read-only borrows keep estimate caches warm.
    pub fn stats_epoch(&self) -> u64 {
        self.epoch_base
            + self
                .tables
                .values()
                .map(|t| t.version)
                .fold(0u64, u64::wrapping_add)
    }

    /// The combined write-version of `plan`'s base tables: the slice of
    /// the catalog an observation of `plan` describes. Runtime feedback
    /// stamps observations with this value
    /// ([`crate::FeedbackStore::record_at`]) so evidence gathered before
    /// a table was rewritten is never averaged with — or served instead
    /// of — evidence about the current contents. Unlike
    /// [`Database::stats_epoch`], explicit epoch bumps do *not* move it:
    /// re-optimization sweeps invalidate estimates without discarding
    /// still-valid observations. Tables the catalog does not know
    /// contribute nothing (the plan fails elsewhere).
    pub fn plan_data_stamp(&self, plan: &crate::plan::LogicalPlan) -> u64 {
        plan.base_tables()
            .into_iter()
            .filter_map(|t| self.tables.get(t))
            .map(|t| t.version)
            .fold(0u64, u64::wrapping_add)
    }

    /// Explicitly advance the statistics epoch, invalidating every cached
    /// estimate stamped against this database. Used by adaptive
    /// re-optimization (`reoptimize_on_drift`): when runtime feedback
    /// shows the model's estimates have drifted, the bump forces fresh
    /// estimation on the next search.
    pub fn bump_stats_epoch(&mut self) {
        self.epoch_base += 1;
    }

    /// The process-unique identity of this `Database` value (see the
    /// field docs; clones get fresh ids).
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// Create a table; errors if the name is taken.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
    ) -> DbResult<&mut Table> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(DbError::Invalid(format!("table {name} already exists")));
        }
        self.epoch_base += 1;
        self.tables
            .insert(name.clone(), Table::new(name.clone(), schema));
        Ok(self.tables.get_mut(&name).unwrap())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Look up a table mutably. The borrow itself does not advance the
    /// stats epoch — the [`Table`] write operations bump their own version
    /// counters, which [`Database::stats_epoch`] reflects. A read-only
    /// mutable borrow therefore leaves estimate caches valid.
    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Iterate over tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Recompute statistics for every table.
    pub fn analyze_all(&mut self) {
        for t in self.tables.values_mut() {
            t.analyze();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};

    fn db_with_orders() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("o_id", DataType::Int),
            Column::new("o_customer_sk", DataType::Int),
        ]);
        let t = db.create_table("orders", schema).unwrap();
        t.set_primary_key("o_id").unwrap();
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::Int(i % 3)]).unwrap();
        }
        t.analyze();
        db
    }

    #[test]
    fn create_and_lookup_table() {
        let db = db_with_orders();
        assert_eq!(db.table("orders").unwrap().row_count(), 10);
        assert!(db.table("missing").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db_with_orders();
        assert!(db.create_table("orders", Schema::default()).is_err());
    }

    #[test]
    fn primary_key_index_is_maintained_on_insert() {
        let db = db_with_orders();
        let t = db.table("orders").unwrap();
        let hits = t.index_lookup(0, &Value::Int(7)).unwrap();
        assert_eq!(hits, &[7]);
    }

    #[test]
    fn secondary_index_lookup() {
        let mut db = db_with_orders();
        let t = db.table_mut("orders").unwrap();
        t.create_index("o_customer_sk").unwrap();
        let hits = t.index_lookup(1, &Value::Int(1)).unwrap();
        assert_eq!(hits, &[1, 4, 7]);
        assert_eq!(t.index_lookup(1, &Value::Int(99)).unwrap(), &[] as &[usize]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = db_with_orders();
        let t = db.table_mut("orders").unwrap();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn insert_many_rebuilds_indexes() {
        let mut db = db_with_orders();
        let t = db.table_mut("orders").unwrap();
        t.insert_many((10..20).map(|i| vec![Value::Int(i), Value::Int(i % 3)]))
            .unwrap();
        assert_eq!(t.row_count(), 20);
        let hits = t.index_lookup(0, &Value::Int(15)).unwrap();
        assert_eq!(hits, &[15]);
    }

    #[test]
    fn analyze_populates_stats() {
        let db = db_with_orders();
        let s = db.table("orders").unwrap().stats();
        assert_eq!(s.row_count, 10);
        assert_eq!(s.columns[1].ndv, 3);
    }

    #[test]
    fn read_only_table_mut_borrow_keeps_epoch() {
        // Regression: `table_mut` used to bump the stats epoch on every
        // borrow, evicting the whole estimate cache even when no write
        // happened.
        let mut db = db_with_orders();
        let e0 = db.stats_epoch();
        let _ = db.table_mut("orders").unwrap().row_count();
        let _ = db.table_mut("orders").unwrap().stats().row_count;
        assert_eq!(db.stats_epoch(), e0);
    }

    #[test]
    fn writes_advance_epoch() {
        let mut db = db_with_orders();
        let e0 = db.stats_epoch();
        db.table_mut("orders")
            .unwrap()
            .insert(vec![Value::Int(100), Value::Int(1)])
            .unwrap();
        let e1 = db.stats_epoch();
        assert!(e1 > e0, "insert is a write");
        db.table_mut("orders")
            .unwrap()
            .create_index("o_customer_sk")
            .unwrap();
        let e2 = db.stats_epoch();
        assert!(e2 > e1, "index creation changes estimation");
        db.table_mut("orders")
            .unwrap()
            .update_where_eq(0, &Value::Int(0), 1, Value::Int(9));
        let e3 = db.stats_epoch();
        assert!(e3 > e2, "update is a write");
        db.analyze_all();
        let e4 = db.stats_epoch();
        assert!(e4 > e3, "re-analysis refreshes statistics");
        db.bump_stats_epoch();
        assert!(db.stats_epoch() > e4, "explicit invalidation");
    }

    #[test]
    fn columnar_cache_is_shared_until_a_row_write() {
        let mut db = db_with_orders();
        let t = db.table_mut("orders").unwrap();
        let c1 = t.columnar();
        let c2 = t.columnar();
        assert!(Arc::ptr_eq(&c1, &c2), "repeated scans share one snapshot");
        // Index creation and re-analysis keep the snapshot.
        t.create_index("o_customer_sk").unwrap();
        t.analyze();
        assert!(Arc::ptr_eq(&c1, &t.columnar()));
        // A row write invalidates it.
        t.insert(vec![Value::Int(10), Value::Int(1)]).unwrap();
        let c3 = t.columnar();
        assert!(!Arc::ptr_eq(&c1, &c3));
        assert_eq!(c3.len, 11);
        assert_eq!(c3.row(10), vec![Value::Int(10), Value::Int(1)]);
        // Updates invalidate too.
        t.update_where_eq(0, &Value::Int(10), 1, Value::Int(2));
        assert_eq!(t.columnar().row(10), vec![Value::Int(10), Value::Int(2)]);
    }

    #[test]
    fn columnar_analyze_matches_row_analyze() {
        let db = db_with_orders();
        let t = db.table("orders").unwrap();
        let row_stats = TableStats::analyze(t.rows(), t.schema().len());
        assert_eq!(t.stats(), &row_stats);
    }

    #[test]
    fn update_where_eq_changes_matching_rows() {
        let mut db = db_with_orders();
        let t = db.table_mut("orders").unwrap();
        let n = t.update_where_eq(1, &Value::Int(1), 1, Value::Int(42));
        assert_eq!(n, 3);
        let count42 = t.rows().iter().filter(|r| r[1] == Value::Int(42)).count();
        assert_eq!(count42, 3);
    }
}
