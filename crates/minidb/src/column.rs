//! Columnar table storage: typed per-column vectors with null bitmaps.
//!
//! A [`ColumnTable`] is the column-oriented projection of one table's
//! rows: one [`ColumnVec`] per schema column, each a typed vector
//! (`Vec<i64>`, `Vec<f64>`, `Vec<String>`, `Vec<bool>`) paired with a
//! packed null bitmap. Columns whose stored values do not all match the
//! declared type fall back to a [`ColumnVec::Mixed`] vector of [`Value`]s,
//! so the columnar form always round-trips the row form exactly —
//! [`ColumnVec::get`] returns precisely the `Value` that was inserted.
//!
//! The vectorized executor ([`crate::vexec`]) scans these columns
//! zero-copy (each column is `Arc`-shared out of the table's cache) and
//! `ANALYZE` ([`crate::stats::TableStats::analyze_columns`]) computes
//! statistics from them in one typed pass per column.

use crate::schema::{DataType, Schema};
use crate::value::{Row, Value};
use std::sync::Arc;

/// A packed null bitmap: bit set ⇒ the row is NULL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullMask {
    bits: Vec<u64>,
    len: usize,
    count: u64,
}

impl NullMask {
    /// An all-valid mask for `len` rows.
    pub fn new(len: usize) -> NullMask {
        NullMask {
            bits: vec![0; len.div_ceil(64)],
            len,
            count: 0,
        }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> u64 {
        self.count
    }

    /// Mark row `i` as NULL.
    pub fn set_null(&mut self, i: usize) {
        let word = &mut self.bits[i / 64];
        let bit = 1u64 << (i % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.count += 1;
        }
    }

    /// True when row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }
}

/// One column of a [`ColumnTable`]: a typed vector plus null bitmap, or a
/// `Mixed` fallback for columns whose values don't share the declared
/// type. At NULL positions the typed `data` holds a type default (`0`,
/// `0.0`, `""`, `false`); the mask is authoritative.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVec {
    /// 64-bit integers.
    Int {
        /// Values (default 0 at NULL positions).
        data: Vec<i64>,
        /// Null bitmap; `None` when the column has no NULLs.
        nulls: Option<NullMask>,
    },
    /// 64-bit floats.
    Float {
        /// Values (default 0.0 at NULL positions).
        data: Vec<f64>,
        /// Null bitmap; `None` when the column has no NULLs.
        nulls: Option<NullMask>,
    },
    /// UTF-8 strings.
    Str {
        /// Values (empty string at NULL positions).
        data: Vec<String>,
        /// Null bitmap; `None` when the column has no NULLs.
        nulls: Option<NullMask>,
    },
    /// Booleans.
    Bool {
        /// Values (false at NULL positions).
        data: Vec<bool>,
        /// Null bitmap; `None` when the column has no NULLs.
        nulls: Option<NullMask>,
    },
    /// Fallback for columns mixing value types: exact stored values.
    Mixed(Vec<Value>),
}

impl ColumnVec {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int { data, .. } => data.len(),
            ColumnVec::Float { data, .. } => data.len(),
            ColumnVec::Str { data, .. } => data.len(),
            ColumnVec::Bool { data, .. } => data.len(),
            ColumnVec::Mixed(v) => v.len(),
        }
    }

    /// True when the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnVec::Int { nulls, .. }
            | ColumnVec::Float { nulls, .. }
            | ColumnVec::Str { nulls, .. }
            | ColumnVec::Bool { nulls, .. } => nulls.as_ref().is_some_and(|m| m.is_null(i)),
            ColumnVec::Mixed(v) => v[i].is_null(),
        }
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> u64 {
        match self {
            ColumnVec::Int { nulls, .. }
            | ColumnVec::Float { nulls, .. }
            | ColumnVec::Str { nulls, .. }
            | ColumnVec::Bool { nulls, .. } => nulls.as_ref().map_or(0, |m| m.null_count()),
            ColumnVec::Mixed(v) => v.iter().filter(|x| x.is_null()).count() as u64,
        }
    }

    /// The value at row `i`, exactly as stored in the row form.
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int { data, nulls } => {
                if nulls.as_ref().is_some_and(|m| m.is_null(i)) {
                    Value::Null
                } else {
                    Value::Int(data[i])
                }
            }
            ColumnVec::Float { data, nulls } => {
                if nulls.as_ref().is_some_and(|m| m.is_null(i)) {
                    Value::Null
                } else {
                    Value::Float(data[i])
                }
            }
            ColumnVec::Str { data, nulls } => {
                if nulls.as_ref().is_some_and(|m| m.is_null(i)) {
                    Value::Null
                } else {
                    Value::Str(data[i].clone())
                }
            }
            ColumnVec::Bool { data, nulls } => {
                if nulls.as_ref().is_some_and(|m| m.is_null(i)) {
                    Value::Null
                } else {
                    Value::Bool(data[i])
                }
            }
            ColumnVec::Mixed(v) => v[i].clone(),
        }
    }

    /// Build one column from row storage. Tries the declared `dtype`
    /// first; any non-NULL value of a different type demotes the whole
    /// column to [`ColumnVec::Mixed`] (preserving values exactly).
    pub fn from_rows(rows: &[Row], col: usize, dtype: DataType) -> ColumnVec {
        fn typed<T: Default>(
            rows: &[Row],
            col: usize,
            mut extract: impl FnMut(&Value) -> Option<T>,
        ) -> Option<(Vec<T>, Option<NullMask>)> {
            let mut data = Vec::with_capacity(rows.len());
            let mut nulls: Option<NullMask> = None;
            for (i, row) in rows.iter().enumerate() {
                match &row[col] {
                    Value::Null => {
                        nulls
                            .get_or_insert_with(|| NullMask::new(rows.len()))
                            .set_null(i);
                        data.push(T::default());
                    }
                    v => match extract(v) {
                        Some(x) => data.push(x),
                        None => return None,
                    },
                }
            }
            Some((data, nulls))
        }

        let built = match dtype {
            DataType::Int => {
                typed(rows, col, |v| v.as_i64()).map(|(data, nulls)| ColumnVec::Int { data, nulls })
            }
            DataType::Float => typed(rows, col, |v| match v {
                Value::Float(f) => Some(*f),
                _ => None,
            })
            .map(|(data, nulls)| ColumnVec::Float { data, nulls }),
            DataType::Str => typed(rows, col, |v| v.as_str().map(|s| s.to_string()))
                .map(|(data, nulls)| ColumnVec::Str { data, nulls }),
            DataType::Bool => typed(rows, col, |v| v.as_bool())
                .map(|(data, nulls)| ColumnVec::Bool { data, nulls }),
        };
        built.unwrap_or_else(|| ColumnVec::Mixed(rows.iter().map(|r| r[col].clone()).collect()))
    }

    /// Build a column from already-materialized values (used for
    /// intermediate results): typed when every non-NULL value shares one
    /// type, `Mixed` otherwise.
    pub fn from_values(values: Vec<Value>) -> ColumnVec {
        // Pick the candidate type from the first non-null value.
        let dtype = values.iter().find(|v| !v.is_null()).map(|v| match v {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Bool(_) => DataType::Bool,
            Value::Null => unreachable!(),
        });
        let Some(dtype) = dtype else {
            // All NULL (or empty): an Int column that is entirely null.
            let mut nulls = NullMask::new(values.len());
            for i in 0..values.len() {
                nulls.set_null(i);
            }
            return ColumnVec::Int {
                data: vec![0; values.len()],
                nulls: if values.is_empty() { None } else { Some(nulls) },
            };
        };
        let homogeneous = values.iter().all(|v| {
            v.is_null()
                || matches!(
                    (v, dtype),
                    (Value::Int(_), DataType::Int)
                        | (Value::Float(_), DataType::Float)
                        | (Value::Str(_), DataType::Str)
                        | (Value::Bool(_), DataType::Bool)
                )
        });
        if !homogeneous {
            return ColumnVec::Mixed(values);
        }
        let n = values.len();
        let mut nulls: Option<NullMask> = None;
        macro_rules! build {
            ($variant:ident, $ty:ty, $default:expr, $extract:expr) => {{
                let mut data: Vec<$ty> = Vec::with_capacity(n);
                for (i, v) in values.into_iter().enumerate() {
                    if v.is_null() {
                        nulls.get_or_insert_with(|| NullMask::new(n)).set_null(i);
                        data.push($default);
                    } else {
                        #[allow(clippy::redundant_closure_call)]
                        data.push(($extract)(v));
                    }
                }
                ColumnVec::$variant { data, nulls }
            }};
        }
        match dtype {
            DataType::Int => build!(Int, i64, 0, |v: Value| match v {
                Value::Int(x) => x,
                _ => unreachable!(),
            }),
            DataType::Float => build!(Float, f64, 0.0, |v: Value| match v {
                Value::Float(x) => x,
                _ => unreachable!(),
            }),
            DataType::Str => build!(Str, String, String::new(), |v: Value| match v {
                Value::Str(x) => x,
                _ => unreachable!(),
            }),
            DataType::Bool => build!(Bool, bool, false, |v: Value| match v {
                Value::Bool(x) => x,
                _ => unreachable!(),
            }),
        }
    }

    /// Gather rows `ids` into a new dense column of the same type.
    pub fn gather(&self, ids: &[u32]) -> ColumnVec {
        match self {
            ColumnVec::Mixed(v) => {
                ColumnVec::Mixed(ids.iter().map(|&i| v[i as usize].clone()).collect())
            }
            _ => {
                let mut nulls: Option<NullMask> = None;
                if ids.iter().any(|&i| self.is_null(i as usize)) {
                    let mut m = NullMask::new(ids.len());
                    for (out, &i) in ids.iter().enumerate() {
                        if self.is_null(i as usize) {
                            m.set_null(out);
                        }
                    }
                    nulls = Some(m);
                }
                match self {
                    ColumnVec::Int { data, .. } => ColumnVec::Int {
                        data: ids.iter().map(|&i| data[i as usize]).collect(),
                        nulls,
                    },
                    ColumnVec::Float { data, .. } => ColumnVec::Float {
                        data: ids.iter().map(|&i| data[i as usize]).collect(),
                        nulls,
                    },
                    ColumnVec::Str { data, .. } => ColumnVec::Str {
                        data: ids.iter().map(|&i| data[i as usize].clone()).collect(),
                        nulls,
                    },
                    ColumnVec::Bool { data, .. } => ColumnVec::Bool {
                        data: ids.iter().map(|&i| data[i as usize]).collect(),
                        nulls,
                    },
                    ColumnVec::Mixed(_) => unreachable!(),
                }
            }
        }
    }
}

/// The columnar projection of one table: one `Arc`-shared [`ColumnVec`]
/// per schema column. Scans clone the `Arc`s, never the data.
#[derive(Debug, Clone)]
pub struct ColumnTable {
    /// One column per schema position.
    pub cols: Vec<Arc<ColumnVec>>,
    /// Row count.
    pub len: usize,
}

impl ColumnTable {
    /// Build the columnar projection of `rows` under `schema`.
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> ColumnTable {
        let cols = (0..schema.len())
            .map(|c| Arc::new(ColumnVec::from_rows(rows, c, schema.column(c).dtype)))
            .collect();
        ColumnTable {
            cols,
            len: rows.len(),
        }
    }

    /// Re-materialize row `i` (exactly the values that were stored).
    pub fn row(&self, i: usize) -> Row {
        self.cols.iter().map(|c| c.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("f", DataType::Float),
            Column::with_width("s", DataType::Str, 8),
            Column::new("b", DataType::Bool),
        ])
    }

    fn rows() -> Vec<Row> {
        vec![
            vec![
                Value::Int(1),
                Value::Float(1.5),
                Value::str("x"),
                Value::Bool(true),
            ],
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
            vec![
                Value::Int(-3),
                Value::Float(f64::NAN),
                Value::str(""),
                Value::Bool(false),
            ],
        ]
    }

    #[test]
    fn round_trips_rows_exactly() {
        let data = rows();
        let ct = ColumnTable::from_rows(&schema(), &data);
        assert_eq!(ct.len, 3);
        for (i, row) in data.iter().enumerate() {
            assert_eq!(&ct.row(i), row);
        }
    }

    #[test]
    fn null_bitmap_counts_and_probes() {
        let data = rows();
        let ct = ColumnTable::from_rows(&schema(), &data);
        for c in &ct.cols {
            assert_eq!(c.null_count(), 1);
            assert!(!c.is_null(0));
            assert!(c.is_null(1));
            assert!(!c.is_null(2));
        }
    }

    #[test]
    fn mixed_column_falls_back_and_round_trips() {
        let s = Schema::new(vec![Column::new("a", DataType::Int)]);
        let data = vec![
            vec![Value::Int(1)],
            vec![Value::str("oops")],
            vec![Value::Null],
        ];
        let ct = ColumnTable::from_rows(&s, &data);
        assert!(matches!(&*ct.cols[0], ColumnVec::Mixed(_)));
        for (i, row) in data.iter().enumerate() {
            assert_eq!(&ct.row(i), row);
        }
    }

    #[test]
    fn gather_preserves_values_and_nulls() {
        let data = rows();
        let ct = ColumnTable::from_rows(&schema(), &data);
        let g = ct.cols[0].gather(&[2, 1, 0, 2]);
        assert_eq!(g.get(0), Value::Int(-3));
        assert_eq!(g.get(1), Value::Null);
        assert_eq!(g.get(2), Value::Int(1));
        assert_eq!(g.get(3), Value::Int(-3));
        // Empty gather of every type.
        for c in &ct.cols {
            assert_eq!(c.gather(&[]).len(), 0);
        }
    }

    #[test]
    fn from_values_types_homogeneous_columns() {
        let c = ColumnVec::from_values(vec![Value::Int(1), Value::Null, Value::Int(2)]);
        assert!(matches!(c, ColumnVec::Int { .. }));
        assert_eq!(c.get(1), Value::Null);
        let c = ColumnVec::from_values(vec![Value::Int(1), Value::Float(2.0)]);
        assert!(matches!(c, ColumnVec::Mixed(_)));
        let c = ColumnVec::from_values(vec![Value::Null, Value::Null]);
        assert_eq!(c.get(0), Value::Null);
        assert_eq!(c.null_count(), 2);
        let c = ColumnVec::from_values(Vec::new());
        assert!(c.is_empty());
    }

    #[test]
    fn nan_floats_round_trip_bit_exactly() {
        let c = ColumnVec::from_values(vec![Value::Float(f64::NAN), Value::Float(-0.0)]);
        assert_eq!(c.get(0), Value::Float(f64::NAN)); // Eq via total order
        match c.get(1) {
            Value::Float(f) => assert_eq!(f.to_bits(), (-0.0f64).to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }
}
