//! Runtime values and rows.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single scalar value stored in the database or produced by a query.
///
/// `Value` implements `Eq`, `Ord` and `Hash` (floats via `total_cmp` /
/// `to_bits`) so it can key hash joins, group-by tables and client-side
/// caches directly.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Compares equal to itself for grouping purposes; predicates
    /// treat comparisons with NULL as false (see [`Value::sql_cmp`]).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Shorthand for building a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Coerce to `f64` for arithmetic, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Coerce to `i64` if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Coerce to `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison semantics: `None` when either side is NULL (unknown),
    /// numeric cross-type comparison via `f64`, otherwise same-type order.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.total_cmp(b)),
            (Int(a), Float(b)) => Some((*a as f64).total_cmp(b)),
            (Float(a), Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Rank used for deterministic total ordering across types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// In-memory size used when declared column widths are unavailable.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len() as u64,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: by type rank, then value. Int/Float cross-compare
    /// numerically so that `Int(1) == Float(1.0)` holds for grouping keys
    /// would be surprising — instead the ranks keep them distinct, and the
    /// engine normalizes numeric types per column at insert time.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A database row: one value per schema column.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_and_hash_agree_for_floats() {
        let a = Value::Float(1.5);
        let b = Value::Float(1.5);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn nan_is_self_equal_under_total_order() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a.cmp(&b), Ordering::Equal);
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_cross_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn ordering_is_total_across_types() {
        let mut vals = [
            Value::str("z"),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert!(matches!(vals[4], Value::Str(_)));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::str("s").as_f64(), None);
    }
}
