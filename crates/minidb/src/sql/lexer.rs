//! SQL tokenizer.

use crate::error::{DbError, DbResult};

/// Token kinds produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Named parameter `:name`.
    Param(String),
    /// Punctuation / operator.
    Symbol(&'static str),
    /// End of input.
    Eof,
}

/// A token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> DbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '(' | ')' | ',' | '.' | '+' | '-' | '*' | '/' => {
                let sym = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    _ => "/",
                };
                tokens.push(Token {
                    kind: TokenKind::Symbol(sym),
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Symbol("="),
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Symbol("<="),
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Symbol("<>"),
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Symbol("<"),
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Symbol(">="),
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Symbol(">"),
                        offset: start,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Symbol("<>"),
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(DbError::Parse(format!("unexpected '!' at offset {start}")));
                }
            }
            ':' => {
                i += 1;
                let name_start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if i == name_start {
                    return Err(DbError::Parse(format!(
                        "expected parameter name after ':' at offset {start}"
                    )));
                }
                tokens.push(Token {
                    kind: TokenKind::Param(input[name_start..i].to_string()),
                    offset: start,
                });
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(DbError::Parse(format!(
                            "unterminated string literal starting at offset {start}"
                        )));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Multi-byte UTF-8 safe: find char at byte i.
                        let ch = input[i..].chars().next().unwrap();
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            _ if c.is_ascii_digit() => {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse().map_err(|e| {
                            DbError::Parse(format!("bad float literal {text}: {e}"))
                        })?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|e| DbError::Parse(format!("bad int literal {text}: {e}")))?,
                    )
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(DbError::Parse(format!(
                    "unexpected character {other:?} at offset {start}"
                )));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_basic_query() {
        let k = kinds("select * from t");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Symbol("*"),
                TokenKind::Ident("from".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_operators() {
        let k = kinds("a <= 1 and b <> 2 or c != 3");
        assert!(k.contains(&TokenKind::Symbol("<=")));
        // both <> and != normalize to <>
        assert_eq!(
            k.iter().filter(|t| **t == TokenKind::Symbol("<>")).count(),
            2
        );
    }

    #[test]
    fn tokenizes_numbers() {
        let k = kinds("42 3.25");
        assert_eq!(k[0], TokenKind::Int(42));
        assert_eq!(k[1], TokenKind::Float(3.25));
    }

    #[test]
    fn tokenizes_strings_with_escapes() {
        let k = kinds("'it''s'");
        assert_eq!(k[0], TokenKind::Str("it's".into()));
    }

    #[test]
    fn tokenizes_params() {
        let k = kinds(":cust_id");
        assert_eq!(k[0], TokenKind::Param("cust_id".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn bare_colon_errors() {
        assert!(tokenize("a = :").is_err());
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(tokenize("a # b").is_err());
    }

    #[test]
    fn qualified_names_tokenize_as_ident_dot_ident() {
        let k = kinds("o.o_id");
        assert_eq!(
            k[..3],
            [
                TokenKind::Ident("o".into()),
                TokenKind::Symbol("."),
                TokenKind::Ident("o_id".into()),
            ]
        );
    }
}
