//! SQL front-end: lexer, recursive-descent parser, and plan-to-SQL printer.
//!
//! The dialect covers everything the paper's programs use:
//! `SELECT`-lists with expressions, aliases and aggregates, `FROM` with
//! inner `JOIN … ON` chains and comma cross-joins, `WHERE`, `GROUP BY`,
//! `ORDER BY`, `LIMIT`, named parameters (`:name`), scalar function calls,
//! and the usual literal/operator zoo.
//!
//! ```
//! use minidb::sql;
//! let plan = sql::parse(
//!     "select c.c_birth_year, count(*) as n \
//!      from orders o join customer c on o.o_customer_sk = c.c_customer_sk \
//!      where o.o_amount > 10 group by c.c_birth_year order by c.c_birth_year",
//! ).unwrap();
//! let text = sql::print(&plan);
//! // Printing is stable: parse(print(p)) prints to the same text.
//! assert_eq!(sql::print(&sql::parse(&text).unwrap()), text);
//! ```

mod lexer;
mod parser;
mod printer;

pub use lexer::{tokenize, Token, TokenKind};
pub use parser::parse;
pub use printer::{print, print_expr};
