//! Recursive-descent SQL parser producing [`LogicalPlan`]s.

use super::lexer::{tokenize, Token, TokenKind};
use crate::error::{DbError, DbResult};
use crate::expr::{AggFunc, BinOp, ColRef, ScalarExpr};
use crate::plan::{AggItem, LogicalPlan, SortDir};
use crate::value::Value;

/// Parse a SQL `SELECT` statement into a logical plan.
pub fn parse(sql: &str) -> DbResult<LogicalPlan> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let plan = p.query()?;
    p.expect_eof()?;
    Ok(plan)
}

/// One item of the select list, before aggregate/projection classification.
enum SelectItem {
    Star,
    Expr {
        expr: ScalarExpr,
        alias: Option<String>,
    },
    Agg {
        func: AggFunc,
        arg: Option<ScalarExpr>,
        alias: Option<String>,
    },
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> DbError {
        DbError::Parse(format!(
            "{} (at offset {})",
            msg.into(),
            self.tokens[self.pos].offset
        ))
    }

    /// Case-insensitive keyword check without consuming.
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw:?}, found {:?}", self.peek())))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), TokenKind::Symbol(s) if *s == sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> DbResult<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.err(format!("expected {sym:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> DbResult<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Keywords that terminate an expression / item context.
    fn at_clause_boundary(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Eof | TokenKind::Symbol(")") | TokenKind::Symbol(",")
        ) || [
            "from", "where", "group", "order", "limit", "join", "on", "as", "asc", "desc", "and",
            "or",
        ]
        .iter()
        .any(|kw| self.peek_kw(kw))
    }

    // ---- grammar ----

    fn query(&mut self) -> DbResult<LogicalPlan> {
        self.expect_kw("select")?;
        let items = self.select_list()?;
        self.expect_kw("from")?;
        let mut plan = self.table_ref()?;

        // JOIN chains and comma cross-joins.
        loop {
            if self.eat_kw("join") {
                let right = self.table_ref()?;
                self.expect_kw("on")?;
                let pred = self.expr()?;
                plan = plan.join(right, pred);
            } else if self.eat_symbol(",") {
                let right = self.table_ref()?;
                plan = plan.join(right, ScalarExpr::lit(true));
            } else {
                break;
            }
        }

        if self.eat_kw("where") {
            let pred = self.expr()?;
            plan = plan.select(pred);
        }

        let group_by = if self.eat_kw("group") {
            self.expect_kw("by")?;
            let mut cols = vec![self.colref()?];
            while self.eat_symbol(",") {
                cols.push(self.colref()?);
            }
            Some(cols)
        } else {
            None
        };

        plan = self.apply_select_items(plan, items, group_by)?;

        if self.eat_kw("order") {
            self.expect_kw("by")?;
            let mut keys = Vec::new();
            loop {
                let c = self.colref()?;
                let dir = if self.eat_kw("desc") {
                    SortDir::Desc
                } else {
                    self.eat_kw("asc");
                    SortDir::Asc
                };
                keys.push((c, dir));
                if !self.eat_symbol(",") {
                    break;
                }
            }
            plan = plan.order_by(keys);
        }

        if self.eat_kw("limit") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => plan = plan.limit(n as u64),
                other => return Err(self.err(format!("expected LIMIT count, found {other:?}"))),
            }
        }

        Ok(plan)
    }

    fn select_list(&mut self) -> DbResult<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> DbResult<SelectItem> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Star);
        }
        // Aggregate call?
        if let TokenKind::Ident(name) = self.peek() {
            let agg = match name.to_ascii_lowercase().as_str() {
                "count" => Some(AggFunc::Count),
                "sum" => Some(AggFunc::Sum),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                "avg" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(func) = agg {
                // Only treat as aggregate if followed by '('.
                if matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::Symbol("("))
                ) {
                    self.bump(); // name
                    self.bump(); // (
                    let arg = if self.eat_symbol("*") {
                        if func != AggFunc::Count {
                            return Err(self.err("only count(*) supports *"));
                        }
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_symbol(")")?;
                    let alias = self.optional_alias()?;
                    return Ok(SelectItem::Agg { func, arg, alias });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn optional_alias(&mut self) -> DbResult<Option<String>> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident()?));
        }
        // Bare alias: an identifier that is not a clause keyword.
        if matches!(self.peek(), TokenKind::Ident(_)) && !self.at_clause_boundary() {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    fn table_ref(&mut self) -> DbResult<LogicalPlan> {
        let table = self.ident()?;
        let aliased = self.eat_kw("as")
            || (matches!(self.peek(), TokenKind::Ident(_)) && !self.at_clause_boundary());
        let alias = if aliased { Some(self.ident()?) } else { None };
        Ok(LogicalPlan::Scan { table, alias })
    }

    fn colref(&mut self) -> DbResult<ColRef> {
        let first = self.ident()?;
        if self.eat_symbol(".") {
            let second = self.ident()?;
            Ok(ColRef {
                qualifier: Some(first),
                name: second,
            })
        } else {
            Ok(ColRef {
                qualifier: None,
                name: first,
            })
        }
    }

    /// Turn the select list into Project / Aggregate nodes.
    fn apply_select_items(
        &self,
        plan: LogicalPlan,
        items: Vec<SelectItem>,
        group_by: Option<Vec<ColRef>>,
    ) -> DbResult<LogicalPlan> {
        let has_agg = items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
        if let Some(group_by) = group_by {
            // GROUP BY present: non-agg items must be column refs.
            let mut aggs = Vec::new();
            for item in &items {
                match item {
                    SelectItem::Agg { func, arg, alias } => aggs.push(AggItem {
                        func: *func,
                        arg: arg.clone(),
                        name: alias
                            .clone()
                            .unwrap_or_else(|| default_agg_name(*func, arg)),
                    }),
                    SelectItem::Expr {
                        expr: ScalarExpr::Col(_),
                        ..
                    } => {}
                    SelectItem::Star => {
                        return Err(DbError::Parse("cannot mix * with GROUP BY".into()))
                    }
                    SelectItem::Expr { .. } => {
                        return Err(DbError::Parse(
                            "non-column select item with GROUP BY".into(),
                        ))
                    }
                }
            }
            return Ok(plan.aggregate(group_by, aggs));
        }
        if has_agg {
            // Scalar aggregation (no GROUP BY): all items must be aggregates.
            let mut aggs = Vec::new();
            for item in &items {
                match item {
                    SelectItem::Agg { func, arg, alias } => aggs.push(AggItem {
                        func: *func,
                        arg: arg.clone(),
                        name: alias
                            .clone()
                            .unwrap_or_else(|| default_agg_name(*func, arg)),
                    }),
                    _ => {
                        return Err(DbError::Parse(
                            "mixing aggregates and plain columns requires GROUP BY".into(),
                        ))
                    }
                }
            }
            return Ok(plan.aggregate(Vec::new(), aggs));
        }
        // Plain projection, unless it's a bare '*'.
        if items.len() == 1 && matches!(items[0], SelectItem::Star) {
            return Ok(plan);
        }
        let mut proj = Vec::new();
        for item in items {
            match item {
                SelectItem::Star => {
                    return Err(DbError::Parse(
                        "'*' cannot be mixed with other items".into(),
                    ))
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.unwrap_or_else(|| default_expr_name(&expr));
                    proj.push((expr, name));
                }
                SelectItem::Agg { .. } => unreachable!("handled above"),
            }
        }
        Ok(plan.project(proj))
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> DbResult<ScalarExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<ScalarExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = ScalarExpr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> DbResult<ScalarExpr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = ScalarExpr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> DbResult<ScalarExpr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(ScalarExpr::Not(Box::new(inner)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> DbResult<ScalarExpr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Symbol("=") => Some(BinOp::Eq),
            TokenKind::Symbol("<>") => Some(BinOp::Ne),
            TokenKind::Symbol("<") => Some(BinOp::Lt),
            TokenKind::Symbol("<=") => Some(BinOp::Le),
            TokenKind::Symbol(">") => Some(BinOp::Gt),
            TokenKind::Symbol(">=") => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(ScalarExpr::bin(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> DbResult<ScalarExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol("+") => BinOp::Add,
                TokenKind::Symbol("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = ScalarExpr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> DbResult<ScalarExpr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol("*") => BinOp::Mul,
                TokenKind::Symbol("/") => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = ScalarExpr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> DbResult<ScalarExpr> {
        if self.eat_symbol("-") {
            let inner = self.unary_expr()?;
            return Ok(ScalarExpr::bin(BinOp::Sub, ScalarExpr::lit(0i64), inner));
        }
        self.atom()
    }

    fn atom(&mut self) -> DbResult<ScalarExpr> {
        match self.bump() {
            TokenKind::Int(n) => Ok(ScalarExpr::lit(n)),
            TokenKind::Float(f) => Ok(ScalarExpr::lit(f)),
            TokenKind::Str(s) => Ok(ScalarExpr::Lit(Value::Str(s))),
            TokenKind::Param(p) => Ok(ScalarExpr::Param(p)),
            TokenKind::Symbol("(") => {
                let inner = self.expr()?;
                self.expect_symbol(")")?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                let lower = name.to_ascii_lowercase();
                if lower == "true" {
                    return Ok(ScalarExpr::lit(true));
                }
                if lower == "false" {
                    return Ok(ScalarExpr::lit(false));
                }
                if lower == "null" {
                    return Ok(ScalarExpr::Lit(Value::Null));
                }
                // Function call?
                if matches!(self.peek(), TokenKind::Symbol("(")) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_symbol(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_symbol(",") {
                                break;
                            }
                        }
                        self.expect_symbol(")")?;
                    }
                    return Ok(ScalarExpr::Func(lower, args));
                }
                // Qualified column?
                if self.eat_symbol(".") {
                    let col = self.ident()?;
                    return Ok(ScalarExpr::Col(ColRef {
                        qualifier: Some(name),
                        name: col,
                    }));
                }
                Ok(ScalarExpr::Col(ColRef {
                    qualifier: None,
                    name,
                }))
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

/// Deterministic default name for an unaliased aggregate.
fn default_agg_name(func: AggFunc, arg: &Option<ScalarExpr>) -> String {
    match arg {
        None => format!("{}_all", func.sql()),
        Some(ScalarExpr::Col(c)) => format!("{}_{}", func.sql(), c.name),
        Some(_) => format!("{}_expr", func.sql()),
    }
}

/// Deterministic default name for an unaliased projection.
fn default_expr_name(expr: &ScalarExpr) -> String {
    match expr {
        ScalarExpr::Col(c) => c.name.clone(),
        _ => "expr".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_star_query() {
        let p = parse("select * from orders").unwrap();
        assert_eq!(p, LogicalPlan::scan("orders"));
    }

    #[test]
    fn parses_alias_and_join() {
        let p =
            parse("select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk")
                .unwrap();
        match p {
            LogicalPlan::Join { left, right, pred } => {
                assert_eq!(*left, LogicalPlan::scan_as("orders", "o"));
                assert_eq!(*right, LogicalPlan::scan_as("customer", "c"));
                assert!(matches!(pred, ScalarExpr::Bin(BinOp::Eq, _, _)));
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn parses_where_group_order_limit() {
        let p = parse(
            "select o_status, count(*) as n from orders where o_amount > 5 \
             group by o_status order by o_status desc limit 3",
        )
        .unwrap();
        // Shape: Limit(OrderBy(Aggregate(Select(Scan))))
        let LogicalPlan::Limit { input, n } = p else {
            panic!("limit")
        };
        assert_eq!(n, 3);
        let LogicalPlan::OrderBy { input, keys } = *input else {
            panic!("order")
        };
        assert_eq!(keys[0].1, SortDir::Desc);
        let LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } = *input
        else {
            panic!("agg")
        };
        assert_eq!(group_by.len(), 1);
        assert_eq!(aggs[0].name, "n");
        assert!(matches!(*input, LogicalPlan::Select { .. }));
    }

    #[test]
    fn parses_scalar_aggregate() {
        let p = parse("select sum(sale_amt) from sales").unwrap();
        let LogicalPlan::Aggregate { group_by, aggs, .. } = p else {
            panic!()
        };
        assert!(group_by.is_empty());
        assert_eq!(aggs[0].func, AggFunc::Sum);
        assert_eq!(aggs[0].name, "sum_sale_amt");
    }

    #[test]
    fn parses_projection_with_aliases() {
        let p = parse("select o_id, o_amount * 2 as double_amount from orders").unwrap();
        let LogicalPlan::Project { items, .. } = p else {
            panic!()
        };
        assert_eq!(items[0].1, "o_id");
        assert_eq!(items[1].1, "double_amount");
    }

    #[test]
    fn parses_params_and_functions() {
        let p =
            parse("select * from customer where c_customer_sk = :cust and abs(c_birth_year) > 0")
                .unwrap();
        assert_eq!(p.params(), vec!["cust".to_string()]);
    }

    #[test]
    fn parses_comma_cross_join() {
        let p = parse("select * from a, b where a.x = b.y").unwrap();
        let LogicalPlan::Select { input, .. } = p else {
            panic!()
        };
        assert!(matches!(*input, LogicalPlan::Join { .. }));
    }

    #[test]
    fn precedence_and_parens() {
        let p = parse("select * from t where a = 1 or b = 2 and c = 3").unwrap();
        let LogicalPlan::Select { pred, .. } = p else {
            panic!()
        };
        // OR is outermost: a=1 OR (b=2 AND c=3)
        assert!(matches!(pred, ScalarExpr::Bin(BinOp::Or, _, _)));
        let p2 = parse("select * from t where (a = 1 or b = 2) and c = 3").unwrap();
        let LogicalPlan::Select { pred, .. } = p2 else {
            panic!()
        };
        assert!(matches!(pred, ScalarExpr::Bin(BinOp::And, _, _)));
    }

    #[test]
    fn unary_minus_desugars_to_subtraction() {
        let p = parse("select * from t where a > -5").unwrap();
        let LogicalPlan::Select { pred, .. } = p else {
            panic!()
        };
        let ScalarExpr::Bin(BinOp::Gt, _, rhs) = pred else {
            panic!()
        };
        assert!(matches!(*rhs, ScalarExpr::Bin(BinOp::Sub, _, _)));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("select * from t extra garbage here").is_err());
    }

    #[test]
    fn rejects_mixed_star_and_items() {
        assert!(parse("select *, a from t").is_err());
    }

    #[test]
    fn rejects_agg_mixed_with_plain_column_without_group_by() {
        assert!(parse("select a, count(*) from t").is_err());
    }

    #[test]
    fn count_star_only() {
        assert!(parse("select sum(*) from t").is_err());
        assert!(parse("select count(*) from t").is_ok());
    }

    #[test]
    fn order_by_multiple_keys() {
        let p = parse("select * from t order by a asc, b desc").unwrap();
        let LogicalPlan::OrderBy { keys, .. } = p else {
            panic!()
        };
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].1, SortDir::Asc);
        assert_eq!(keys[1].1, SortDir::Desc);
    }
}
