//! Plan-to-SQL printer.
//!
//! F-IR transformations produce `LogicalPlan`s; code generation turns them
//! back into `executeQuery("…")` calls, which requires rendering plans as
//! SQL text. The printer is the inverse of the parser for every plan shape
//! the parser can produce: `parse(print(p))` prints back to the same text
//! (idempotence is property-tested).

use crate::expr::ScalarExpr;
use crate::plan::{LogicalPlan, SortDir};
use crate::value::Value;
use std::fmt::Write as _;

/// Render a plan as a SQL `SELECT` statement.
pub fn print(plan: &LogicalPlan) -> String {
    let mut p = plan;
    let mut limit = None;
    let mut order = Vec::new();

    if let LogicalPlan::Limit { input, n } = p {
        limit = Some(*n);
        p = input;
    }
    if let LogicalPlan::OrderBy { input, keys } = p {
        order = keys.clone();
        p = input;
    }

    // SELECT clause.
    let mut group_by: Vec<String> = Vec::new();
    let select_clause;
    match p {
        LogicalPlan::Project { input, items } => {
            select_clause = items
                .iter()
                .map(|(e, name)| {
                    let rendered = print_expr(e);
                    if expr_default_name(e).as_deref() == Some(name.as_str()) {
                        rendered
                    } else {
                        format!("{rendered} as {name}")
                    }
                })
                .collect::<Vec<_>>()
                .join(", ");
            p = input;
        }
        LogicalPlan::Aggregate {
            input,
            group_by: g,
            aggs,
        } => {
            let mut parts: Vec<String> = g.iter().map(|c| c.to_ref_string()).collect();
            group_by = parts.clone();
            for a in aggs {
                let arg = match &a.arg {
                    None => "*".to_string(),
                    Some(e) => print_expr(e),
                };
                let call = format!("{}({})", a.func.sql(), arg);
                let default = default_agg_name_for_print(a);
                if default == a.name {
                    parts.push(call);
                } else {
                    parts.push(format!("{call} as {}", a.name));
                }
            }
            select_clause = parts.join(", ");
            p = input;
        }
        _ => select_clause = "*".to_string(),
    }

    // WHERE conjuncts (Selects above the join tree).
    let mut where_preds = Vec::new();
    while let LogicalPlan::Select { input, pred } = p {
        where_preds.push(pred.clone());
        p = input;
    }

    // FROM clause; Selects nested inside joins are hoisted into WHERE
    // (valid for inner joins).
    let from_clause = render_from(p, &mut where_preds);

    let mut sql = format!("select {select_clause} from {from_clause}");
    if !where_preds.is_empty() {
        // Preserve source order: predicates were collected top-down.
        where_preds.reverse();
        let rendered: Vec<String> = where_preds.iter().map(print_expr).collect();
        write!(sql, " where {}", rendered.join(" and ")).unwrap();
    }
    if !group_by.is_empty() {
        write!(sql, " group by {}", group_by.join(", ")).unwrap();
    }
    if !order.is_empty() {
        let keys: Vec<String> = order
            .iter()
            .map(|(c, d)| match d {
                SortDir::Asc => c.to_ref_string(),
                SortDir::Desc => format!("{} desc", c.to_ref_string()),
            })
            .collect();
        write!(sql, " order by {}", keys.join(", ")).unwrap();
    }
    if let Some(n) = limit {
        write!(sql, " limit {n}").unwrap();
    }
    sql
}

/// Render the FROM tree. Inner `Select` nodes are hoisted into `where_out`;
/// other complex inputs become subqueries.
fn render_from(plan: &LogicalPlan, where_out: &mut Vec<ScalarExpr>) -> String {
    match plan {
        LogicalPlan::Scan { table, alias } => match alias {
            Some(a) if a != table => format!("{table} {a}"),
            _ => table.clone(),
        },
        LogicalPlan::Join { left, right, pred } => {
            let l = render_from(left, where_out);
            let r = render_from(right, where_out);
            if matches!(pred, ScalarExpr::Lit(Value::Bool(true))) {
                format!("{l}, {r}")
            } else {
                format!("{l} join {r} on {}", print_expr(pred))
            }
        }
        LogicalPlan::Select { input, pred } => {
            where_out.push(pred.clone());
            render_from(input, where_out)
        }
        other => format!("({}) sub", print(other)),
    }
}

/// Render a scalar expression as SQL.
pub fn print_expr(expr: &ScalarExpr) -> String {
    render_expr(expr, 0)
}

/// Precedence levels: higher binds tighter.
fn precedence(expr: &ScalarExpr) -> u8 {
    use crate::expr::BinOp::*;
    match expr {
        ScalarExpr::Bin(op, _, _) => match op {
            Or => 1,
            And => 2,
            Eq | Ne | Lt | Le | Gt | Ge => 3,
            Add | Sub => 4,
            Mul | Div => 5,
        },
        ScalarExpr::Not(_) => 2,
        _ => 6,
    }
}

fn render_expr(expr: &ScalarExpr, parent_prec: u8) -> String {
    let prec = precedence(expr);
    let body = match expr {
        ScalarExpr::Col(c) => c.to_ref_string(),
        ScalarExpr::Lit(v) => render_literal(v),
        ScalarExpr::Param(p) => format!(":{p}"),
        ScalarExpr::Bin(op, l, r) => {
            // Left-assoc: the right child needs parens at equal precedence.
            format!(
                "{} {} {}",
                render_expr(l, prec),
                op.sql(),
                render_expr(r, prec + 1)
            )
        }
        ScalarExpr::Not(e) => format!("not {}", render_expr(e, prec + 1)),
        ScalarExpr::Func(name, args) => {
            let rendered: Vec<String> = args.iter().map(|a| render_expr(a, 0)).collect();
            format!("{name}({})", rendered.join(", "))
        }
    };
    if prec < parent_prec {
        format!("({body})")
    } else {
        body
    }
}

fn render_literal(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            // Keep a decimal point so the lexer reads it back as a float.
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Bool(b) => b.to_string(),
    }
}

/// The default display name the parser would assign to an unaliased
/// expression — used to suppress redundant `as` clauses when printing.
fn expr_default_name(expr: &ScalarExpr) -> Option<String> {
    match expr {
        ScalarExpr::Col(c) => Some(c.name.clone()),
        _ => None,
    }
}

fn default_agg_name_for_print(a: &crate::plan::AggItem) -> String {
    match &a.arg {
        None => format!("{}_all", a.func.sql()),
        Some(ScalarExpr::Col(c)) => format!("{}_{}", a.func.sql(), c.name),
        Some(_) => format!("{}_expr", a.func.sql()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;

    /// print ∘ parse is idempotent on these inputs.
    fn round_trip(sql: &str) -> String {
        let plan = parse(sql).unwrap();
        let printed = print(&plan);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        assert_eq!(print(&reparsed), printed, "printing must be a fixpoint");
        printed
    }

    #[test]
    fn prints_simple_scan() {
        assert_eq!(round_trip("select * from orders"), "select * from orders");
    }

    #[test]
    fn prints_join_with_aliases() {
        let sql = "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk";
        assert_eq!(round_trip(sql), sql);
    }

    #[test]
    fn prints_where_group_order_limit() {
        let sql = "select o_status, count(*) as n from orders where o_amount > 5 \
                   group by o_status order by o_status desc limit 3";
        assert_eq!(round_trip(sql), sql);
    }

    #[test]
    fn prints_aggregate_without_alias() {
        assert_eq!(
            round_trip("select sum(sale_amt) from sales"),
            "select sum(sale_amt) from sales"
        );
    }

    #[test]
    fn prints_params() {
        let sql = "select * from customer where c_customer_sk = :cust";
        assert_eq!(round_trip(sql), sql);
    }

    #[test]
    fn preserves_or_and_precedence() {
        let sql = "select * from t where (a = 1 or b = 2) and c = 3";
        let printed = round_trip(sql);
        assert!(printed.contains("(a = 1 or b = 2) and c = 3"), "{printed}");
    }

    #[test]
    fn string_literals_escape_quotes() {
        let sql = "select * from t where name = 'it''s'";
        assert_eq!(round_trip(sql), sql);
    }

    #[test]
    fn float_literals_keep_decimal_point() {
        let sql = "select * from t where x > 2.0";
        assert_eq!(round_trip(sql), sql);
    }

    #[test]
    fn hoists_nested_selects_into_where() {
        use crate::expr::ScalarExpr as E;
        // σ(a.x=1)(A) ⋈ B — printer hoists the filter into WHERE.
        let plan = crate::plan::LogicalPlan::scan_as("a", "a1")
            .select(E::eq(E::col("a1.x"), E::lit(1i64)))
            .join(
                crate::plan::LogicalPlan::scan_as("b", "b1"),
                E::eq(E::col("a1.x"), E::col("b1.y")),
            );
        let printed = print(&plan);
        assert_eq!(
            printed,
            "select * from a a1 join b b1 on a1.x = b1.y where a1.x = 1"
        );
        let reparsed = parse(&printed).unwrap();
        assert_eq!(print(&reparsed), printed);
    }

    #[test]
    fn cross_join_prints_with_comma() {
        let sql = "select * from a, b where a.x = b.y";
        assert_eq!(round_trip(sql), sql);
    }

    #[test]
    fn complex_from_inputs_become_subqueries() {
        let plan = parse("select count(*) from t").unwrap();
        let joined = plan.join(crate::plan::LogicalPlan::scan("u"), ScalarExpr::lit(true));
        let printed = print(&joined);
        assert!(
            printed.contains("(select count(*) from t) sub"),
            "{printed}"
        );
    }
}
