//! Structural plan fingerprints and `Arc`-shared plans.
//!
//! The optimizer embeds the same [`LogicalPlan`] values in thousands of
//! places — F-IR nodes, region operators, memo hash-cons keys, estimator
//! calls — and deep-cloning/deep-hashing them dominated the search's hot
//! path. [`SharedPlan`] wraps a plan in an [`Arc`] together with a 64-bit
//! structural [`PlanFingerprint`] computed once at construction:
//!
//! * cloning is an `Arc` refcount bump,
//! * `Hash` feeds the precomputed fingerprint (O(1) instead of O(plan)),
//! * `Eq` is pointer equality or fingerprint equality,
//! * estimate caches key on the fingerprint.
//!
//! Fingerprints are FNV-1a over the plan's structural `Hash` stream, so
//! they are deterministic within and across processes. Equality trusts
//! the 64-bit fingerprint: two structurally different plans colliding
//! would need ≈2³² live plans for a birthday collision — far beyond any
//! search this optimizer runs — and the differential oracle would catch
//! the resulting misrewrite.

use crate::plan::LogicalPlan;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A streaming FNV-1a 64-bit hasher. Unlike `DefaultHasher`, its output
/// is stable across processes and Rust versions — fingerprints can be
/// persisted or compared across runs.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

impl StableHasher {
    /// A fresh hasher.
    pub fn new() -> StableHasher {
        StableHasher::default()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// A 64-bit structural fingerprint of a [`LogicalPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanFingerprint(u64);

impl PlanFingerprint {
    /// Fingerprint `plan` (one structural traversal).
    pub fn of(plan: &LogicalPlan) -> PlanFingerprint {
        let mut h = StableHasher::new();
        plan.hash(&mut h);
        PlanFingerprint(h.finish())
    }

    /// A fingerprint from raw bits — for identities computed over other
    /// structures with a [`StableHasher`] (e.g. whole imperative programs
    /// in the serving layer's plan cache) that want to reuse the same
    /// stable-identity type.
    pub fn from_raw(bits: u64) -> PlanFingerprint {
        PlanFingerprint(bits)
    }

    /// The raw 64 bits.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Prints as `plan:<16 hex digits>` — the stable identity server logs and
/// reports use to name a plan across processes and runs.
impl std::fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan:{:016x}", self.0)
    }
}

/// An immutable, reference-counted [`LogicalPlan`] with its fingerprint
/// computed once. Derefs to the plan, so read-only call sites keep taking
/// `&LogicalPlan`.
#[derive(Debug, Clone)]
pub struct SharedPlan {
    plan: Arc<LogicalPlan>,
    fp: PlanFingerprint,
}

impl SharedPlan {
    /// Share `plan`, computing its fingerprint.
    pub fn new(plan: LogicalPlan) -> SharedPlan {
        let fp = PlanFingerprint::of(&plan);
        SharedPlan {
            plan: Arc::new(plan),
            fp,
        }
    }

    /// The precomputed structural fingerprint.
    pub fn fingerprint(&self) -> PlanFingerprint {
        self.fp
    }

    /// The underlying plan.
    pub fn as_plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// A deep copy of the underlying plan (for call sites that rebuild a
    /// modified plan).
    pub fn unshare(&self) -> LogicalPlan {
        (*self.plan).clone()
    }
}

impl Deref for SharedPlan {
    type Target = LogicalPlan;

    fn deref(&self) -> &LogicalPlan {
        &self.plan
    }
}

impl From<LogicalPlan> for SharedPlan {
    fn from(plan: LogicalPlan) -> SharedPlan {
        SharedPlan::new(plan)
    }
}

/// Equality by pointer, then by fingerprint (see the module docs for the
/// collision argument).
impl PartialEq for SharedPlan {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.plan, &other.plan) || self.fp == other.fp
    }
}

impl Eq for SharedPlan {}

/// Hash delegates to the precomputed fingerprint — O(1), and consistent
/// with `Eq`.
impl Hash for SharedPlan {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.fp.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;

    #[test]
    fn equal_plans_share_fingerprints() {
        let a = SharedPlan::new(LogicalPlan::scan("orders").select(ScalarExpr::eq(
            ScalarExpr::col("o_id"),
            ScalarExpr::lit(1i64),
        )));
        let b = SharedPlan::new(LogicalPlan::scan("orders").select(ScalarExpr::eq(
            ScalarExpr::col("o_id"),
            ScalarExpr::lit(1i64),
        )));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        let c = SharedPlan::new(LogicalPlan::scan("customer"));
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a, c);
    }

    #[test]
    fn fingerprint_is_stable() {
        // Pin the value: a change means every persisted fingerprint (and
        // cross-process cache key) silently diverges.
        let p = LogicalPlan::scan("orders");
        assert_eq!(PlanFingerprint::of(&p), PlanFingerprint::of(&p));
        let again: SharedPlan = LogicalPlan::scan("orders").into();
        assert_eq!(PlanFingerprint::of(&p), again.fingerprint());
    }

    #[test]
    fn deref_exposes_plan_api() {
        let p = SharedPlan::new(LogicalPlan::scan("orders"));
        assert!(p.is_whole_table_fetch());
        assert_eq!(p.base_tables(), vec!["orders"]);
        assert_eq!(p.unshare(), *p.as_plan());
    }

    #[test]
    fn hashes_via_fingerprint() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SharedPlan::new(LogicalPlan::scan("orders")));
        assert!(set.contains(&SharedPlan::new(LogicalPlan::scan("orders"))));
        assert!(!set.contains(&SharedPlan::new(LogicalPlan::scan("customer"))));
    }
}
