//! Error type shared across the database engine.

use std::fmt;

/// Errors produced by the catalog, parser, planner, executor or estimator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A table was not found in the catalog.
    UnknownTable(String),
    /// A column reference could not be resolved against a schema.
    UnknownColumn(String),
    /// A column reference matched more than one column.
    AmbiguousColumn(String),
    /// A scalar function is not registered.
    UnknownFunction(String),
    /// SQL text failed to lex/parse; includes a human-readable reason.
    Parse(String),
    /// A query referenced a parameter that was not bound at execution time.
    UnboundParam(String),
    /// Type mismatch during evaluation or planning.
    Type(String),
    /// Anything else (schema violations, arity errors, …).
    Invalid(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            DbError::UnknownFunction(x) => write!(f, "unknown function: {x}"),
            DbError::Parse(m) => write!(f, "SQL parse error: {m}"),
            DbError::UnboundParam(p) => write!(f, "unbound query parameter: :{p}"),
            DbError::Type(m) => write!(f, "type error: {m}"),
            DbError::Invalid(m) => write!(f, "invalid operation: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience alias used throughout the engine.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            DbError::UnknownTable("orders".into()).to_string(),
            "unknown table: orders"
        );
        assert_eq!(
            DbError::UnboundParam("cust".into()).to_string(),
            "unbound query parameter: :cust"
        );
        assert!(DbError::Parse("expected FROM".into())
            .to_string()
            .contains("expected FROM"));
    }
}
