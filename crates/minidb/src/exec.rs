//! Physical execution of logical plans.
//!
//! The executor materializes results eagerly but *accounts* the work done
//! per operator, split into the portion that happens **before the first
//! output row** (blocking work: hash-build, aggregation, sorting) and the
//! total. The simulated server derives `C^F_Q` / `C^L_Q` — time to first
//! and last row — from these counters via a per-row cost.
//!
//! Physical strategies implemented:
//! * index lookups for equality predicates over indexed base-table scans,
//! * hash join for equi-joins (build on the smaller side), nested-loop
//!   join otherwise,
//! * hash aggregation, full sort for `ORDER BY`.
//!
//! Two data planes share this interface (see [`ExecEngine`]): the
//! vectorized columnar engine ([`crate::vexec`], the default) and the
//! original row-at-a-time interpreter kept as its differential baseline.
//! Both produce bit-identical results and [`ExecWork`] counters; only
//! wall-clock speed differs.

use crate::catalog::Database;
use crate::error::DbResult;
use crate::expr::{AggFunc, BinOp, ScalarExpr};
use crate::func::FuncRegistry;
use crate::plan::{AggItem, LogicalPlan, SortDir};
use crate::schema::Schema;
use crate::value::{Row, Value};
use std::collections::HashMap;

/// Which physical data plane executes queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecEngine {
    /// Vectorized execution over columnar storage (selection vectors,
    /// typed kernels, late materialization). The default.
    #[default]
    Columnar,
    /// The original row-at-a-time interpreter — kept as the differential
    /// baseline and for before/after throughput comparisons.
    Row,
}

impl std::fmt::Display for ExecEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecEngine::Columnar => write!(f, "columnar"),
            ExecEngine::Row => write!(f, "row"),
        }
    }
}

/// Rows produced by an operator: either borrowed straight from table
/// storage (scans are zero-copy) or owned by the pipeline. Dereferences
/// to `[Row]`; ownership is forced only at operator boundaries that
/// reorder or rewrite rows.
pub(crate) enum RowsBuf<'a> {
    /// A borrowed slice of the table's row storage.
    Borrowed(&'a [Row]),
    /// Rows materialized by an operator.
    Owned(Vec<Row>),
}

impl<'a> std::ops::Deref for RowsBuf<'a> {
    type Target = [Row];
    fn deref(&self) -> &[Row] {
        match self {
            RowsBuf::Borrowed(s) => s,
            RowsBuf::Owned(v) => v,
        }
    }
}

impl<'a> RowsBuf<'a> {
    fn into_owned(self) -> Vec<Row> {
        match self {
            RowsBuf::Borrowed(s) => s.to_vec(),
            RowsBuf::Owned(v) => v,
        }
    }
}

/// Work counters for one query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecWork {
    /// Row-touches performed before the first output row could be emitted.
    pub startup_rows: u64,
    /// Total row-touches across all operators.
    pub total_rows: u64,
}

impl ExecWork {
    pub(crate) fn add(&mut self, other: ExecWork) {
        self.startup_rows += other.startup_rows;
        self.total_rows += other.total_rows;
    }
}

/// A materialized query result plus its work profile.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output schema.
    pub schema: Schema,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Work performed by the server.
    pub work: ExecWork,
}

impl QueryResult {
    /// Result-set cardinality (`N_Q`).
    pub fn row_count(&self) -> u64 {
        self.rows.len() as u64
    }

    /// Declared size of one result row in bytes (`S_row(Q)`).
    pub fn row_bytes(&self) -> u64 {
        self.schema.row_bytes()
    }

    /// Total payload size in bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.row_count() * self.row_bytes()
    }
}

/// Executes logical plans against a database.
pub struct Executor<'a> {
    pub(crate) db: &'a Database,
    pub(crate) funcs: &'a FuncRegistry,
    /// Server-side cost per row-touch, in nanoseconds.
    row_ns: f64,
    /// Which data plane runs queries (columnar by default).
    engine: ExecEngine,
    /// When set, every execution records its actual cardinality and work
    /// per plan fingerprint — the runtime half of the cardinality
    /// feedback loop (see [`crate::feedback::FeedbackStore`]).
    feedback: Option<&'a crate::feedback::FeedbackStore>,
}

/// Default per-row server cost. Roughly calibrated so that a 1 M-row scan
/// costs ~0.2 s of server time, in line with the warm in-memory MySQL
/// instance of the paper's testbed.
pub const DEFAULT_SERVER_ROW_NS: f64 = 200.0;

impl<'a> Executor<'a> {
    /// New executor with the default per-row server cost.
    pub fn new(db: &'a Database, funcs: &'a FuncRegistry) -> Executor<'a> {
        Executor {
            db,
            funcs,
            row_ns: DEFAULT_SERVER_ROW_NS,
            engine: ExecEngine::default(),
            feedback: None,
        }
    }

    /// Override the per-row server cost (nanoseconds per row-touch).
    pub fn with_row_ns(mut self, row_ns: f64) -> Executor<'a> {
        self.row_ns = row_ns;
        self
    }

    /// Select the physical data plane (columnar by default).
    pub fn with_engine(mut self, engine: ExecEngine) -> Executor<'a> {
        self.engine = engine;
        self
    }

    /// The data plane this executor runs on.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Record every execution's observed cardinality and work into
    /// `feedback`, keyed by the plan's structural fingerprint.
    pub fn with_feedback(mut self, feedback: &'a crate::feedback::FeedbackStore) -> Executor<'a> {
        self.feedback = Some(feedback);
        self
    }

    /// Per-row server cost in ns.
    pub fn row_ns(&self) -> f64 {
        self.row_ns
    }

    /// Execute `plan` with `params` bound, returning rows + work profile.
    pub fn execute(
        &self,
        plan: &LogicalPlan,
        params: &HashMap<String, Value>,
    ) -> DbResult<QueryResult> {
        let (schema, rows, work) = match self.engine {
            ExecEngine::Columnar => crate::vexec::run(self, plan, params)?,
            ExecEngine::Row => {
                let (schema, rows, work) = self.run(plan, params)?;
                (schema, rows.into_owned(), work)
            }
        };
        if let Some(fb) = self.feedback {
            fb.record_at(
                plan,
                rows.len() as u64,
                &work,
                self.db.plan_data_stamp(plan),
            );
        }
        Ok(QueryResult { schema, rows, work })
    }

    /// Server time to produce the first result row, in ns.
    pub fn first_row_ns(&self, work: &ExecWork) -> u64 {
        (work.startup_rows as f64 * self.row_ns) as u64
    }

    /// Server time to produce the complete result, in ns.
    pub fn total_ns(&self, work: &ExecWork) -> u64 {
        (work.total_rows as f64 * self.row_ns) as u64
    }

    fn run(
        &self,
        plan: &LogicalPlan,
        params: &HashMap<String, Value>,
    ) -> DbResult<(Schema, RowsBuf<'a>, ExecWork)> {
        match plan {
            LogicalPlan::Scan { table, alias } => {
                let t = self.db.table(table)?;
                let q = alias.clone().unwrap_or_else(|| table.clone());
                let schema = t.schema().with_qualifier(&q);
                // Zero-copy: borrow the table's row storage directly.
                let rows = RowsBuf::Borrowed(t.rows());
                let work = ExecWork {
                    startup_rows: 0,
                    total_rows: rows.len() as u64,
                };
                Ok((schema, rows, work))
            }
            LogicalPlan::Select { input, pred } => self.run_select(input, pred, params),
            LogicalPlan::Project { input, items } => {
                let (in_schema, in_rows, mut work) = self.run(input, params)?;
                let out_schema = plan.output_schema(self.db, self.funcs)?;
                let mut out = Vec::with_capacity(in_rows.len());
                for row in in_rows.iter() {
                    let mut new_row = Vec::with_capacity(items.len());
                    for (expr, _) in items {
                        new_row.push(expr.eval(&in_schema, row, params, self.funcs)?);
                    }
                    out.push(new_row);
                }
                work.total_rows += in_rows.len() as u64;
                Ok((out_schema, RowsBuf::Owned(out), work))
            }
            LogicalPlan::Join { left, right, pred } => self.run_join(left, right, pred, params),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => self.run_aggregate(plan, input, group_by, aggs, params),
            LogicalPlan::OrderBy { input, keys } => {
                let (schema, rows, mut work) = self.run(input, params)?;
                let mut rows = rows.into_owned();
                let mut key_idx = Vec::with_capacity(keys.len());
                for (c, dir) in keys {
                    key_idx.push((schema.resolve(&c.to_ref_string())?, *dir));
                }
                rows.sort_by(|a, b| {
                    for &(i, dir) in &key_idx {
                        let ord = a[i].cmp(&b[i]);
                        let ord = match dir {
                            SortDir::Asc => ord,
                            SortDir::Desc => ord.reverse(),
                        };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                // Sorting is blocking: charge n·log2(n) row-touches up front.
                let n = rows.len() as u64;
                let sort_work = n * (64 - n.max(1).leading_zeros() as u64).max(1);
                work.startup_rows = work.total_rows + sort_work;
                work.total_rows += sort_work;
                Ok((schema, RowsBuf::Owned(rows), work))
            }
            LogicalPlan::Limit { input, n } => {
                let (schema, rows, work) = self.run(input, params)?;
                let n = *n as usize;
                let rows = match rows {
                    // Keep borrowing: a limited scan is still zero-copy.
                    RowsBuf::Borrowed(s) => RowsBuf::Borrowed(&s[..n.min(s.len())]),
                    RowsBuf::Owned(mut v) => {
                        v.truncate(n);
                        RowsBuf::Owned(v)
                    }
                };
                Ok((schema, rows, work))
            }
        }
    }

    fn run_select(
        &self,
        input: &LogicalPlan,
        pred: &ScalarExpr,
        params: &HashMap<String, Value>,
    ) -> DbResult<(Schema, RowsBuf<'a>, ExecWork)> {
        // Index fast path: equality conjunct over an indexed base table.
        if let LogicalPlan::Scan { table, alias } = input {
            let t = self.db.table(table)?;
            let q = alias.clone().unwrap_or_else(|| table.clone());
            let schema = t.schema().with_qualifier(&q);
            let conjuncts = pred.conjuncts();
            for (ci, c) in conjuncts.iter().enumerate() {
                if let ScalarExpr::Bin(BinOp::Eq, l, r) = c {
                    let (col, key_expr) = match (&**l, &**r) {
                        (ScalarExpr::Col(col), other) if !other.references_columns() => {
                            (col, other)
                        }
                        (other, ScalarExpr::Col(col)) if !other.references_columns() => {
                            (col, other)
                        }
                        _ => continue,
                    };
                    let Ok(idx) = schema.resolve(&col.to_ref_string()) else {
                        continue;
                    };
                    if !t.has_index(idx) {
                        continue;
                    }
                    let key = key_expr.eval(&Schema::default(), &Vec::new(), params, self.funcs)?;
                    let positions = t.index_lookup(idx, &key).unwrap_or(&[]);
                    let mut rows = Vec::with_capacity(positions.len());
                    let rest: Vec<&ScalarExpr> = conjuncts
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != ci)
                        .map(|(_, e)| *e)
                        .collect();
                    'rows: for &pos in positions {
                        let row = &t.rows()[pos];
                        for other in &rest {
                            let v = other.eval(&schema, row, params, self.funcs)?;
                            if v.as_bool() != Some(true) {
                                continue 'rows;
                            }
                        }
                        rows.push(row.clone());
                    }
                    // Index probe: charge only matched rows (plus the probe).
                    let work = ExecWork {
                        startup_rows: 0,
                        total_rows: positions.len() as u64 + 1,
                    };
                    return Ok((schema, RowsBuf::Owned(rows), work));
                }
            }
        }
        // Generic filter scan.
        let (schema, in_rows, mut work) = self.run(input, params)?;
        let mut rows = Vec::new();
        for row in in_rows.iter() {
            let v = pred.eval(&schema, row, params, self.funcs)?;
            if v.as_bool() == Some(true) {
                rows.push(row.clone());
            }
        }
        work.total_rows += in_rows.len() as u64;
        Ok((schema, RowsBuf::Owned(rows), work))
    }

    /// Try an index-nested-loops join: one side is a bare indexed table
    /// scan and the other side is (much) smaller — probe the index per
    /// outer row instead of scanning the big side (what MySQL does for
    /// small driving sides; essential for P1's low-cardinality behaviour).
    fn try_inl_join(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        pred: &ScalarExpr,
        params: &HashMap<String, Value>,
    ) -> DbResult<Option<(Schema, RowsBuf<'a>, ExecWork)>> {
        for (outer_plan, inner_plan, inner_is_right) in [(left, right, true), (right, left, false)]
        {
            let LogicalPlan::Scan { table, alias } = inner_plan else {
                continue;
            };
            let t = self.db.table(table)?;
            let inner_schema = t.schema().with_qualifier(alias.as_deref().unwrap_or(table));
            let outer_schema = outer_plan.output_schema(self.db, self.funcs)?;
            // Find an equi conjunct split across the two sides.
            let conjuncts = pred.conjuncts();
            let mut probe: Option<(usize, usize)> = None;
            for c in &conjuncts {
                let ScalarExpr::Bin(BinOp::Eq, a, b) = c else {
                    continue;
                };
                let (ScalarExpr::Col(ca), ScalarExpr::Col(cb)) = (&**a, &**b) else {
                    continue;
                };
                for (x, y) in [(ca, cb), (cb, ca)] {
                    if let (Ok(o), Ok(i)) = (
                        outer_schema.resolve(&x.to_ref_string()),
                        inner_schema.resolve(&y.to_ref_string()),
                    ) {
                        if t.has_index(i) {
                            probe = Some((o, i));
                        }
                    }
                }
            }
            let Some((o_col, i_col)) = probe else {
                continue;
            };

            // Heuristic: only when the driving side is clearly smaller.
            let (o_schema, o_rows, o_work) = self.run(outer_plan, params)?;
            if o_rows.len() * 2 >= t.row_count() {
                continue; // hash join is the better plan; fall through
            }

            let out_schema = if inner_is_right {
                o_schema.join(&inner_schema)
            } else {
                inner_schema.join(&o_schema)
            };
            let mut work = o_work;
            let mut out = Vec::new();
            for o_row in o_rows.iter() {
                work.total_rows += 1;
                let hits = t.index_lookup(i_col, &o_row[o_col]).unwrap_or(&[]);
                'hits: for &pos in hits {
                    let i_row = &t.rows()[pos];
                    let joined: Row = if inner_is_right {
                        o_row.iter().chain(i_row.iter()).cloned().collect()
                    } else {
                        i_row.iter().chain(o_row.iter()).cloned().collect()
                    };
                    work.total_rows += 1;
                    for c in &conjuncts {
                        let v = c.eval(&out_schema, &joined, params, self.funcs)?;
                        if v.as_bool() != Some(true) {
                            continue 'hits;
                        }
                    }
                    out.push(joined);
                }
            }
            return Ok(Some((out_schema, RowsBuf::Owned(out), work)));
        }
        Ok(None)
    }

    fn run_join(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        pred: &ScalarExpr,
        params: &HashMap<String, Value>,
    ) -> DbResult<(Schema, RowsBuf<'a>, ExecWork)> {
        if let Some(result) = self.try_inl_join(left, right, pred, params)? {
            return Ok(result);
        }
        let (l_schema, l_rows, l_work) = self.run(left, params)?;
        let (r_schema, r_rows, r_work) = self.run(right, params)?;
        let out_schema = l_schema.join(&r_schema);
        let mut work = ExecWork::default();
        work.add(l_work);
        work.add(r_work);

        // Find an equi-join conjunct col_l = col_r.
        let conjuncts = pred.conjuncts();
        let mut equi: Option<(usize, usize)> = None;
        for c in &conjuncts {
            if let ScalarExpr::Bin(BinOp::Eq, a, b) = c {
                if let (ScalarExpr::Col(ca), ScalarExpr::Col(cb)) = (&**a, &**b) {
                    let ra = ca.to_ref_string();
                    let rb = cb.to_ref_string();
                    if let (Ok(i), Ok(j)) = (l_schema.resolve(&ra), r_schema.resolve(&rb)) {
                        equi = Some((i, j));
                        break;
                    }
                    if let (Ok(i), Ok(j)) = (l_schema.resolve(&rb), r_schema.resolve(&ra)) {
                        equi = Some((i, j));
                        break;
                    }
                }
            }
        }

        let mut out = Vec::new();
        if let Some((li, ri)) = equi {
            // Hash join; build on the smaller side.
            let build_left = l_rows.len() <= r_rows.len();
            let (build_rows, probe_rows, build_key, probe_key) = if build_left {
                (&l_rows[..], &r_rows[..], li, ri)
            } else {
                (&r_rows[..], &l_rows[..], ri, li)
            };
            let mut table: HashMap<&Value, Vec<usize>> = HashMap::with_capacity(build_rows.len());
            for (i, row) in build_rows.iter().enumerate() {
                table.entry(&row[build_key]).or_default().push(i);
            }
            // The build phase blocks the first output row.
            work.startup_rows = work.total_rows + build_rows.len() as u64;
            work.total_rows += build_rows.len() as u64 + probe_rows.len() as u64;
            for probe in probe_rows {
                if let Some(matches) = table.get(&probe[probe_key]) {
                    for &bi in matches {
                        let build = &build_rows[bi];
                        let joined: Row = if build_left {
                            build.iter().chain(probe.iter()).cloned().collect()
                        } else {
                            probe.iter().chain(build.iter()).cloned().collect()
                        };
                        // Evaluate any residual conjuncts.
                        let ok =
                            self.residual_ok(&out_schema, &joined, &conjuncts, (li, ri), params)?;
                        if ok {
                            work.total_rows += 1;
                            out.push(joined);
                        }
                    }
                }
            }
        } else {
            // Nested-loop join.
            work.startup_rows = work.total_rows;
            work.total_rows += (l_rows.len() as u64).saturating_mul(r_rows.len() as u64);
            for l in l_rows.iter() {
                for r in r_rows.iter() {
                    let joined: Row = l.iter().chain(r.iter()).cloned().collect();
                    let v = pred.eval(&out_schema, &joined, params, self.funcs)?;
                    if v.as_bool() == Some(true) {
                        out.push(joined);
                    }
                }
            }
        }
        Ok((out_schema, RowsBuf::Owned(out), work))
    }

    /// Check all conjuncts except the equi-join one already applied.
    fn residual_ok(
        &self,
        schema: &Schema,
        row: &Row,
        conjuncts: &[&ScalarExpr],
        _equi_cols: (usize, usize),
        params: &HashMap<String, Value>,
    ) -> DbResult<bool> {
        for c in conjuncts {
            let v = c.eval(schema, row, params, self.funcs)?;
            if v.as_bool() != Some(true) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn run_aggregate(
        &self,
        plan: &LogicalPlan,
        input: &LogicalPlan,
        group_by: &[crate::expr::ColRef],
        aggs: &[AggItem],
        params: &HashMap<String, Value>,
    ) -> DbResult<(Schema, RowsBuf<'a>, ExecWork)> {
        let (in_schema, in_rows, mut work) = self.run(input, params)?;
        let out_schema = plan.output_schema(self.db, self.funcs)?;
        let mut group_idx = Vec::with_capacity(group_by.len());
        for g in group_by {
            group_idx.push(in_schema.resolve(&g.to_ref_string())?);
        }

        // Keyed accumulation, preserving first-seen group order.
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
        for row in in_rows.iter() {
            let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
            let states = match groups.get_mut(&key) {
                Some(s) => s,
                None => {
                    order.push(key.clone());
                    groups
                        .entry(key.clone())
                        .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect())
                }
            };
            for (state, item) in states.iter_mut().zip(aggs) {
                let v = match &item.arg {
                    Some(e) => Some(e.eval(&in_schema, row, params, self.funcs)?),
                    None => None,
                };
                state.update(v.as_ref());
            }
        }
        // Scalar aggregate over empty input still emits one row.
        if group_by.is_empty() && order.is_empty() {
            order.push(Vec::new());
            groups.insert(
                Vec::new(),
                aggs.iter().map(|a| AggState::new(a.func)).collect(),
            );
        }

        let mut out = Vec::with_capacity(order.len());
        for key in order {
            let states = groups.remove(&key).expect("group present");
            let mut row = key;
            for s in states {
                row.push(s.finish());
            }
            out.push(row);
        }
        // Aggregation is blocking: everything happens before the first row.
        work.total_rows += in_rows.len() as u64;
        work.startup_rows = work.total_rows;
        Ok((out_schema, RowsBuf::Owned(out), work))
    }
}

/// Incremental aggregate state (shared with the vectorized engine as its
/// exact-semantics fallback for non-typed inputs).
pub(crate) enum AggState {
    Count(u64),
    Sum(Option<Value>),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: u64 },
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(None),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    pub(crate) fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Count(n) => {
                // count(*) counts rows; count(expr) skips NULLs.
                match v {
                    Some(val) if val.is_null() => {}
                    _ => *n += 1,
                }
            }
            AggState::Sum(acc) => {
                if let Some(val) = v {
                    if val.is_null() {
                        return;
                    }
                    *acc = Some(match acc.take() {
                        None => val.clone(),
                        Some(Value::Int(a)) => match val {
                            Value::Int(b) => Value::Int(a + b),
                            other => Value::Float(a as f64 + other.as_f64().unwrap_or(0.0)),
                        },
                        Some(Value::Float(a)) => Value::Float(a + val.as_f64().unwrap_or(0.0)),
                        Some(other) => other,
                    });
                }
            }
            AggState::Min(acc) => {
                if let Some(val) = v {
                    if val.is_null() {
                        return;
                    }
                    match acc {
                        Some(m) if val.sql_cmp(m) != Some(std::cmp::Ordering::Less) => {}
                        _ => *acc = Some(val.clone()),
                    }
                }
            }
            AggState::Max(acc) => {
                if let Some(val) = v {
                    if val.is_null() {
                        return;
                    }
                    match acc {
                        Some(m) if val.sql_cmp(m) != Some(std::cmp::Ordering::Greater) => {}
                        _ => *acc = Some(val.clone()),
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(val) = v {
                    if let Some(f) = val.as_f64() {
                        *sum += f;
                        *n += 1;
                    }
                }
            }
        }
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n as i64),
            AggState::Sum(acc) => acc.unwrap_or(Value::Null),
            AggState::Min(acc) => acc.unwrap_or(Value::Null),
            AggState::Max(acc) => acc.unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;
    use crate::schema::{Column, DataType};
    use crate::sql::parse;

    fn test_db() -> Database {
        let mut db = Database::new();
        let orders = Schema::new(vec![
            Column::new("o_id", DataType::Int),
            Column::new("o_customer_sk", DataType::Int),
            Column::new("o_amount", DataType::Float),
        ]);
        let t = db.create_table("orders", orders).unwrap();
        t.set_primary_key("o_id").unwrap();
        for i in 0..100i64 {
            t.insert(vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::Float((i as f64) * 1.5),
            ])
            .unwrap();
        }
        let customer = Schema::new(vec![
            Column::new("c_customer_sk", DataType::Int),
            Column::new("c_birth_year", DataType::Int),
        ]);
        let t = db.create_table("customer", customer).unwrap();
        t.set_primary_key("c_customer_sk").unwrap();
        for i in 0..10i64 {
            t.insert(vec![Value::Int(i), Value::Int(1960 + i)]).unwrap();
        }
        db.analyze_all();
        db
    }

    fn run(db: &Database, sql: &str) -> QueryResult {
        let funcs = FuncRegistry::with_builtins();
        let plan = parse(sql).unwrap();
        Executor::new(db, &funcs)
            .execute(&plan, &HashMap::new())
            .unwrap()
    }

    #[test]
    fn scan_returns_all_rows() {
        let db = test_db();
        let r = run(&db, "select * from orders");
        assert_eq!(r.row_count(), 100);
        assert_eq!(r.work.total_rows, 100);
        assert_eq!(r.work.startup_rows, 0, "scans are pipelined");
    }

    #[test]
    fn filter_scan() {
        let db = test_db();
        let r = run(&db, "select * from orders where o_amount > 100.0");
        assert_eq!(r.row_count(), 33, "1.5*i > 100 for i in 67..100");
    }

    #[test]
    fn index_lookup_path_is_cheap() {
        let db = test_db();
        let r = run(&db, "select * from orders where o_id = 50");
        assert_eq!(r.row_count(), 1);
        assert!(r.work.total_rows <= 2, "index probe: got {:?}", r.work);
    }

    #[test]
    fn parameterized_index_lookup() {
        let db = test_db();
        let funcs = FuncRegistry::with_builtins();
        let plan = parse("select * from customer where c_customer_sk = :cust").unwrap();
        let mut params = HashMap::new();
        params.insert("cust".to_string(), Value::Int(3));
        let r = Executor::new(&db, &funcs).execute(&plan, &params).unwrap();
        assert_eq!(r.row_count(), 1);
        assert_eq!(r.rows[0][1], Value::Int(1963));
    }

    #[test]
    fn unbound_param_errors() {
        let db = test_db();
        let funcs = FuncRegistry::with_builtins();
        let plan = parse("select * from customer where c_customer_sk = :cust").unwrap();
        let err = Executor::new(&db, &funcs)
            .execute(&plan, &HashMap::new())
            .unwrap_err();
        assert!(matches!(err, DbError::UnboundParam(_)));
    }

    #[test]
    fn hash_join_produces_all_matches() {
        let db = test_db();
        let r = run(
            &db,
            "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk",
        );
        assert_eq!(r.row_count(), 100, "every order has a customer");
        assert_eq!(r.schema.len(), 5);
        // Startup covers at least the build side.
        assert!(r.work.startup_rows >= 10);
    }

    #[test]
    fn join_row_bytes_is_sum_of_sides() {
        let db = test_db();
        let r = run(
            &db,
            "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk",
        );
        assert_eq!(r.row_bytes(), 8 + 8 + 8 + 8 + 8);
    }

    #[test]
    fn nested_loop_join_for_non_equi() {
        let db = test_db();
        let r = run(
            &db,
            "select * from customer a join customer b on a.c_birth_year < b.c_birth_year",
        );
        assert_eq!(r.row_count(), 45, "10 choose 2");
    }

    #[test]
    fn group_by_aggregation() {
        let db = test_db();
        let r = run(
            &db,
            "select o_customer_sk, count(*) as n, sum(o_amount) as total \
             from orders group by o_customer_sk",
        );
        assert_eq!(r.row_count(), 10);
        for row in &r.rows {
            assert_eq!(row[1], Value::Int(10));
        }
        assert_eq!(r.work.startup_rows, r.work.total_rows, "blocking operator");
    }

    #[test]
    fn scalar_aggregate_on_empty_input_yields_one_row() {
        let db = test_db();
        let r = run(&db, "select count(*) as n from orders where o_id = -1");
        assert_eq!(r.row_count(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
    }

    #[test]
    fn sum_over_ints_stays_int() {
        let db = test_db();
        let r = run(&db, "select sum(o_id) from orders");
        assert_eq!(r.rows[0][0], Value::Int(4950));
    }

    #[test]
    fn avg_aggregate() {
        let db = test_db();
        let r = run(&db, "select avg(c_birth_year) from customer");
        assert_eq!(r.rows[0][0], Value::Float(1964.5));
    }

    #[test]
    fn min_max_aggregates() {
        let db = test_db();
        let r = run(&db, "select min(o_amount), max(o_amount) from orders");
        assert_eq!(r.rows[0][0], Value::Float(0.0));
        assert_eq!(r.rows[0][1], Value::Float(148.5));
    }

    #[test]
    fn order_by_sorts_and_blocks() {
        let db = test_db();
        let r = run(&db, "select * from customer order by c_birth_year desc");
        assert_eq!(r.rows[0][1], Value::Int(1969));
        assert_eq!(r.rows[9][1], Value::Int(1960));
        assert!(r.work.startup_rows > 0);
    }

    #[test]
    fn limit_truncates() {
        let db = test_db();
        let r = run(&db, "select * from orders order by o_id limit 5");
        assert_eq!(r.row_count(), 5);
    }

    #[test]
    fn projection_computes_expressions() {
        let db = test_db();
        let r = run(&db, "select o_id, o_amount * 2.0 as d from orders limit 1");
        assert_eq!(r.rows[0][1], Value::Float(0.0));
        assert_eq!(r.schema.column(1).name, "d");
    }

    #[test]
    fn join_then_aggregate_pipeline() {
        let db = test_db();
        let r = run(
            &db,
            "select c.c_birth_year, count(*) as n from orders o \
             join customer c on o.o_customer_sk = c.c_customer_sk \
             group by c.c_birth_year order by c.c_birth_year",
        );
        assert_eq!(r.row_count(), 10);
        assert_eq!(r.rows[0][0], Value::Int(1960));
        assert_eq!(r.rows[0][1], Value::Int(10));
    }

    #[test]
    fn inl_join_used_for_small_driving_side() {
        // 3 orders vs 10 indexed customers: INL probes instead of scanning.
        let mut db = Database::new();
        let orders = Schema::new(vec![
            Column::new("o_id", DataType::Int),
            Column::new("o_customer_sk", DataType::Int),
        ]);
        let t = db.create_table("orders", orders).unwrap();
        for i in 0..3i64 {
            t.insert(vec![Value::Int(i), Value::Int(i)]).unwrap();
        }
        let customer = Schema::new(vec![
            Column::new("c_customer_sk", DataType::Int),
            Column::new("c_birth_year", DataType::Int),
        ]);
        let t = db.create_table("customer", customer).unwrap();
        t.set_primary_key("c_customer_sk").unwrap();
        for i in 0..10i64 {
            t.insert(vec![Value::Int(i), Value::Int(1960 + i)]).unwrap();
        }
        let funcs = FuncRegistry::with_builtins();
        let plan =
            parse("select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk")
                .unwrap();
        let r = Executor::new(&db, &funcs)
            .execute(&plan, &HashMap::new())
            .unwrap();
        assert_eq!(r.row_count(), 3);
        // Work: 3 outer rows + 3 probes + 3 matches ≪ 10-row scan + build.
        assert!(r.work.total_rows <= 9, "INL path taken: {:?}", r.work);
        assert_eq!(r.work.startup_rows, 0, "INL is pipelined");
        // Column order matches the plan's left-right order.
        assert_eq!(r.schema.resolve("o.o_id").unwrap(), 0);
        assert_eq!(r.schema.resolve("c.c_birth_year").unwrap(), 3);
        assert_eq!(r.rows[0][3], Value::Int(1960));
    }

    #[test]
    fn inl_join_matches_hash_join_results() {
        let db = test_db(); // 100 orders, 10 customers: hash join path
        let hash = run(
            &db,
            "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk",
        );
        // Force the INL-eligible direction by shrinking the driving side.
        let inl = run(
            &db,
            "select * from orders o join customer c on \
             o.o_customer_sk = c.c_customer_sk and o.o_id < 4",
        );
        assert_eq!(inl.row_count(), 4);
        // Every INL row appears in the hash-join result.
        for row in &inl.rows {
            assert!(hash.rows.contains(row), "{row:?}");
        }
    }

    #[test]
    fn inl_join_respects_flipped_sides() {
        let db = test_db();
        // Indexed scan on the LEFT: columns must still come out left-first.
        let r = run(
            &db,
            "select * from customer c join orders o on \
             c.c_customer_sk = o.o_customer_sk and o.o_id < 4",
        );
        assert_eq!(r.row_count(), 4);
        assert_eq!(r.schema.resolve("c.c_customer_sk").unwrap(), 0);
        assert_eq!(r.schema.resolve("o.o_id").unwrap(), 2);
    }

    #[test]
    fn residual_predicate_on_hash_join() {
        let db = test_db();
        let r = run(
            &db,
            "select * from orders o join customer c on \
             o.o_customer_sk = c.c_customer_sk and o.o_amount > 100.0",
        );
        assert_eq!(r.row_count(), 33);
    }
}
