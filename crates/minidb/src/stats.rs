//! Table and column statistics.
//!
//! Statistics drive COBRA's cost model: result cardinalities (`N_Q`),
//! predicate selectivities, and the probability `p` of a conditional
//! region's predicate (§VI: "If the condition is in terms of a query result
//! attribute, our framework estimates the value of p using database
//! statistics").

use crate::value::{Row, Value};
use std::collections::HashSet;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub ndv: u64,
    /// Number of NULLs.
    pub null_count: u64,
    /// Minimum non-null value, if any.
    pub min: Option<Value>,
    /// Maximum non-null value, if any.
    pub max: Option<Value>,
}

impl ColumnStats {
    fn empty() -> ColumnStats {
        ColumnStats {
            ndv: 0,
            null_count: 0,
            min: None,
            max: None,
        }
    }
}

/// Statistics for one table, computed by `ANALYZE`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Number of rows at analyze time.
    pub row_count: u64,
    /// Per-column statistics, aligned with the schema.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute statistics over `rows` with `width` columns.
    pub fn analyze(rows: &[Row], width: usize) -> TableStats {
        let mut columns = vec![ColumnStats::empty(); width];
        let mut distinct: Vec<HashSet<&Value>> = vec![HashSet::new(); width];
        for row in rows {
            for (i, v) in row.iter().enumerate().take(width) {
                let stats = &mut columns[i];
                if v.is_null() {
                    stats.null_count += 1;
                    continue;
                }
                distinct[i].insert(v);
                match &stats.min {
                    Some(m) if v >= m => {}
                    _ => stats.min = Some(v.clone()),
                }
                match &stats.max {
                    Some(m) if v <= m => {}
                    _ => stats.max = Some(v.clone()),
                }
            }
        }
        for (i, set) in distinct.into_iter().enumerate() {
            columns[i].ndv = set.len() as u64;
        }
        TableStats {
            row_count: rows.len() as u64,
            columns,
        }
    }

    /// Selectivity of an equality predicate on column `i` (`1 / NDV`).
    /// Falls back to 10% when statistics are missing.
    pub fn eq_selectivity(&self, i: usize) -> f64 {
        match self.columns.get(i) {
            Some(c) if c.ndv > 0 => 1.0 / c.ndv as f64,
            _ => 0.1,
        }
    }

    /// Distinct-value count of column `i`, at least 1.
    pub fn ndv(&self, i: usize) -> u64 {
        self.columns.get(i).map(|c| c.ndv.max(1)).unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::str("a"), Value::Null],
            vec![Value::Int(2), Value::str("b"), Value::Int(10)],
            vec![Value::Int(2), Value::str("a"), Value::Int(20)],
            vec![Value::Int(3), Value::str("c"), Value::Null],
        ]
    }

    #[test]
    fn analyze_counts_rows_and_ndv() {
        let s = TableStats::analyze(&rows(), 3);
        assert_eq!(s.row_count, 4);
        assert_eq!(s.columns[0].ndv, 3);
        assert_eq!(s.columns[1].ndv, 3);
        assert_eq!(s.columns[2].ndv, 2);
        assert_eq!(s.columns[2].null_count, 2);
    }

    #[test]
    fn analyze_tracks_min_max() {
        let s = TableStats::analyze(&rows(), 3);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(3)));
        assert_eq!(s.columns[2].min, Some(Value::Int(10)));
        assert_eq!(s.columns[2].max, Some(Value::Int(20)));
    }

    #[test]
    fn eq_selectivity_is_inverse_ndv() {
        let s = TableStats::analyze(&rows(), 3);
        assert!((s.eq_selectivity(0) - 1.0 / 3.0).abs() < 1e-12);
        // Missing column index → default selectivity.
        assert!((s.eq_selectivity(9) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_table_stats() {
        let s = TableStats::analyze(&[], 2);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.columns[0].ndv, 0);
        assert_eq!(s.ndv(0), 1, "ndv clamps to >= 1 for estimation");
    }
}
