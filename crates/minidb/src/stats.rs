//! Table and column statistics.
//!
//! Statistics drive COBRA's cost model: result cardinalities (`N_Q`),
//! predicate selectivities, and the probability `p` of a conditional
//! region's predicate (§VI: "If the condition is in terms of a query result
//! attribute, our framework estimates the value of p using database
//! statistics").
//!
//! Beyond min/max/NDV, `ANALYZE` builds a per-column **equi-depth
//! histogram** ([`Histogram`]) for numeric columns: buckets hold roughly
//! equal row counts, so skewed distributions get fine-grained boundaries
//! where the data actually lives. Range selectivities interpolate inside
//! the probe's bucket instead of assuming a fixed fraction.

use crate::column::{ColumnTable, ColumnVec};
use crate::expr::BinOp;
use crate::value::{Row, Value};
use std::collections::HashSet;

/// Buckets per equi-depth histogram (fewer when the column has fewer
/// rows). 32 keeps per-bucket error ≈ 3 % of the rows while staying cheap
/// to build and probe.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// An equi-depth histogram over one numeric column's non-null values.
///
/// Buckets cover `[min, max]` contiguously: bucket 0 spans
/// `[lower, bounds[0]]`, bucket `i > 0` spans `(bounds[i-1], bounds[i]]`.
/// Bucket edges always fall *on* data values and a single value never
/// straddles two buckets, so heavy hitters get buckets of their own and
/// `counts` sums exactly to the number of values histogrammed.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lower edge of the first bucket — the column minimum.
    lower: f64,
    /// Inclusive upper edge per bucket, strictly ascending; the last edge
    /// is the column maximum.
    bounds: Vec<f64>,
    /// Values per bucket; sums to [`Histogram::total`].
    counts: Vec<u64>,
    /// Total values covered (the column's non-null count).
    total: u64,
}

impl Histogram {
    /// Build an equi-depth histogram with at most `buckets` buckets over
    /// `values` (non-finite values are ignored). `None` when no finite
    /// values remain.
    pub fn build(mut values: Vec<f64>, buckets: usize) -> Option<Histogram> {
        values.retain(|v| v.is_finite());
        if values.is_empty() || buckets == 0 {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let depth = n.div_ceil(buckets.min(n));
        let lower = values[0];
        let mut bounds = Vec::new();
        let mut counts = Vec::new();
        let mut in_bucket = 0u64;
        for (i, v) in values.iter().enumerate() {
            in_bucket += 1;
            let run_ends = i + 1 == n || values[i + 1] != *v;
            // Close the bucket at the end of a value run once the target
            // depth is reached (so equal values share one bucket).
            if (in_bucket as usize >= depth && run_ends) || i + 1 == n {
                bounds.push(*v);
                counts.push(in_bucket);
                in_bucket = 0;
            }
        }
        Some(Histogram {
            lower,
            bounds,
            counts,
            total: n as u64,
        })
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.bounds.len()
    }

    /// Values covered.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Lower edge of the first bucket (column minimum).
    pub fn min(&self) -> f64 {
        self.lower
    }

    /// Upper edge of the last bucket (column maximum).
    pub fn max(&self) -> f64 {
        *self.bounds.last().expect("histograms are non-empty")
    }

    /// The bucket upper edges (ascending, ending at the maximum).
    pub fn bucket_bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// The per-bucket value counts (aligned with
    /// [`Histogram::bucket_bounds`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimated fraction of values `<= x`, interpolating linearly inside
    /// the bucket containing `x` (continuous-distribution assumption).
    /// Always in `[0, 1]`.
    pub fn le_fraction(&self, x: f64) -> f64 {
        if !x.is_finite() {
            return if x > 0.0 { 1.0 } else { 0.0 };
        }
        if x < self.lower {
            return 0.0;
        }
        let mut below = 0u64;
        let mut lo = self.lower;
        for (&bound, &count) in self.bounds.iter().zip(&self.counts) {
            if x >= bound {
                below += count;
                lo = bound;
                continue;
            }
            // x lies inside this bucket: (lo, bound].
            let frac = if bound > lo {
                (x - lo) / (bound - lo)
            } else {
                1.0
            };
            return ((below as f64 + frac * count as f64) / self.total as f64).clamp(0.0, 1.0);
        }
        1.0
    }

    /// Selectivity of `column ⋈ x` for a comparison operator. `half` is
    /// the continuity-correction offset: `0.5` for integer columns (so
    /// `< 10` and `<= 10` differ by the mass of the value 10), `0.0` for
    /// continuous ones. Non-comparison operators return `None`.
    pub fn range_selectivity(&self, op: BinOp, x: f64, half: f64) -> Option<f64> {
        let sel = match op {
            BinOp::Lt => self.le_fraction(x - half),
            BinOp::Le => self.le_fraction(x + half),
            BinOp::Gt => 1.0 - self.le_fraction(x + half),
            BinOp::Ge => 1.0 - self.le_fraction(x - half),
            _ => return None,
        };
        Some(sel.clamp(0.0, 1.0))
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub ndv: u64,
    /// Number of NULLs.
    pub null_count: u64,
    /// Minimum non-null value, if any.
    pub min: Option<Value>,
    /// Maximum non-null value, if any.
    pub max: Option<Value>,
    /// Equi-depth histogram over the non-null values (numeric columns
    /// with at least one value only).
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    fn empty() -> ColumnStats {
        ColumnStats {
            ndv: 0,
            null_count: 0,
            min: None,
            max: None,
            histogram: None,
        }
    }

    /// Fraction of rows where this column is non-NULL (`1.0` for an empty
    /// column: equality estimation multiplies by it, and an empty input
    /// contributes zero rows anyway).
    pub fn non_null_fraction(&self, row_count: u64) -> f64 {
        if row_count == 0 {
            return 1.0;
        }
        (row_count.saturating_sub(self.null_count)) as f64 / row_count as f64
    }
}

/// Statistics for one table, computed by `ANALYZE`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Number of rows at analyze time.
    pub row_count: u64,
    /// Per-column statistics, aligned with the schema.
    pub columns: Vec<ColumnStats>,
    /// True once `ANALYZE` has run. Distinguishes an *analyzed empty*
    /// table (estimates must say 0 rows) from a never-analyzed one
    /// (estimates fall back to defaults).
    pub analyzed: bool,
}

impl TableStats {
    /// Compute statistics over `rows` with `width` columns.
    pub fn analyze(rows: &[Row], width: usize) -> TableStats {
        let mut columns = vec![ColumnStats::empty(); width];
        let mut distinct: Vec<HashSet<&Value>> = vec![HashSet::new(); width];
        let mut numeric: Vec<Vec<f64>> = vec![Vec::new(); width];
        for row in rows {
            for (i, v) in row.iter().enumerate().take(width) {
                let stats = &mut columns[i];
                if v.is_null() {
                    stats.null_count += 1;
                    continue;
                }
                distinct[i].insert(v);
                if let Some(x) = v.as_f64() {
                    numeric[i].push(x);
                }
                match &stats.min {
                    Some(m) if v >= m => {}
                    _ => stats.min = Some(v.clone()),
                }
                match &stats.max {
                    Some(m) if v <= m => {}
                    _ => stats.max = Some(v.clone()),
                }
            }
        }
        for (i, set) in distinct.into_iter().enumerate() {
            columns[i].ndv = set.len() as u64;
        }
        for (i, values) in numeric.into_iter().enumerate() {
            // Only pure-numeric columns get histograms: a mixed column's
            // ordering is type-ranked, not numeric, so interpolation over
            // the numeric subset would misestimate.
            if !values.is_empty()
                && values.len() as u64 + columns[i].null_count == rows.len() as u64
            {
                columns[i].histogram = Histogram::build(values, HISTOGRAM_BUCKETS);
            }
        }
        TableStats {
            row_count: rows.len() as u64,
            columns,
            analyzed: true,
        }
    }

    /// Compute statistics from a columnar projection, one typed pass per
    /// column. Produces exactly the same [`TableStats`] as
    /// [`TableStats::analyze`] over the row form: distinctness and
    /// min/max follow [`Value`] semantics (floats by total order), and
    /// histograms are built from the same numeric multiset, so equal
    /// inputs yield equal statistics bit for bit.
    pub fn analyze_columns(table: &ColumnTable) -> TableStats {
        let row_count = table.len as u64;
        let columns = table
            .cols
            .iter()
            .map(|col| Self::analyze_one_column(col, table.len))
            .collect();
        TableStats {
            row_count,
            columns,
            analyzed: true,
        }
    }

    fn analyze_one_column(col: &ColumnVec, rows: usize) -> ColumnStats {
        let mut stats = ColumnStats::empty();
        // Non-null numeric values, in row order, for the histogram.
        let mut numeric: Vec<f64> = Vec::new();
        match col {
            ColumnVec::Int { data, nulls } => {
                stats.null_count = col.null_count();
                let mut distinct: HashSet<i64> = HashSet::new();
                let mut min: Option<i64> = None;
                let mut max: Option<i64> = None;
                numeric.reserve(data.len() - stats.null_count as usize);
                for (i, &v) in data.iter().enumerate() {
                    if nulls.as_ref().is_some_and(|m| m.is_null(i)) {
                        continue;
                    }
                    distinct.insert(v);
                    numeric.push(v as f64);
                    min = Some(min.map_or(v, |m| m.min(v)));
                    max = Some(max.map_or(v, |m| m.max(v)));
                }
                stats.ndv = distinct.len() as u64;
                stats.min = min.map(Value::Int);
                stats.max = max.map(Value::Int);
            }
            ColumnVec::Float { data, nulls } => {
                stats.null_count = col.null_count();
                // Distinctness by bit pattern: `Value::eq` on floats is
                // total-order equality, which holds exactly when the bits
                // match.
                let mut distinct: HashSet<u64> = HashSet::new();
                let mut min: Option<f64> = None;
                let mut max: Option<f64> = None;
                numeric.reserve(data.len() - stats.null_count as usize);
                for (i, &v) in data.iter().enumerate() {
                    if nulls.as_ref().is_some_and(|m| m.is_null(i)) {
                        continue;
                    }
                    distinct.insert(v.to_bits());
                    numeric.push(v);
                    min = Some(min.map_or(v, |m| if v.total_cmp(&m).is_lt() { v } else { m }));
                    max = Some(max.map_or(v, |m| if v.total_cmp(&m).is_gt() { v } else { m }));
                }
                stats.ndv = distinct.len() as u64;
                stats.min = min.map(Value::Float);
                stats.max = max.map(Value::Float);
            }
            ColumnVec::Str { data, nulls } => {
                stats.null_count = col.null_count();
                let mut distinct: HashSet<&str> = HashSet::new();
                let mut min: Option<&str> = None;
                let mut max: Option<&str> = None;
                for (i, v) in data.iter().enumerate() {
                    if nulls.as_ref().is_some_and(|m| m.is_null(i)) {
                        continue;
                    }
                    distinct.insert(v);
                    min = Some(min.map_or(v.as_str(), |m| m.min(v)));
                    max = Some(max.map_or(v.as_str(), |m| m.max(v)));
                }
                stats.ndv = distinct.len() as u64;
                stats.min = min.map(Value::str);
                stats.max = max.map(Value::str);
            }
            ColumnVec::Bool { data, nulls } => {
                stats.null_count = col.null_count();
                let mut seen = [false; 2];
                let mut min: Option<bool> = None;
                let mut max: Option<bool> = None;
                for (i, &v) in data.iter().enumerate() {
                    if nulls.as_ref().is_some_and(|m| m.is_null(i)) {
                        continue;
                    }
                    seen[v as usize] = true;
                    min = Some(min.map_or(v, |m| m & v));
                    max = Some(max.map_or(v, |m| m | v));
                }
                stats.ndv = seen.iter().filter(|&&s| s).count() as u64;
                stats.min = min.map(Value::Bool);
                stats.max = max.map(Value::Bool);
            }
            ColumnVec::Mixed(values) => {
                // Exact mirror of the row-at-a-time analyze loop.
                let mut distinct: HashSet<&Value> = HashSet::new();
                for v in values {
                    if v.is_null() {
                        stats.null_count += 1;
                        continue;
                    }
                    distinct.insert(v);
                    if let Some(x) = v.as_f64() {
                        numeric.push(x);
                    }
                    match &stats.min {
                        Some(m) if v >= m => {}
                        _ => stats.min = Some(v.clone()),
                    }
                    match &stats.max {
                        Some(m) if v <= m => {}
                        _ => stats.max = Some(v.clone()),
                    }
                }
                stats.ndv = distinct.len() as u64;
            }
        }
        // Same pure-numeric gate as the row path: every non-null value
        // must have contributed a numeric sample.
        if !numeric.is_empty() && numeric.len() as u64 + stats.null_count == rows as u64 {
            stats.histogram = Histogram::build(numeric, HISTOGRAM_BUCKETS);
        }
        stats
    }

    /// Selectivity of an equality predicate on column `i`.
    ///
    /// Equality never matches NULLs, so `1 / NDV` is scaled by the
    /// column's non-null fraction. An *analyzed* table with no rows (or an
    /// all-NULL column) estimates 0; the 10 % fallback applies only when
    /// statistics are genuinely missing (never analyzed, or an unknown
    /// column index).
    pub fn eq_selectivity(&self, i: usize) -> f64 {
        match self.columns.get(i) {
            Some(c) if c.ndv > 0 => c.non_null_fraction(self.row_count) / c.ndv as f64,
            // Analyzed but no non-null values: empty table or all-NULL
            // column — equality can match nothing.
            Some(_) if self.analyzed => 0.0,
            None if self.analyzed && self.row_count == 0 && self.columns.is_empty() => 0.0,
            _ => 0.1,
        }
    }

    /// Selectivity of a range predicate `column_i ⋈ v` from the histogram
    /// (or min/max interpolation when no histogram exists). `None` when
    /// the statistics cannot answer — never-analyzed table, unknown
    /// column, non-numeric probe — and the caller should fall back to its
    /// default.
    pub fn range_selectivity(&self, i: usize, op: BinOp, v: &Value) -> Option<f64> {
        if !self.analyzed {
            return None;
        }
        let c = self.columns.get(i)?;
        let x = v.as_f64()?;
        // Continuity correction for *discrete columns*: integer-valued
        // data steps in whole units, so `< k` and `<= k` differ by the
        // mass at k. Keyed on the column (min and max both integers — a
        // continuous column probed with an integer literal must not be
        // shifted by half its unit) and applied only to integer probes
        // (a fractional probe already falls between lattice points).
        let column_integral =
            matches!((&c.min, &c.max), (Some(Value::Int(_)), Some(Value::Int(_))));
        let half = if column_integral && matches!(v, Value::Int(_)) {
            0.5
        } else {
            0.0
        };
        if let Some(h) = &c.histogram {
            return h.range_selectivity(op, x, half);
        }
        // Min/max linear interpolation (uniformity assumption): the
        // fallback when a numeric column has no histogram.
        let (min, max) = (c.min.as_ref()?.as_f64()?, c.max.as_ref()?.as_f64()?);
        let le_at = |p: f64| -> f64 {
            if max > min {
                ((p - min) / (max - min)).clamp(0.0, 1.0)
            } else if p >= min {
                1.0
            } else {
                0.0
            }
        };
        let sel = match op {
            BinOp::Lt => le_at(x - half),
            BinOp::Le => le_at(x + half),
            BinOp::Gt => 1.0 - le_at(x + half),
            BinOp::Ge => 1.0 - le_at(x - half),
            _ => return None,
        };
        Some(sel.clamp(0.0, 1.0))
    }

    /// Distinct-value count of column `i`, at least 1.
    pub fn ndv(&self, i: usize) -> u64 {
        self.columns.get(i).map(|c| c.ndv.max(1)).unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::str("a"), Value::Null],
            vec![Value::Int(2), Value::str("b"), Value::Int(10)],
            vec![Value::Int(2), Value::str("a"), Value::Int(20)],
            vec![Value::Int(3), Value::str("c"), Value::Null],
        ]
    }

    #[test]
    fn analyze_counts_rows_and_ndv() {
        let s = TableStats::analyze(&rows(), 3);
        assert_eq!(s.row_count, 4);
        assert_eq!(s.columns[0].ndv, 3);
        assert_eq!(s.columns[1].ndv, 3);
        assert_eq!(s.columns[2].ndv, 2);
        assert_eq!(s.columns[2].null_count, 2);
        assert!(s.analyzed);
    }

    #[test]
    fn analyze_tracks_min_max() {
        let s = TableStats::analyze(&rows(), 3);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(3)));
        assert_eq!(s.columns[2].min, Some(Value::Int(10)));
        assert_eq!(s.columns[2].max, Some(Value::Int(20)));
    }

    #[test]
    fn eq_selectivity_scales_by_non_null_fraction() {
        let s = TableStats::analyze(&rows(), 3);
        assert!((s.eq_selectivity(0) - 1.0 / 3.0).abs() < 1e-12);
        // Column 2 is half NULL with 2 distinct values: (2/4) / 2 = 0.25.
        assert!((s.eq_selectivity(2) - 0.25).abs() < 1e-12);
        // Missing column index → default selectivity.
        assert!((s.eq_selectivity(9) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn analyzed_empty_table_estimates_zero_not_ten_percent() {
        // Regression: the pre-histogram estimator returned the 10 %
        // fallback for an analyzed `row_count == 0` table.
        let s = TableStats::analyze(&[], 2);
        assert!(s.analyzed);
        assert_eq!(s.eq_selectivity(0), 0.0);
        assert_eq!(s.eq_selectivity(1), 0.0);
        // A never-analyzed table still falls back.
        let unanalyzed = TableStats::default();
        assert!(!unanalyzed.analyzed);
        assert_eq!(unanalyzed.eq_selectivity(0), 0.1);
    }

    #[test]
    fn all_null_column_eq_selectivity_is_zero() {
        let rows = vec![vec![Value::Null], vec![Value::Null]];
        let s = TableStats::analyze(&rows, 1);
        assert_eq!(s.eq_selectivity(0), 0.0);
    }

    #[test]
    fn empty_table_stats() {
        let s = TableStats::analyze(&[], 2);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.columns[0].ndv, 0);
        assert_eq!(s.ndv(0), 1, "ndv clamps to >= 1 for estimation");
    }

    #[test]
    fn histogram_buckets_partition_the_rows() {
        let values: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        let h = Histogram::build(values, HISTOGRAM_BUCKETS).unwrap();
        assert_eq!(h.total(), 1000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 1000);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 96.0);
        assert!(h.buckets() <= HISTOGRAM_BUCKETS + 1);
        // Edges strictly ascend.
        for w in h.bucket_bounds().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn histogram_le_fraction_tracks_uniform_data() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(values, HISTOGRAM_BUCKETS).unwrap();
        for probe in [0.0, 100.0, 499.0, 900.0, 999.0] {
            let actual = (probe + 1.0) / 1000.0;
            let est = h.le_fraction(probe);
            assert!(
                (est - actual).abs() < 0.05,
                "le({probe}): est {est} vs actual {actual}"
            );
        }
        assert_eq!(h.le_fraction(-1.0), 0.0);
        assert_eq!(h.le_fraction(2000.0), 1.0);
    }

    #[test]
    fn histogram_captures_skew() {
        // 90 % of the mass at small values, a long thin tail.
        let mut values: Vec<f64> = (0..900).map(|i| (i % 10) as f64).collect();
        values.extend((0..100).map(|i| 10.0 + i as f64 * 9.9));
        let h = Histogram::build(values, HISTOGRAM_BUCKETS).unwrap();
        let sel = h.range_selectivity(BinOp::Lt, 10.0, 0.5).unwrap();
        assert!(
            (sel - 0.9).abs() < 0.05,
            "90 % of values are < 10, est {sel}"
        );
        // The uniform assumption over [0, ~990] would say ~1 %.
    }

    #[test]
    fn range_selectivity_interpolates_from_min_max_without_histogram() {
        // A table whose stats carry min/max but no histogram (e.g. a
        // mixed-type column would; here we drop it by hand).
        let mut s = TableStats::analyze(
            &(0..100i64).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
            1,
        );
        s.columns[0].histogram = None;
        let sel = s.range_selectivity(0, BinOp::Gt, &Value::Int(89)).unwrap();
        assert!((sel - 0.1).abs() < 0.02, "top decile, est {sel}");
        // Never-analyzed stats answer nothing.
        assert_eq!(
            TableStats::default().range_selectivity(0, BinOp::Gt, &Value::Int(5)),
            None
        );
    }

    #[test]
    fn range_selectivity_bounds_and_operators() {
        let s = TableStats::analyze(
            &(0..100i64).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
            1,
        );
        for op in [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge] {
            for v in [-5i64, 0, 13, 50, 99, 200] {
                let sel = s.range_selectivity(0, op, &Value::Int(v)).unwrap();
                assert!((0.0..=1.0).contains(&sel), "{op:?} {v}: {sel}");
            }
        }
        // Lt and Le differ by roughly one value's mass at an interior
        // point; Gt + Le ≈ 1.
        let lt = s.range_selectivity(0, BinOp::Lt, &Value::Int(50)).unwrap();
        let le = s.range_selectivity(0, BinOp::Le, &Value::Int(50)).unwrap();
        let gt = s.range_selectivity(0, BinOp::Gt, &Value::Int(50)).unwrap();
        assert!(le >= lt);
        assert!((gt + le - 1.0).abs() < 1e-9);
        // Non-numeric probe → None.
        assert_eq!(s.range_selectivity(0, BinOp::Lt, &Value::str("x")), None);
    }

    #[test]
    fn float_columns_ignore_integer_probe_continuity_correction() {
        // Regression: a float column on [0.1, 0.9] probed with `< 1`
        // must estimate ~100 %, not be shifted by half an integer unit.
        let rows: Vec<Row> = (1..10)
            .map(|i| vec![Value::Float(i as f64 / 10.0)])
            .collect();
        let s = TableStats::analyze(&rows, 1);
        let lt = s.range_selectivity(0, BinOp::Lt, &Value::Int(1)).unwrap();
        assert!(lt > 0.95, "all values < 1: {lt}");
        let gt = s.range_selectivity(0, BinOp::Gt, &Value::Int(0)).unwrap();
        assert!(gt > 0.95, "all values > 0: {gt}");
    }

    #[test]
    fn analyze_is_deterministic() {
        let data = rows();
        assert_eq!(TableStats::analyze(&data, 3), TableStats::analyze(&data, 3));
    }
}
