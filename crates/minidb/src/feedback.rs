//! Runtime cardinality feedback.
//!
//! Statistics-based estimation is a guess; execution is the ground truth.
//! A [`FeedbackStore`] closes the loop: every executed query records its
//! *actual* result cardinality and work profile keyed by the plan's
//! structural [`PlanFingerprint`], and estimators configured with the
//! store ([`crate::Estimator::with_feedback`]) prefer those observations
//! over histogram guesses — the paper's "based on past executions" made
//! literal.
//!
//! Observations are running means, so a parameterized plan executed with
//! many bindings converges to its *average* cardinality — exactly the
//! quantity loop-cost formulas (`N_Q · C_body`) need.
//!
//! Two refinements keep the evidence honest:
//!
//! * **Data stamps.** An observation describes the table contents it ran
//!   against. Recording sites that know the database pass the combined
//!   write-version of the plan's base tables
//!   ([`crate::Database::plan_data_stamp`]) via
//!   [`FeedbackStore::record_at`]; when the tables have since been
//!   written, the stale mean is *replaced*, not averaged with, and
//!   stamped lookups ([`FeedbackStore::observed_fresh`]) refuse to serve
//!   it. Without this, a pre-shift observation would pollute the mean
//!   forever. [`FeedbackStore::record`] stays available for stores fed
//!   without a database at hand; its entries are unstamped and always
//!   considered fresh.
//! * **Semantic keys.** The optimizer enumerates many operator shapes of
//!   the same query (predicate pushed below a join or left above it), and
//!   each shape has its own structural fingerprint — but they all return
//!   the same rows. Every entry is additionally indexed by
//!   [`semantic_key`] (a hash of the plan's canonical SQL rendering), so
//!   an estimator that has no exact-shape observation can still borrow
//!   the *output cardinality* observed for a sibling shape
//!   ([`FeedbackStore::observed_semantic`]). Work profiles are
//!   shape-specific and never transfer.
//!
//! Thread-safe (`RwLock` + atomics): one store can serve a whole
//! application — the simulated server records into it while optimizer
//! searches read from it. The monotonic [`FeedbackStore::generation`]
//! counter advances on every recording; estimate caches fold it into
//! their validity stamp so fresh observations invalidate stale cached
//! estimates automatically.

use crate::exec::ExecWork;
use crate::fingerprint::{PlanFingerprint, SharedPlan, StableHasher};
use crate::plan::LogicalPlan;

use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// The running-mean observation for one plan fingerprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Mean observed result cardinality.
    pub rows: f64,
    /// Mean observed row-touches before the first output row.
    pub startup_work: f64,
    /// Mean observed total row-touches.
    pub total_work: f64,
    /// Number of executions folded into the means.
    pub runs: u64,
}

/// The shape-blind identity of a plan: a stable hash of its canonical
/// SQL rendering. Operator placements that the printer normalizes away
/// (predicate above or below a join) map to the same key, so their
/// observed *output* cardinalities are interchangeable.
pub fn semantic_key(plan: &LogicalPlan) -> u64 {
    let mut h = StableHasher::new();
    h.write(crate::sql::print(plan).as_bytes());
    h.finish()
}

#[derive(Debug, Clone)]
struct Entry {
    plan: SharedPlan,
    obs: Observation,
    /// [`crate::Database::plan_data_stamp`] at recording time; `None`
    /// for unstamped ([`FeedbackStore::record`]) entries, which are
    /// always fresh.
    data_stamp: Option<u64>,
}

impl Entry {
    fn fresh_for(&self, data_stamp: u64) -> bool {
        self.data_stamp.is_none_or(|s| s == data_stamp)
    }
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<PlanFingerprint, Entry>,
    /// [`semantic_key`] → fingerprint of the most recently recorded
    /// entry sharing that key.
    semantic: HashMap<u64, PlanFingerprint>,
}

/// Observed cardinalities and work profiles per plan fingerprint.
#[derive(Debug, Default)]
pub struct FeedbackStore {
    inner: RwLock<Inner>,
    /// Bumped on every recording; estimate-cache stamps include it.
    generation: AtomicU64,
    /// Estimates that used an observation instead of a model guess.
    served: AtomicU64,
}

impl FeedbackStore {
    /// An empty store.
    pub fn new() -> FeedbackStore {
        FeedbackStore::default()
    }

    /// Record one execution of `plan` with no data stamp: the entry is
    /// considered fresh forever. Prefer [`FeedbackStore::record_at`]
    /// when the database is at hand.
    pub fn record(&self, plan: &LogicalPlan, rows: u64, work: &ExecWork) {
        self.record_inner(plan, rows, work, None);
    }

    /// Record one execution of `plan`: `rows` result rows with `work`
    /// row-touches, observed while the plan's base tables were at
    /// `data_stamp` ([`crate::Database::plan_data_stamp`]). The first
    /// observation of a fingerprint keeps a shared copy of the plan (so
    /// drift can re-estimate it later); subsequent ones at the *same*
    /// stamp update the running means, while a recording at a new stamp
    /// replaces the now-stale mean outright.
    pub fn record_at(&self, plan: &LogicalPlan, rows: u64, work: &ExecWork, data_stamp: u64) {
        self.record_inner(plan, rows, work, Some(data_stamp));
    }

    fn record_inner(
        &self,
        plan: &LogicalPlan,
        rows: u64,
        work: &ExecWork,
        data_stamp: Option<u64>,
    ) {
        let fp = PlanFingerprint::of(plan);
        let mut inner = self.inner.write().unwrap();
        match inner.entries.get_mut(&fp) {
            Some(entry) if entry.data_stamp == data_stamp => fold(&mut entry.obs, rows, work),
            Some(entry) => {
                // The tables changed under the plan (or the stamping
                // discipline did): the old mean describes data that no
                // longer exists. Start over.
                entry.obs = one_run(rows, work);
                entry.data_stamp = data_stamp;
            }
            None => {
                inner.entries.insert(
                    fp,
                    Entry {
                        plan: SharedPlan::new(plan.clone()),
                        obs: one_run(rows, work),
                        data_stamp,
                    },
                );
            }
        }
        redirect_semantic(&mut inner, plan, fp, data_stamp);
        drop(inner);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Reinstall an entry previously exported by
    /// [`FeedbackStore::snapshot_stamped`] (crash-safe snapshot restore).
    /// The whole running mean is installed verbatim — `obs.runs`
    /// executions' worth of evidence survives the restart. A fingerprint
    /// that already has a live entry is left alone (anything recorded
    /// since restart is at least as fresh as the snapshot). Returns
    /// whether the entry was installed.
    pub fn restore(&self, plan: &LogicalPlan, obs: Observation, data_stamp: Option<u64>) -> bool {
        let fp = PlanFingerprint::of(plan);
        let mut inner = self.inner.write().unwrap();
        if inner.entries.contains_key(&fp) {
            return false;
        }
        inner.entries.insert(
            fp,
            Entry {
                plan: SharedPlan::new(plan.clone()),
                obs,
                data_stamp,
            },
        );
        redirect_semantic(&mut inner, plan, fp, data_stamp);
        drop(inner);
        self.generation.fetch_add(1, Ordering::Release);
        true
    }

    /// The observation for `fp`, if any execution has been recorded —
    /// regardless of how stale it is. Stamped consumers want
    /// [`FeedbackStore::observed_fresh`].
    pub fn observed(&self, fp: PlanFingerprint) -> Option<Observation> {
        self.inner.read().unwrap().entries.get(&fp).map(|e| e.obs)
    }

    /// The observation for `fp`, provided it was recorded against the
    /// current contents of the plan's tables (`data_stamp`) or carries no
    /// stamp at all.
    pub fn observed_fresh(&self, fp: PlanFingerprint, data_stamp: u64) -> Option<Observation> {
        let inner = self.inner.read().unwrap();
        let entry = inner.entries.get(&fp)?;
        entry.fresh_for(data_stamp).then_some(entry.obs)
    }

    /// The freshest observation for *any* plan shape sharing `key`
    /// ([`semantic_key`]), subject to the same freshness rule as
    /// [`FeedbackStore::observed_fresh`]. Only the output cardinality
    /// (`rows`) is meaningful across shapes; the work profile describes
    /// the recorded shape, not the asker's.
    pub fn observed_semantic(&self, key: u64, data_stamp: u64) -> Option<Observation> {
        let inner = self.inner.read().unwrap();
        let fp = inner.semantic.get(&key)?;
        let entry = inner.entries.get(fp)?;
        entry.fresh_for(data_stamp).then_some(entry.obs)
    }

    /// Monotonic recording counter (0 = nothing recorded yet). Estimate
    /// caches include it in their validity stamp.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Estimates that were served an observation instead of a model guess
    /// (process-lifetime counter across every estimator using this store).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    pub(crate) fn note_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of distinct plans observed.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forget every observation (generation still advances, so cached
    /// estimates computed with feedback are invalidated).
    pub fn clear(&self) {
        let mut inner = self.inner.write().unwrap();
        inner.entries.clear();
        inner.semantic.clear();
        drop(inner);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Every observed plan with its observation — drift analysis walks
    /// this to compare model estimates against reality.
    pub fn snapshot(&self) -> Vec<(SharedPlan, Observation)> {
        self.snapshot_stamped()
            .into_iter()
            .map(|(p, o, _)| (p, o))
            .collect()
    }

    /// [`FeedbackStore::snapshot`] including each entry's data stamp
    /// (`None` = unstamped, always fresh), so stamped consumers can skip
    /// observations describing data that has since been rewritten.
    pub fn snapshot_stamped(&self) -> Vec<(SharedPlan, Observation, Option<u64>)> {
        let inner = self.inner.read().unwrap();
        let mut out: Vec<(SharedPlan, Observation, Option<u64>)> = inner
            .entries
            .values()
            .map(|e| (e.plan.clone(), e.obs, e.data_stamp))
            .collect();
        // Deterministic order for reporting.
        out.sort_by_key(|(p, _, _)| p.fingerprint());
        out
    }
}

/// Redirect the semantic index to `fp` only when the recording is at
/// least as fresh as the shape it would shadow: a stale sibling (recorded
/// at an older data stamp) must not hide a sibling whose rows-only
/// evidence still describes current data. Stamps are monotone, so "newer
/// or equal stamp" means fresher; unstamped recordings (and dangling
/// index entries) always win.
fn redirect_semantic(
    inner: &mut Inner,
    plan: &LogicalPlan,
    fp: PlanFingerprint,
    data_stamp: Option<u64>,
) {
    let key = semantic_key(plan);
    let redirect = match inner
        .semantic
        .get(&key)
        .and_then(|prev| inner.entries.get(prev).map(|e| (*prev, e)))
    {
        Some((prev, shadowed)) if prev != fp => match (shadowed.data_stamp, data_stamp) {
            (Some(theirs), Some(ours)) => ours >= theirs,
            _ => true,
        },
        _ => true,
    };
    if redirect {
        inner.semantic.insert(key, fp);
    }
}

fn one_run(rows: u64, work: &ExecWork) -> Observation {
    Observation {
        rows: rows as f64,
        startup_work: work.startup_rows as f64,
        total_work: work.total_rows as f64,
        runs: 1,
    }
}

fn fold(obs: &mut Observation, rows: u64, work: &ExecWork) {
    let n = obs.runs as f64;
    obs.rows = (obs.rows * n + rows as f64) / (n + 1.0);
    obs.startup_work = (obs.startup_work * n + work.startup_rows as f64) / (n + 1.0);
    obs.total_work = (obs.total_work * n + work.total_rows as f64) / (n + 1.0);
    obs.runs += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(startup: u64, total: u64) -> ExecWork {
        ExecWork {
            startup_rows: startup,
            total_rows: total,
        }
    }

    #[test]
    fn records_and_averages_observations() {
        let store = FeedbackStore::new();
        let plan = LogicalPlan::scan("orders");
        let fp = PlanFingerprint::of(&plan);
        assert_eq!(store.observed(fp), None);
        assert_eq!(store.generation(), 0);

        store.record(&plan, 10, &work(0, 10));
        store.record(&plan, 30, &work(0, 30));
        let obs = store.observed(fp).unwrap();
        assert_eq!(obs.rows, 20.0);
        assert_eq!(obs.total_work, 20.0);
        assert_eq!(obs.runs, 2);
        assert_eq!(store.generation(), 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_plans_do_not_collide() {
        let store = FeedbackStore::new();
        store.record(&LogicalPlan::scan("a"), 1, &work(0, 1));
        store.record(&LogicalPlan::scan("b"), 9, &work(0, 9));
        assert_eq!(store.len(), 2);
        let a = store
            .observed(PlanFingerprint::of(&LogicalPlan::scan("a")))
            .unwrap();
        assert_eq!(a.rows, 1.0);
    }

    #[test]
    fn snapshot_is_deterministic_and_clear_advances_generation() {
        let store = FeedbackStore::new();
        store.record(&LogicalPlan::scan("a"), 1, &work(0, 1));
        store.record(&LogicalPlan::scan("b"), 2, &work(0, 2));
        let s1 = store.snapshot();
        let s2 = store.snapshot();
        assert_eq!(s1.len(), 2);
        assert_eq!(
            s1.iter().map(|(p, _)| p.fingerprint()).collect::<Vec<_>>(),
            s2.iter().map(|(p, _)| p.fingerprint()).collect::<Vec<_>>()
        );
        let g = store.generation();
        store.clear();
        assert!(store.is_empty());
        assert!(store.generation() > g);
    }

    #[test]
    fn restore_round_trips_snapshot_entries_and_defers_to_live_ones() {
        let store = FeedbackStore::new();
        store.record_at(&LogicalPlan::scan("a"), 10, &work(1, 10), 3);
        store.record_at(&LogicalPlan::scan("a"), 30, &work(3, 30), 3);
        store.record(&LogicalPlan::scan("b"), 7, &work(0, 7));
        let exported = store.snapshot_stamped();

        let restored = FeedbackStore::new();
        for (plan, obs, stamp) in &exported {
            assert!(restored.restore(plan.as_plan(), *obs, *stamp));
        }
        assert_eq!(restored.snapshot_stamped(), exported);
        assert!(restored.generation() > 0, "restores advance the generation");
        // The running mean survived intact, runs and all.
        let a = restored
            .observed_fresh(PlanFingerprint::of(&LogicalPlan::scan("a")), 3)
            .unwrap();
        assert_eq!((a.rows, a.runs), (20.0, 2));

        // A live entry recorded after restart wins over the snapshot.
        let live = FeedbackStore::new();
        live.record_at(&LogicalPlan::scan("a"), 999, &work(0, 999), 4);
        for (plan, obs, stamp) in &exported {
            live.restore(plan.as_plan(), *obs, *stamp);
        }
        let a = live
            .observed(PlanFingerprint::of(&LogicalPlan::scan("a")))
            .unwrap();
        assert_eq!(a.rows, 999.0);
    }

    #[test]
    fn stamped_recording_replaces_stale_means_instead_of_averaging() {
        let store = FeedbackStore::new();
        let plan = LogicalPlan::scan("orders");
        let fp = PlanFingerprint::of(&plan);

        store.record_at(&plan, 100, &work(0, 100), 7);
        store.record_at(&plan, 102, &work(0, 102), 7);
        assert_eq!(store.observed_fresh(fp, 7).unwrap().rows, 101.0);

        // The table was written: same stamp discipline, new stamp value.
        // The pre-write mean must not blend into the post-write one.
        store.record_at(&plan, 900, &work(0, 900), 8);
        let obs = store.observed_fresh(fp, 8).unwrap();
        assert_eq!(obs.rows, 900.0);
        assert_eq!(obs.runs, 1);
        // And the entry no longer answers for the old stamp.
        assert_eq!(store.observed_fresh(fp, 7), None);
        // Unstamped lookup still sees it (legacy behavior).
        assert_eq!(store.observed(fp).unwrap().rows, 900.0);
    }

    #[test]
    fn unstamped_entries_are_always_fresh() {
        let store = FeedbackStore::new();
        let plan = LogicalPlan::scan("orders");
        let fp = PlanFingerprint::of(&plan);
        store.record(&plan, 5, &work(0, 5));
        assert_eq!(store.observed_fresh(fp, 0).unwrap().rows, 5.0);
        assert_eq!(store.observed_fresh(fp, 41).unwrap().rows, 5.0);
    }

    #[test]
    fn semantic_key_unifies_predicate_placement() {
        use crate::expr::ScalarExpr;
        // select * from a join b on x = y where p = 3, with the filter
        // below the join in one shape and above it in the other.
        let on = ScalarExpr::eq(ScalarExpr::col("x"), ScalarExpr::col("y"));
        let filter = ScalarExpr::eq(ScalarExpr::col("p"), ScalarExpr::lit(3i64));
        let pushed = LogicalPlan::scan("a")
            .select(filter.clone())
            .join(LogicalPlan::scan("b"), on.clone());
        let hoisted = LogicalPlan::scan("a")
            .join(LogicalPlan::scan("b"), on)
            .select(filter);
        assert_ne!(PlanFingerprint::of(&pushed), PlanFingerprint::of(&hoisted));
        assert_eq!(semantic_key(&pushed), semantic_key(&hoisted));

        let store = FeedbackStore::new();
        store.record_at(&pushed, 918, &work(10, 910), 3);
        // The sibling shape has no exact observation…
        assert_eq!(store.observed_fresh(PlanFingerprint::of(&hoisted), 3), None);
        // …but its output cardinality is reachable through the key.
        let obs = store.observed_semantic(semantic_key(&hoisted), 3).unwrap();
        assert_eq!(obs.rows, 918.0);
        // Staleness still applies across the semantic index.
        assert_eq!(store.observed_semantic(semantic_key(&hoisted), 4), None);
    }

    #[test]
    fn stale_sibling_recording_does_not_shadow_fresh_semantic_evidence() {
        use crate::expr::ScalarExpr;
        let on = ScalarExpr::eq(ScalarExpr::col("x"), ScalarExpr::col("y"));
        let filter = ScalarExpr::eq(ScalarExpr::col("p"), ScalarExpr::lit(3i64));
        let pushed = LogicalPlan::scan("a")
            .select(filter.clone())
            .join(LogicalPlan::scan("b"), on.clone());
        let hoisted = LogicalPlan::scan("a")
            .join(LogicalPlan::scan("b"), on)
            .select(filter);
        let key = semantic_key(&pushed);
        assert_eq!(key, semantic_key(&hoisted));

        let store = FeedbackStore::new();
        // Fresh evidence for the pushed shape at the current stamp…
        store.record_at(&pushed, 500, &work(0, 500), 8);
        // …then a replayed / delayed recording of the sibling shape that
        // ran against the *pre-write* table contents.
        store.record_at(&hoisted, 120, &work(0, 120), 7);
        // The sibling's own entry exists and answers for its own stamp…
        assert_eq!(
            store
                .observed_fresh(PlanFingerprint::of(&hoisted), 7)
                .unwrap()
                .rows,
            120.0
        );
        // …but it must not have hijacked the semantic index: rows-only
        // evidence for the current data is still served.
        let obs = store.observed_semantic(key, 8).unwrap();
        assert_eq!(obs.rows, 500.0);

        // A recording at a newer (or equal) stamp does redirect the key.
        store.record_at(&hoisted, 130, &work(0, 130), 9);
        assert_eq!(store.observed_semantic(key, 9).unwrap().rows, 130.0);
    }
}
