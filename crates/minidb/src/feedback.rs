//! Runtime cardinality feedback.
//!
//! Statistics-based estimation is a guess; execution is the ground truth.
//! A [`FeedbackStore`] closes the loop: every executed query records its
//! *actual* result cardinality and work profile keyed by the plan's
//! structural [`PlanFingerprint`], and estimators configured with the
//! store ([`crate::Estimator::with_feedback`]) prefer those observations
//! over histogram guesses — the paper's "based on past executions" made
//! literal.
//!
//! Observations are running means, so a parameterized plan executed with
//! many bindings converges to its *average* cardinality — exactly the
//! quantity loop-cost formulas (`N_Q · C_body`) need.
//!
//! Thread-safe (`RwLock` + atomics): one store can serve a whole
//! application — the simulated server records into it while optimizer
//! searches read from it. The monotonic [`FeedbackStore::generation`]
//! counter advances on every recording; estimate caches fold it into
//! their validity stamp so fresh observations invalidate stale cached
//! estimates automatically.

use crate::exec::ExecWork;
use crate::fingerprint::{PlanFingerprint, SharedPlan};
use crate::plan::LogicalPlan;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// The running-mean observation for one plan fingerprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Mean observed result cardinality.
    pub rows: f64,
    /// Mean observed row-touches before the first output row.
    pub startup_work: f64,
    /// Mean observed total row-touches.
    pub total_work: f64,
    /// Number of executions folded into the means.
    pub runs: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    plan: SharedPlan,
    obs: Observation,
}

/// Observed cardinalities and work profiles per plan fingerprint.
#[derive(Debug, Default)]
pub struct FeedbackStore {
    inner: RwLock<HashMap<PlanFingerprint, Entry>>,
    /// Bumped on every recording; estimate-cache stamps include it.
    generation: AtomicU64,
    /// Estimates that used an observation instead of a model guess.
    served: AtomicU64,
}

impl FeedbackStore {
    /// An empty store.
    pub fn new() -> FeedbackStore {
        FeedbackStore::default()
    }

    /// Record one execution of `plan`: `rows` result rows with `work`
    /// row-touches. The first observation of a fingerprint keeps a shared
    /// copy of the plan (so drift can re-estimate it later); subsequent
    /// ones only update the running means.
    pub fn record(&self, plan: &LogicalPlan, rows: u64, work: &ExecWork) {
        let fp = PlanFingerprint::of(plan);
        let mut inner = self.inner.write().unwrap();
        match inner.get_mut(&fp) {
            Some(entry) => fold(&mut entry.obs, rows, work),
            None => {
                let mut obs = Observation {
                    rows: 0.0,
                    startup_work: 0.0,
                    total_work: 0.0,
                    runs: 0,
                };
                fold(&mut obs, rows, work);
                inner.insert(
                    fp,
                    Entry {
                        plan: SharedPlan::new(plan.clone()),
                        obs,
                    },
                );
            }
        }
        drop(inner);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The observation for `fp`, if any execution has been recorded.
    pub fn observed(&self, fp: PlanFingerprint) -> Option<Observation> {
        self.inner.read().unwrap().get(&fp).map(|e| e.obs)
    }

    /// Monotonic recording counter (0 = nothing recorded yet). Estimate
    /// caches include it in their validity stamp.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Estimates that were served an observation instead of a model guess
    /// (process-lifetime counter across every estimator using this store).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    pub(crate) fn note_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of distinct plans observed.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forget every observation (generation still advances, so cached
    /// estimates computed with feedback are invalidated).
    pub fn clear(&self) {
        self.inner.write().unwrap().clear();
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Every observed plan with its observation — drift analysis walks
    /// this to compare model estimates against reality.
    pub fn snapshot(&self) -> Vec<(SharedPlan, Observation)> {
        let inner = self.inner.read().unwrap();
        let mut out: Vec<(SharedPlan, Observation)> =
            inner.values().map(|e| (e.plan.clone(), e.obs)).collect();
        // Deterministic order for reporting.
        out.sort_by_key(|(p, _)| p.fingerprint());
        out
    }
}

fn fold(obs: &mut Observation, rows: u64, work: &ExecWork) {
    let n = obs.runs as f64;
    obs.rows = (obs.rows * n + rows as f64) / (n + 1.0);
    obs.startup_work = (obs.startup_work * n + work.startup_rows as f64) / (n + 1.0);
    obs.total_work = (obs.total_work * n + work.total_rows as f64) / (n + 1.0);
    obs.runs += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(startup: u64, total: u64) -> ExecWork {
        ExecWork {
            startup_rows: startup,
            total_rows: total,
        }
    }

    #[test]
    fn records_and_averages_observations() {
        let store = FeedbackStore::new();
        let plan = LogicalPlan::scan("orders");
        let fp = PlanFingerprint::of(&plan);
        assert_eq!(store.observed(fp), None);
        assert_eq!(store.generation(), 0);

        store.record(&plan, 10, &work(0, 10));
        store.record(&plan, 30, &work(0, 30));
        let obs = store.observed(fp).unwrap();
        assert_eq!(obs.rows, 20.0);
        assert_eq!(obs.total_work, 20.0);
        assert_eq!(obs.runs, 2);
        assert_eq!(store.generation(), 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_plans_do_not_collide() {
        let store = FeedbackStore::new();
        store.record(&LogicalPlan::scan("a"), 1, &work(0, 1));
        store.record(&LogicalPlan::scan("b"), 9, &work(0, 9));
        assert_eq!(store.len(), 2);
        let a = store
            .observed(PlanFingerprint::of(&LogicalPlan::scan("a")))
            .unwrap();
        assert_eq!(a.rows, 1.0);
    }

    #[test]
    fn snapshot_is_deterministic_and_clear_advances_generation() {
        let store = FeedbackStore::new();
        store.record(&LogicalPlan::scan("a"), 1, &work(0, 1));
        store.record(&LogicalPlan::scan("b"), 2, &work(0, 2));
        let s1 = store.snapshot();
        let s2 = store.snapshot();
        assert_eq!(s1.len(), 2);
        assert_eq!(
            s1.iter().map(|(p, _)| p.fingerprint()).collect::<Vec<_>>(),
            s2.iter().map(|(p, _)| p.fingerprint()).collect::<Vec<_>>()
        );
        let g = store.generation();
        store.clear();
        assert!(store.is_empty());
        assert!(store.generation() > g);
    }
}
