//! Registry of pure scalar functions.
//!
//! Transformation rule T3 pushes scalar functions applied to query-result
//! attributes *into* the query (as computed projections). For that to be
//! semantics-preserving, the client (interpreter) and the server (executor)
//! must agree on function semantics — both sides therefore evaluate
//! functions through one shared [`FuncRegistry`].

use crate::error::{DbError, DbResult};
use crate::schema::DataType;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A pure scalar function: values in, value out. `Send + Sync` so a
/// registry can be shared across optimizer/interpreter threads.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> DbResult<Value> + Send + Sync>;

/// A registered function: implementation + declared return type.
#[derive(Clone)]
struct FuncDef {
    body: ScalarFn,
    return_type: DataType,
}

/// Name → pure function mapping shared by client and server.
#[derive(Clone, Default)]
pub struct FuncRegistry {
    funcs: HashMap<String, FuncDef>,
}

impl fmt::Debug for FuncRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.funcs.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("FuncRegistry")
            .field("funcs", &names)
            .finish()
    }
}

impl FuncRegistry {
    /// An empty registry.
    pub fn new() -> FuncRegistry {
        FuncRegistry::default()
    }

    /// A registry pre-loaded with the built-ins (`abs`, `upper`, `lower`,
    /// `length`, `mod`).
    pub fn with_builtins() -> FuncRegistry {
        let mut r = FuncRegistry::new();
        r.register("abs", DataType::Float, |args| {
            expect_arity("abs", args, 1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                Value::Null => Ok(Value::Null),
                v => Err(DbError::Type(format!("abs({v})"))),
            }
        });
        r.register("upper", DataType::Str, |args| {
            expect_arity("upper", args, 1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
                Value::Null => Ok(Value::Null),
                v => Err(DbError::Type(format!("upper({v})"))),
            }
        });
        r.register("lower", DataType::Str, |args| {
            expect_arity("lower", args, 1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
                Value::Null => Ok(Value::Null),
                v => Err(DbError::Type(format!("lower({v})"))),
            }
        });
        r.register("length", DataType::Int, |args| {
            expect_arity("length", args, 1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Int(s.len() as i64)),
                Value::Null => Ok(Value::Null),
                v => Err(DbError::Type(format!("length({v})"))),
            }
        });
        r.register("mod", DataType::Int, |args| {
            expect_arity("mod", args, 2)?;
            match (&args[0], &args[1]) {
                (Value::Int(a), Value::Int(b)) if *b != 0 => Ok(Value::Int(a % b)),
                (Value::Int(_), Value::Int(_)) => Ok(Value::Null),
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (a, b) => Err(DbError::Type(format!("mod({a}, {b})"))),
            }
        });
        // SQL-standard coalesce: the first non-NULL argument. The F-IR
        // aggregation-extraction rule relies on it to reconcile SQL's
        // `sum`-over-empty-is-NULL with the fold's keep-the-initial-value
        // semantics. Like `abs`, the declared type is nominal — the value
        // type follows the arguments at runtime.
        r.register("coalesce", DataType::Int, |args| {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        });
        r
    }

    /// Register (or replace) a function.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        return_type: DataType,
        f: impl Fn(&[Value]) -> DbResult<Value> + Send + Sync + 'static,
    ) {
        self.funcs.insert(
            name.into(),
            FuncDef {
                body: Arc::new(f),
                return_type,
            },
        );
    }

    /// Call a function by name.
    pub fn call(&self, name: &str, args: &[Value]) -> DbResult<Value> {
        let def = self
            .funcs
            .get(name)
            .ok_or_else(|| DbError::UnknownFunction(name.to_string()))?;
        (def.body)(args)
    }

    /// Declared return type, if registered.
    pub fn return_type(&self, name: &str) -> Option<DataType> {
        self.funcs.get(name).map(|d| d.return_type)
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.funcs.contains_key(name)
    }
}

fn expect_arity(name: &str, args: &[Value], n: usize) -> DbResult<()> {
    if args.len() != n {
        return Err(DbError::Invalid(format!(
            "{name} expects {n} argument(s), got {}",
            args.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_work() {
        let r = FuncRegistry::with_builtins();
        assert_eq!(r.call("abs", &[Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(
            r.call("upper", &[Value::str("ab")]).unwrap(),
            Value::str("AB")
        );
        assert_eq!(
            r.call("length", &[Value::str("abc")]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            r.call("mod", &[Value::Int(7), Value::Int(3)]).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn unknown_function_errors() {
        let r = FuncRegistry::with_builtins();
        assert!(matches!(
            r.call("nope", &[]),
            Err(DbError::UnknownFunction(_))
        ));
    }

    #[test]
    fn arity_checked() {
        let r = FuncRegistry::with_builtins();
        assert!(r.call("abs", &[]).is_err());
    }

    #[test]
    fn custom_function_registration() {
        let mut r = FuncRegistry::new();
        r.register("double", DataType::Int, |args| {
            Ok(Value::Int(args[0].as_i64().unwrap_or(0) * 2))
        });
        assert_eq!(r.call("double", &[Value::Int(21)]).unwrap(), Value::Int(42));
        assert_eq!(r.return_type("double"), Some(DataType::Int));
        assert!(r.contains("double"));
    }

    #[test]
    fn null_passes_through_builtins() {
        let r = FuncRegistry::with_builtins();
        assert_eq!(r.call("abs", &[Value::Null]).unwrap(), Value::Null);
        assert_eq!(r.call("upper", &[Value::Null]).unwrap(), Value::Null);
    }
}
